//! Engine → proof → verifier roundtrips: every operator's proof must
//! verify clean at the recipient, survive a byte roundtrip, and answer
//! exactly what the DAG implies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tep_core::prelude::*;
use tep_model::{AggregateMode, ObjectId, Value};
use tep_query::{
    Polynomial, QueryAnswer, QueryBounds, QueryEngine, QueryError, QueryIndex, QueryOp, QuerySpec,
    SliceProof,
};
use tep_storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

struct World {
    engine: QueryEngine,
    keys: KeyDirectory,
    alice: ParticipantId,
    bob: ParticipantId,
    a: ObjectId,
    b: ObjectId,
    c: ObjectId,
    d: ObjectId,
    e: ObjectId,
}

/// A small diamond DAG:
///
/// ```text
/// a (insert+update, alice)   b (insert, bob)
///        \                  /
///         c = agg[a, b] (alice)
///        /                  \
/// d = agg[c] (bob)           e = agg[a, c] (alice)   <- diamond on a
/// ```
fn world() -> World {
    let mut rng = StdRng::seed_from_u64(42);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
    let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    keys.register(alice.certificate().clone()).unwrap();
    keys.register(bob.certificate().clone()).unwrap();

    let db = Arc::new(ProvenanceDb::in_memory());
    let mut t = ProvenanceTracker::new(TrackerConfig::default(), db.clone());
    let (a, _) = t.insert(&alice, Value::Int(1), None).unwrap();
    t.update(&alice, a, Value::Int(2)).unwrap();
    let (b, _) = t.insert(&bob, Value::Int(3), None).unwrap();
    let (c, _) = t
        .aggregate(&alice, &[a, b], Value::Int(4), AggregateMode::Atomic)
        .unwrap();
    let (d, _) = t
        .aggregate(&bob, &[c], Value::Int(5), AggregateMode::Atomic)
        .unwrap();
    let (e, _) = t
        .aggregate(&alice, &[a, c], Value::Int(6), AggregateMode::Atomic)
        .unwrap();

    World {
        engine: QueryEngine::new(db, ALG),
        keys,
        alice: alice.id(),
        bob: bob.id(),
        a,
        b,
        c,
        d,
        e,
    }
}

fn verify_clean(w: &World, proof: &SliceProof) {
    let v = Verifier::new(&w.keys, ALG).verify_slice(proof);
    assert!(v.verified(), "slice should verify clean: {:?}", v.issues);
    // Byte roundtrip is lossless and canonical.
    let back = SliceProof::from_bytes(&proof.to_bytes()).unwrap();
    assert_eq!(&back, proof);
}

fn objects(answer: &QueryAnswer) -> Vec<ObjectId> {
    match answer {
        QueryAnswer::Objects(o) => o.clone(),
        other => panic!("expected object answer, got {other:?}"),
    }
}

#[test]
fn ancestors_roundtrip() {
    let w = world();
    let proof = w
        .engine
        .execute(&QuerySpec::new(QueryOp::Ancestors, w.d))
        .unwrap();
    verify_clean(&w, &proof);
    assert_eq!(objects(&proof.answer), vec![w.a, w.b, w.c]);
    // Unbounded backward closure reaches the inserts; no boundary needed.
    assert!(proof.boundary.is_empty());
}

#[test]
fn ancestors_depth_bound_clips_to_boundary() {
    let w = world();
    let spec = QuerySpec {
        op: QueryOp::Ancestors,
        target: w.d,
        participant: None,
        bounds: QueryBounds {
            max_depth: Some(1),
            seq_range: None,
        },
    };
    let proof = w.engine.execute(&spec).unwrap();
    verify_clean(&w, &proof);
    // One aggregate hop reaches c; a and b are clipped behind the bound
    // but their chain checksums ride along as boundary links.
    assert_eq!(objects(&proof.answer), vec![w.c]);
    assert_eq!(proof.records.len(), 2); // d, c
    let clipped: Vec<ObjectId> = proof.boundary.iter().map(|l| l.oid).collect();
    assert_eq!(clipped, vec![w.a, w.b]);
}

#[test]
fn descendants_roundtrip() {
    let w = world();
    let proof = w
        .engine
        .execute(&QuerySpec::new(QueryOp::Descendants, w.a))
        .unwrap();
    verify_clean(&w, &proof);
    assert_eq!(objects(&proof.answer), vec![w.c, w.d, w.e]);

    // Depth 1: only direct consumers.
    let spec = QuerySpec {
        op: QueryOp::Descendants,
        target: w.a,
        participant: None,
        bounds: QueryBounds {
            max_depth: Some(1),
            seq_range: None,
        },
    };
    let proof = w.engine.execute(&spec).unwrap();
    verify_clean(&w, &proof);
    assert_eq!(objects(&proof.answer), vec![w.c, w.e]);
}

#[test]
fn lineage_slice_carries_the_records() {
    let w = world();
    let proof = w
        .engine
        .execute(&QuerySpec::new(QueryOp::LineageSlice, w.e))
        .unwrap();
    verify_clean(&w, &proof);
    assert_eq!(objects(&proof.answer), vec![w.a, w.b, w.c]);
    // The slice is the full derivation closure: e, c, b, and a's chain.
    assert_eq!(proof.records.len(), 5);
}

#[test]
fn audit_slice_per_participant() {
    let w = world();
    let proof = w.engine.execute(&QuerySpec::audit(w.alice)).unwrap();
    verify_clean(&w, &proof);
    assert_eq!(objects(&proof.answer), vec![w.a, w.c, w.e]);

    let proof = w.engine.execute(&QuerySpec::audit(w.bob)).unwrap();
    verify_clean(&w, &proof);
    assert_eq!(objects(&proof.answer), vec![w.b, w.d]);
}

#[test]
fn polynomial_diamond_squares_the_shared_source() {
    let w = world();
    let proof = w
        .engine
        .execute(&QuerySpec::new(QueryOp::Polynomial, w.e))
        .unwrap();
    verify_clean(&w, &proof);
    // e = a · (a · b) — the diamond on a shows up as a².
    let expected = Polynomial {
        terms: vec![(vec![(w.a, 2), (w.b, 1)], 1)],
    };
    assert_eq!(proof.answer, QueryAnswer::Polynomial(expected.clone()));
    assert_eq!(expected.eval(|_| 3), 27);
}

#[test]
fn query_errors_are_not_evidence() {
    let w = world();
    assert_eq!(
        w.engine
            .execute(&QuerySpec::new(QueryOp::Ancestors, ObjectId(9999)))
            .unwrap_err(),
        QueryError::UnknownObject(ObjectId(9999))
    );
    let bad_audit = QuerySpec {
        op: QueryOp::AuditSlice,
        target: ObjectId(0),
        participant: None,
        bounds: QueryBounds::default(),
    };
    assert_eq!(
        w.engine.execute(&bad_audit).unwrap_err(),
        QueryError::MissingParticipant
    );
}

#[test]
fn seq_bounds_scope_the_slice() {
    let w = world();
    // Audit alice but only her first two operations (seqs 0 and 1 on a).
    let spec = QuerySpec {
        op: QueryOp::AuditSlice,
        target: ObjectId(0),
        participant: Some(w.alice),
        bounds: QueryBounds {
            max_depth: None,
            seq_range: Some((0, 1)),
        },
    };
    let proof = w.engine.execute(&spec).unwrap();
    verify_clean(&w, &proof);
    assert_eq!(objects(&proof.answer), vec![w.a]);
}

#[test]
fn sidecar_roundtrip_and_staleness() {
    let w = world();
    let db = w.engine.db();
    let mut ix = QueryIndex::new();
    ix.sync(db);
    assert_eq!(ix.synced(), db.len());

    let bytes = ix.to_bytes();
    let back = QueryIndex::from_bytes(&bytes).expect("sidecar bytes roundtrip");
    assert_eq!(back.synced(), ix.synced());
    assert!(back.binds_to(db));
    assert_eq!(back.by_participant(w.alice), ix.by_participant(w.alice));
    assert_eq!(back.edges().edge_count(), ix.edges().edge_count());

    // Any corrupted byte is rejected, never trusted.
    for i in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        if let Some(parsed) = QueryIndex::from_bytes(&bad) {
            // The CRC only guards the body; a flip in the magic/header
            // can't produce a parse, so anything that parses must still
            // bind (it doesn't: flipped bytes change the CRC).
            assert!(!parsed.binds_to(db), "corrupt sidecar bound at byte {i}");
        }
    }

    // A sidecar from a *different* log must not bind.
    let other = ProvenanceDb::in_memory();
    assert!(!back.binds_to(&other));
}

#[test]
fn sidecar_file_lifecycle() {
    let w = world();
    let db = w.engine.db().clone();
    let dir = std::env::temp_dir().join(format!("tep-query-sidecar-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("log.tepidx");

    let engine = QueryEngine::with_sidecar(db.clone(), ALG, &path);
    engine.sync();
    engine.save_index().unwrap();
    assert!(path.exists());

    // A fresh engine resumes from the sidecar without a rebuild.
    let resumed = QueryEngine::with_sidecar(db, ALG, &path);
    let proof = resumed
        .execute(&QuerySpec::new(QueryOp::Ancestors, w.d))
        .unwrap();
    let v = Verifier::new(&w.keys, ALG).verify_slice(&proof);
    assert!(v.verified(), "{:?}", v.issues);
    std::fs::remove_dir_all(&dir).ok();
}
