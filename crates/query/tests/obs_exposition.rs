//! Pinned text exposition of the query layer's metrics. Dashboards parse
//! these names and shapes; renaming a counter or changing the slice-size
//! histogram's buckets must fail here, consciously.
//!
//! The workload is fully deterministic (seeded keys, fixed DAG, one query
//! per operator), so the counter values, bucket counts, and even the
//! slice-size histogram's `_sum` are exact. Only the index build/sync
//! latency histograms carry wall-clock time — those are pinned by
//! observation count, never by sum.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tep_core::prelude::*;
use tep_model::{AggregateMode, Value};
use tep_obs::Registry;
use tep_query::{QueryEngine, QueryOp, QuerySpec};
use tep_storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

#[test]
fn query_metric_exposition_is_pinned() {
    let mut rng = StdRng::seed_from_u64(42);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
    let bob = ca.enroll(ParticipantId(2), 512, &mut rng);

    // The engine-test diamond: a (insert+update) and b feed c; d and e
    // aggregate onward, e re-using a.
    let db = Arc::new(ProvenanceDb::in_memory());
    let mut t = ProvenanceTracker::new(TrackerConfig::default(), db.clone());
    let (a, _) = t.insert(&alice, Value::Int(1), None).unwrap();
    t.update(&alice, a, Value::Int(2)).unwrap();
    let (b, _) = t.insert(&bob, Value::Int(3), None).unwrap();
    let (c, _) = t
        .aggregate(&alice, &[a, b], Value::Int(4), AggregateMode::Atomic)
        .unwrap();
    let (_d, _) = t
        .aggregate(&bob, &[c], Value::Int(5), AggregateMode::Atomic)
        .unwrap();
    let (e, _) = t
        .aggregate(&alice, &[a, c], Value::Int(6), AggregateMode::Atomic)
        .unwrap();

    let registry = Registry::new();
    let mut engine = QueryEngine::new(db, ALG);
    engine.attach_obs(&registry);

    // One query per operator; the slice sizes these produce are part of
    // the pin (they feed the histogram's exact bucket counts and sum).
    let sizes: Vec<usize> = [
        QuerySpec::new(QueryOp::Ancestors, e),
        QuerySpec::new(QueryOp::Descendants, a),
        QuerySpec::new(QueryOp::LineageSlice, e),
        QuerySpec::audit(alice.id()),
        QuerySpec::new(QueryOp::Polynomial, e),
    ]
    .iter()
    .map(|spec| engine.execute(spec).unwrap().records.len())
    .collect();
    assert_eq!(sizes, vec![5, 4, 5, 4, 5], "slice sizes drifted");

    let text = registry.render_text();

    // Counters: the total and the per-operator split, one each.
    let pinned_counters = "\
# TYPE tep_query_requests_ancestors_total counter
tep_query_requests_ancestors_total 1
# TYPE tep_query_requests_audit_total counter
tep_query_requests_audit_total 1
# TYPE tep_query_requests_descendants_total counter
tep_query_requests_descendants_total 1
# TYPE tep_query_requests_lineage_total counter
tep_query_requests_lineage_total 1
# TYPE tep_query_requests_polynomial_total counter
tep_query_requests_polynomial_total 1
# TYPE tep_query_requests_total counter
tep_query_requests_total 5
";
    for line in pinned_counters.lines() {
        assert!(
            text.contains(line),
            "missing pinned line {line:?} in:\n{text}"
        );
    }

    // The slice-size histogram: fully deterministic, pinned whole.
    let pinned_hist = "\
# TYPE tep_query_slice_records histogram
tep_query_slice_records_bucket{le=\"1\"} 0
tep_query_slice_records_bucket{le=\"2\"} 0
tep_query_slice_records_bucket{le=\"4\"} 2
tep_query_slice_records_bucket{le=\"8\"} 5
tep_query_slice_records_bucket{le=\"16\"} 5
tep_query_slice_records_bucket{le=\"32\"} 5
tep_query_slice_records_bucket{le=\"64\"} 5
tep_query_slice_records_bucket{le=\"128\"} 5
tep_query_slice_records_bucket{le=\"256\"} 5
tep_query_slice_records_bucket{le=\"512\"} 5
tep_query_slice_records_bucket{le=\"1024\"} 5
tep_query_slice_records_bucket{le=\"2048\"} 5
tep_query_slice_records_bucket{le=\"+Inf\"} 5
tep_query_slice_records_sum 23
tep_query_slice_records_count 5";
    assert!(
        text.contains(pinned_hist),
        "slice-records histogram exposition drifted:\n{text}"
    );

    // Index latency histograms carry timing; pin their observation counts:
    // the first execute builds (1), the other four incrementally sync (4).
    assert!(text.contains("tep_query_index_build_ns_count 1"), "{text}");
    assert!(text.contains("tep_query_index_sync_ns_count 4"), "{text}");
}
