//! Adversarial slice-proof fuzzing: no truncation, bit flip, record
//! omission, reordering, boundary tamper, or answer rewrite of a valid
//! QRESULT may ever verify clean — and each structured tamper must carry
//! the *right* `EvidenceKind`, so a recipient always learns what kind of
//! lie it was told.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use tep_core::prelude::*;
use tep_core::verify::EvidenceKind;
use tep_model::{AggregateMode, ObjectId, Value};
use tep_query::{QueryAnswer, QueryBounds, QueryEngine, QueryOp, QuerySpec, SliceProof};
use tep_storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

struct World {
    keys: KeyDirectory,
    /// Unbounded lineage proof (no boundary links).
    lineage: SliceProof,
    /// Depth-bounded ancestors proof (has boundary links).
    bounded: SliceProof,
    /// Polynomial proof over a diamond DAG.
    poly: SliceProof,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x51C3);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(alice.certificate().clone()).unwrap();
        keys.register(bob.certificate().clone()).unwrap();

        let db = Arc::new(ProvenanceDb::in_memory());
        let mut t = ProvenanceTracker::new(TrackerConfig::default(), db.clone());
        let (a, _) = t.insert(&alice, Value::Int(1), None).unwrap();
        t.update(&alice, a, Value::Int(2)).unwrap();
        let (b, _) = t.insert(&bob, Value::Int(3), None).unwrap();
        let (c, _) = t
            .aggregate(&alice, &[a, b], Value::Int(4), AggregateMode::Atomic)
            .unwrap();
        let (d, _) = t
            .aggregate(&bob, &[c], Value::Int(5), AggregateMode::Atomic)
            .unwrap();
        let (e, _) = t
            .aggregate(&alice, &[a, c], Value::Int(6), AggregateMode::Atomic)
            .unwrap();
        let _ = (d, e);

        let engine = QueryEngine::new(db, ALG);
        let lineage = engine
            .execute(&QuerySpec::new(QueryOp::LineageSlice, d))
            .unwrap();
        let bounded = engine
            .execute(&QuerySpec {
                op: QueryOp::Ancestors,
                target: d,
                participant: None,
                bounds: QueryBounds {
                    max_depth: Some(1),
                    seq_range: None,
                },
            })
            .unwrap();
        let poly = engine
            .execute(&QuerySpec::new(QueryOp::Polynomial, e))
            .unwrap();
        assert!(!bounded.boundary.is_empty(), "bounded proof needs boundary");
        World {
            keys,
            lineage,
            bounded,
            poly,
        }
    })
}

fn verify(proof: &SliceProof) -> Verification {
    Verifier::new(&world().keys, ALG).verify_slice(proof)
}

fn has_kind(v: &Verification, kind: EvidenceKind) -> bool {
    v.issues.iter().any(|i| i.kind() == kind)
}

fn proofs() -> Vec<&'static SliceProof> {
    let w = world();
    vec![&w.lineage, &w.bounded, &w.poly]
}

#[test]
fn baseline_proofs_verify_clean() {
    for proof in proofs() {
        let v = verify(proof);
        assert!(v.verified(), "{:?}", v.issues);
        assert_eq!(
            &SliceProof::from_bytes(&proof.to_bytes()).unwrap(),
            proof,
            "roundtrip must be lossless"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict prefix of the encoding fails to decode — a truncated
    /// QRESULT can never be mistaken for a complete one.
    #[test]
    fn truncation_never_decodes(which in 0usize..3, cut_sel in any::<usize>()) {
        let bytes = proofs()[which].to_bytes();
        let cut = cut_sel % bytes.len();
        prop_assert!(SliceProof::from_bytes(&bytes[..cut]).is_err());
    }

    /// Any single bit flip either fails to decode or yields attributed
    /// evidence; it never verifies clean.
    #[test]
    fn bit_flips_never_verify(which in 0usize..3, pos in any::<usize>(), bit in 0u32..8) {
        let bytes = proofs()[which].to_bytes();
        let mut bad = bytes.clone();
        let i = pos % bad.len();
        bad[i] ^= 1 << bit;
        if let Ok(proof) = SliceProof::from_bytes(&bad) {
            let v = verify(&proof);
            prop_assert!(
                !v.verified(),
                "flipped bit {bit} of byte {i} verified clean"
            );
        }
    }

    /// Omitting any record from the slice is detected — backward slices
    /// are complete relative to the signed records, so a hole is always
    /// either a missing demanded record or a broken signature chain.
    #[test]
    fn record_omission_never_verifies(which in 0usize..3, pick in any::<usize>()) {
        let base = proofs()[which];
        let mut proof = base.clone();
        let i = pick % proof.records.len();
        proof.records.remove(i);
        let v = verify(&proof);
        prop_assert!(!v.verified(), "omitting record {i} verified clean");
        prop_assert!(
            has_kind(&v, EvidenceKind::MissingRecord) || has_kind(&v, EvidenceKind::OutputMismatch),
            "omission evidence should name the hole: {:?}",
            v.issues
        );
    }

    /// Reordering the slice breaks the canonical encoding and is flagged
    /// as a malformed slice.
    #[test]
    fn reordering_never_verifies(which in 0usize..3, x in any::<usize>(), y in any::<usize>()) {
        let base = proofs()[which];
        let mut proof = base.clone();
        let n = proof.records.len();
        let (i, j) = (x % n, y % n);
        prop_assume!(i != j);
        proof.records.swap(i, j);
        let v = verify(&proof);
        prop_assert!(!v.verified());
        prop_assert!(has_kind(&v, EvidenceKind::MalformedRecord), "{:?}", v.issues);
    }

    /// Flipping a boundary checksum breaks the signatures chaining to it.
    #[test]
    fn boundary_tamper_never_verifies(pick in any::<usize>(), byte in any::<usize>()) {
        let base = &world().bounded;
        let mut proof = base.clone();
        let i = pick % proof.boundary.len();
        let n = proof.boundary[i].checksum.len();
        proof.boundary[i].checksum[byte % n] ^= 0x01;
        let v = verify(&proof);
        prop_assert!(!v.verified());
        prop_assert!(has_kind(&v, EvidenceKind::BadSignature), "{:?}", v.issues);
    }

    /// Rewriting the shipped answer (adding, dropping, or renaming an
    /// object) is an output mismatch.
    #[test]
    fn answer_tamper_never_verifies(which in 0usize..2, oid in 0u64..64) {
        let base = proofs()[which];
        let mut proof = base.clone();
        let QueryAnswer::Objects(oids) = &mut proof.answer else {
            unreachable!("lineage/ancestors answers are object lists")
        };
        let fake = ObjectId(oid);
        match oids.iter().position(|&o| o == fake) {
            Some(i) => { oids.remove(i); }
            None => {
                oids.push(fake);
                oids.sort();
            }
        }
        let v = verify(&proof);
        prop_assert!(!v.verified());
        prop_assert!(has_kind(&v, EvidenceKind::OutputMismatch), "{:?}", v.issues);
    }
}

#[test]
fn extraneous_record_is_attributed() {
    let w = world();
    // Graft a record from the polynomial slice (e's closure) into d's
    // bounded ancestors slice: signed, genuine, but not part of the
    // answer's coverage — planted evidence is still evidence.
    let mut proof = w.bounded.clone();
    let foreign = w
        .poly
        .records
        .iter()
        .find(|r| {
            !proof
                .records
                .iter()
                .any(|p| (p.output_oid, p.seq_id) == (r.output_oid, r.seq_id))
        })
        .expect("poly slice has a record outside the bounded slice")
        .clone();
    proof.records.push(foreign);
    proof.records.sort_by_key(|r| (r.output_oid, r.seq_id));
    let v = verify(&proof);
    assert!(!v.verified());
    assert!(
        v.issues
            .iter()
            .any(|i| i.kind() == EvidenceKind::ExtraneousRecord),
        "{:?}",
        v.issues
    );
}

#[test]
fn duplicate_record_is_attributed() {
    let w = world();
    let mut proof = w.lineage.clone();
    let dup = proof.records[0].clone();
    proof.records.insert(0, dup);
    let v = verify(&proof);
    assert!(!v.verified());
    assert!(
        v.issues
            .iter()
            .any(|i| i.kind() == EvidenceKind::DuplicateRecord),
        "{:?}",
        v.issues
    );
}

#[test]
fn wrong_question_wrong_algorithm_are_flagged() {
    let w = world();
    // Same records, different claimed operator: the recomputed answer
    // diverges (ancestors vs lineage share shape; flip to descendants).
    let mut proof = w.lineage.clone();
    proof.spec.op = QueryOp::Descendants;
    let v = verify(&proof);
    assert!(!v.verified(), "operator swap must not verify");

    let mut proof = w.lineage.clone();
    proof.alg = HashAlgorithm::Sha1;
    let v = Verifier::new(&w.keys, ALG).verify_slice(&proof);
    assert!(!v.verified());
    assert!(
        v.issues
            .iter()
            .any(|i| i.kind() == EvidenceKind::MalformedRecord),
        "{:?}",
        v.issues
    );
}
