//! Incremental secondary indexes over the record log, with sidecar
//! persistence.
//!
//! A [`QueryIndex`] tails the append-ordered record log
//! ([`ProvenanceDb::records_from`]) and maintains two structures the query
//! operators need: the reverse derivation-edge index
//! ([`tep_core::EdgeIndex`]) and a by-participant posting list. Syncing
//! after `n` fresh appends costs O(n), never a log rescan.
//!
//! The index can be persisted to a **sidecar file** next to the log
//! (`<log>.tepidx`) so a restarted process resumes from the watermark
//! instead of rebuilding. The sidecar is *not* trusted: its body is
//! CRC-framed against torn writes, and its watermark is bound to the
//! checksum of the last record it claims to have indexed — if the log
//! underneath was truncated, swapped, or regrown differently, the binding
//! fails and the loader falls back to a clean rebuild. A stale or
//! corrupted sidecar can therefore cost time, never correctness.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use tep_core::EdgeIndex;
use tep_crypto::pki::ParticipantId;
use tep_model::encode::Reader;
use tep_model::ObjectId;
use tep_storage::crc::frame_crc;
use tep_storage::ProvenanceDb;

/// Format tag of the sidecar encoding.
const IDX_MAGIC: &[u8] = b"TEPIDX\x01";

/// Canonical sidecar path for the log at `path`: `.tepidx` **appended**
/// to the full file name (`prov.log` → `prov.log.tepidx`), mirroring
/// [`tep_storage::quarantine_path`]'s append semantics.
///
/// This must never go through `Path::with_extension`, which *replaces*
/// the last extension: with tenant-sharded logs in one root directory,
/// `tenant.1` and `tenant.2` would both collapse to `tenant.tepidx` and
/// the tenants would silently clobber each other's recovery artifacts.
pub fn sidecar_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tepidx");
    PathBuf::from(name)
}

/// Temp-file path `save` writes before its atomic rename — again append
/// semantics on the full sidecar name, so two sidecars in one directory
/// can never share a temp file.
fn sidecar_tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// The secondary indexes the query engine answers from. See the module
/// docs for the sync and persistence model.
#[derive(Clone, Debug, Default)]
pub struct QueryIndex {
    synced: usize,
    last_checksum: Vec<u8>,
    by_participant: BTreeMap<ParticipantId, Vec<(ObjectId, u64)>>,
    edges: EdgeIndex,
}

impl QueryIndex {
    /// An empty index; call [`Self::sync`] to populate it.
    pub fn new() -> Self {
        QueryIndex::default()
    }

    /// Indexes every record appended since the last sync. Returns how
    /// many records were read.
    pub fn sync(&mut self, db: &ProvenanceDb) -> usize {
        let fresh = db.records_from(self.synced);
        for stored in &fresh {
            self.by_participant
                .entry(stored.participant)
                .or_default()
                .push((stored.oid, stored.seq_id));
            self.last_checksum.clear();
            self.last_checksum.extend_from_slice(&stored.checksum);
        }
        self.synced += fresh.len();
        self.edges.sync(db);
        fresh.len()
    }

    /// Log position up to which this index is current.
    pub fn synced(&self) -> usize {
        self.synced
    }

    /// The reverse derivation-edge index.
    pub fn edges(&self) -> &EdgeIndex {
        &self.edges
    }

    /// Records authored by `participant`, as `(object, seq_id)` in append
    /// order.
    pub fn by_participant(&self, participant: ParticipantId) -> &[(ObjectId, u64)] {
        self.by_participant
            .get(&participant)
            .map_or(&[], Vec::as_slice)
    }

    /// Participants with at least one indexed record, sorted.
    pub fn participants(&self) -> Vec<ParticipantId> {
        self.by_participant.keys().copied().collect()
    }

    /// Serializes the index to sidecar bytes: magic, then a CRC-framed
    /// body carrying the watermark, its checksum binding, and both maps.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.by_participant.len() * 32);
        body.extend_from_slice(&(self.synced as u64).to_be_bytes());
        body.extend_from_slice(&(self.last_checksum.len() as u64).to_be_bytes());
        body.extend_from_slice(&self.last_checksum);
        body.extend_from_slice(&(self.by_participant.len() as u64).to_be_bytes());
        for (pid, posts) in &self.by_participant {
            body.extend_from_slice(&pid.0.to_be_bytes());
            body.extend_from_slice(&(posts.len() as u64).to_be_bytes());
            for &(oid, seq) in posts {
                body.extend_from_slice(&oid.raw().to_be_bytes());
                body.extend_from_slice(&seq.to_be_bytes());
            }
        }
        let edge_sources: Vec<_> = self.edges.iter().collect();
        body.extend_from_slice(&(edge_sources.len() as u64).to_be_bytes());
        for (oid, consumers) in edge_sources {
            body.extend_from_slice(&oid.raw().to_be_bytes());
            body.extend_from_slice(&(consumers.len() as u64).to_be_bytes());
            for &(consumer, seq) in consumers {
                body.extend_from_slice(&consumer.raw().to_be_bytes());
                body.extend_from_slice(&seq.to_be_bytes());
            }
        }

        let len = body.len() as u32;
        let crc = frame_crc(len, &body);
        let mut out = Vec::with_capacity(IDX_MAGIC.len() + 8 + body.len());
        out.extend_from_slice(IDX_MAGIC);
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&crc.to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses sidecar bytes. Returns `None` on any structural problem —
    /// bad magic, CRC mismatch, truncation, trailing bytes — because a
    /// sidecar is always safely replaceable by a rebuild.
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        let rest = buf.strip_prefix(IDX_MAGIC)?;
        if rest.len() < 8 {
            return None;
        }
        let len = u32::from_be_bytes(rest[0..4].try_into().ok()?);
        let crc = u32::from_be_bytes(rest[4..8].try_into().ok()?);
        let body = &rest[8..];
        if body.len() != len as usize || frame_crc(len, body) != crc {
            return None;
        }
        let parse = || -> Result<QueryIndex, tep_model::encode::DecodeError> {
            let mut r = Reader::new(body);
            let synced = r.u64()? as usize;
            let last_checksum = r.len_prefixed()?.to_vec();
            let np = r.u64()? as usize;
            let mut by_participant = BTreeMap::new();
            for _ in 0..np {
                let pid = ParticipantId(r.u64()?);
                let n = r.u64()? as usize;
                let mut posts = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    posts.push((ObjectId(r.u64()?), r.u64()?));
                }
                by_participant.insert(pid, posts);
            }
            let ns = r.u64()? as usize;
            let mut edge_entries = Vec::with_capacity(ns.min(4096));
            for _ in 0..ns {
                let oid = ObjectId(r.u64()?);
                let n = r.u64()? as usize;
                let mut consumers = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    consumers.push((ObjectId(r.u64()?), r.u64()?));
                }
                edge_entries.push((oid, consumers));
            }
            r.expect_end()?;
            Ok(QueryIndex {
                synced,
                last_checksum,
                by_participant,
                edges: EdgeIndex::from_parts(synced, edge_entries),
            })
        };
        parse().ok()
    }

    /// `true` iff this index's watermark still matches `db`: the position
    /// is within the log and the record just below it carries the bound
    /// checksum. A truncated, swapped, or differently regrown log fails.
    pub fn binds_to(&self, db: &ProvenanceDb) -> bool {
        if self.synced > db.len() {
            return false;
        }
        if self.synced == 0 {
            return self.last_checksum.is_empty();
        }
        db.records_from(self.synced - 1)
            .first()
            .is_some_and(|r| r.checksum == self.last_checksum)
    }

    /// Writes the sidecar atomically (temp file + rename) next to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = sidecar_tmp_path(path);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a sidecar and validates its binding against `db`; any
    /// failure (absent file, corrupt bytes, stale binding) yields a fresh
    /// empty index instead. Either way the caller should [`Self::sync`]
    /// afterwards to pick up the tail.
    pub fn load_or_default(path: &Path, db: &ProvenanceDb) -> Self {
        std::fs::read(path)
            .ok()
            .and_then(|bytes| QueryIndex::from_bytes(&bytes))
            .filter(|ix| ix.binds_to(db))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_paths_append_to_the_full_name() {
        let p = sidecar_path(Path::new("/root/prov.log"));
        assert_eq!(p, PathBuf::from("/root/prov.log.tepidx"));
        assert_eq!(
            sidecar_tmp_path(&p),
            PathBuf::from("/root/prov.log.tepidx.tmp")
        );
    }

    #[test]
    fn sidecar_paths_never_collide_across_tenant_shards() {
        // The `with_extension` failure mode this helper exists to
        // prevent: dotted shard names in one root must keep disjoint
        // sidecars (and disjoint save temp files).
        let a = Path::new("/root/tenant.1");
        let b = Path::new("/root/tenant.2");
        assert_eq!(a.with_extension("tepidx"), b.with_extension("tepidx"));
        assert_ne!(sidecar_path(a), sidecar_path(b));
        assert_ne!(
            sidecar_tmp_path(&sidecar_path(a)),
            sidecar_tmp_path(&sidecar_path(b))
        );

        // And the real sharded layout (`tenant-<id>.log`) stays disjoint
        // too, with every artifact derived from the full shard path.
        let sa = Path::new("/root/tenant-1.log");
        let sb = Path::new("/root/tenant-2.log");
        assert_ne!(sidecar_path(sa), sidecar_path(sb));
        assert_eq!(sidecar_path(sa), PathBuf::from("/root/tenant-1.log.tepidx"));
    }
}
