//! The query engine: executes [`QuerySpec`]s against a [`ProvenanceDb`]
//! through the secondary indexes, producing [`SliceProof`]s.
//!
//! Every operator runs the *same* traversal the recipient's
//! `Verifier::verify_slice` re-runs (the shared functions live in
//! `tep_core::slice`), so an honest engine's proofs always verify clean
//! and the engine cannot accidentally answer something it can't prove.

use crate::index::QueryIndex;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use tep_core::slice::{
    backward_closure, polynomial_over, BoundaryLink, QueryAnswer, QueryOp, QuerySpec, SliceProof,
};
use tep_core::ProvenanceRecord;
use tep_crypto::digest::HashAlgorithm;
use tep_model::ObjectId;
use tep_obs::{names, Counter, Histogram, Registry};
use tep_storage::ProvenanceDb;

/// Hard cap on records per slice. Keeps a single answer's proof bounded
/// in memory and under the wire's frame cap; a query whose closure is
/// larger must be narrowed with depth/seq bounds.
pub const MAX_SLICE_RECORDS: usize = 2048;

/// Bucket bounds for the slice-size histogram: powers of two up to the
/// record cap.
const SLICE_RECORD_BOUNDS: [u64; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// Why a query could not be answered. These are *request* failures — a
/// tampered store never errors here, it produces a proof whose
/// verification attributes the damage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The target object has no (decodable) records.
    UnknownObject(ObjectId),
    /// An audit query without a participant.
    MissingParticipant,
    /// The result closure exceeds [`MAX_SLICE_RECORDS`]; narrow the
    /// bounds.
    SliceTooLarge {
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownObject(oid) => write!(f, "no records for object #{}", oid.raw()),
            QueryError::MissingParticipant => write!(f, "audit query needs a participant"),
            QueryError::SliceTooLarge { limit } => {
                write!(f, "result slice exceeds {limit} records; narrow the bounds")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// tep-obs instrumentation for the query layer.
struct QueryObs {
    requests: Counter,
    range_requests: Counter,
    per_op: Vec<Counter>,
    slice_records: Histogram,
    index_build_ns: Histogram,
    index_sync_ns: Histogram,
}

impl QueryObs {
    fn new(registry: &Registry) -> Self {
        QueryObs {
            requests: registry.counter(names::QUERY_REQUESTS),
            range_requests: registry.counter(names::QUERY_RANGE_REQUESTS),
            per_op: QueryOp::ALL
                .iter()
                .map(|op| registry.counter(&op.counter_name()))
                .collect(),
            slice_records: registry.histogram(names::QUERY_SLICE_RECORDS, &SLICE_RECORD_BOUNDS),
            index_build_ns: registry.latency_histogram(names::QUERY_INDEX_BUILD_NS),
            index_sync_ns: registry.latency_histogram(names::QUERY_INDEX_SYNC_NS),
        }
    }
}

/// Decoded-record cache: chains are fetched from the store once per
/// object and served by `(oid, seq)` thereafter, so a traversal that
/// walks an update chain doesn't re-clone the whole chain per step.
struct ChainCache<'a> {
    db: &'a ProvenanceDb,
    chains: HashMap<ObjectId, HashMap<u64, ProvenanceRecord>>,
}

impl<'a> ChainCache<'a> {
    fn new(db: &'a ProvenanceDb) -> Self {
        ChainCache {
            db,
            chains: HashMap::new(),
        }
    }

    fn get(&mut self, oid: ObjectId, seq: u64) -> Option<ProvenanceRecord> {
        let chain = self.chains.entry(oid).or_insert_with(|| {
            self.db
                .records_for(oid)
                .iter()
                .filter_map(|s| ProvenanceRecord::from_stored(s).ok())
                .map(|r| (r.seq_id, r))
                .collect()
        });
        chain.get(&seq).cloned()
    }
}

/// The verifiable query engine. Thread-safe: the indexes live behind a
/// mutex and are synced incrementally at every execute, so the engine can
/// be shared with a live, appending store.
pub struct QueryEngine {
    db: Arc<ProvenanceDb>,
    alg: HashAlgorithm,
    index: Mutex<QueryIndex>,
    sidecar: Option<PathBuf>,
    obs: Option<QueryObs>,
}

impl QueryEngine {
    /// An engine over `db`, indexes built lazily on first use.
    pub fn new(db: Arc<ProvenanceDb>, alg: HashAlgorithm) -> Self {
        QueryEngine {
            db,
            alg,
            index: Mutex::new(QueryIndex::new()),
            sidecar: None,
            obs: None,
        }
    }

    /// An engine whose indexes persist to the sidecar at `path`
    /// (conventionally `<log>.tepidx`): loaded now if the sidecar still
    /// binds to `db` (see [`QueryIndex::binds_to`]), written back by
    /// [`Self::save_index`].
    pub fn with_sidecar(db: Arc<ProvenanceDb>, alg: HashAlgorithm, path: &Path) -> Self {
        let index = QueryIndex::load_or_default(path, &db);
        QueryEngine {
            db,
            alg,
            index: Mutex::new(index),
            sidecar: Some(path.to_path_buf()),
            obs: None,
        }
    }

    /// Attaches tep-obs instrumentation: request counts (total and
    /// per-operator), slice-size histogram, and index build/sync latency.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = Some(QueryObs::new(registry));
    }

    /// The underlying store.
    pub fn db(&self) -> &Arc<ProvenanceDb> {
        &self.db
    }

    /// The hash algorithm proofs are produced under.
    pub fn alg(&self) -> HashAlgorithm {
        self.alg
    }

    /// Syncs the indexes with the store, returning how many fresh records
    /// were indexed. Called implicitly by [`Self::execute`].
    pub fn sync(&self) -> usize {
        self.sync_index(&mut self.index.lock())
    }

    fn sync_index(&self, ix: &mut QueryIndex) -> usize {
        let building = ix.synced() == 0;
        let start = Instant::now();
        let fresh = ix.sync(&self.db);
        if let Some(obs) = &self.obs {
            let hist = if building && fresh > 0 {
                &obs.index_build_ns
            } else {
                &obs.index_sync_ns
            };
            hist.observe_duration(start.elapsed());
        }
        fresh
    }

    /// Writes the index sidecar, if this engine was built with one.
    pub fn save_index(&self) -> io::Result<()> {
        match &self.sidecar {
            Some(path) => self.index.lock().save(path),
            None => Ok(()),
        }
    }

    /// Lists every object with records in `[lo, hi]` (bounds normalized:
    /// swapped when given backwards), paired with a **completeness
    /// proof** over the store's current shard tree: the member set is
    /// exactly the run of leaves the proof authenticates, with
    /// straddling boundary witnesses pinning both edges. A recipient
    /// re-verifies with `RangeProof::check` (or, over the wire, the
    /// signed-root form via `Verifier::verify_range`) — the engine
    /// cannot withhold a match without the proof failing.
    pub fn execute_range(
        &self,
        lo: ObjectId,
        hi: ObjectId,
    ) -> (Vec<ObjectId>, tep_core::denial::RangeProof) {
        if let Some(obs) = &self.obs {
            obs.range_requests.inc();
        }
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let tree = tep_core::merkle::shard_tree_of(self.alg, &self.db);
        let proof = tep_core::denial::RangeProof::prove(&tree, lo, hi);
        let members = proof.members.iter().map(|m| m.oid).collect();
        (members, proof)
    }

    /// Executes `spec`, returning a self-contained [`SliceProof`] the
    /// recipient re-verifies with `Verifier::verify_slice`.
    pub fn execute(&self, spec: &QuerySpec) -> Result<SliceProof, QueryError> {
        if let Some(obs) = &self.obs {
            obs.requests.inc();
            if let Some(i) = QueryOp::ALL.iter().position(|o| *o == spec.op) {
                obs.per_op[i].inc();
            }
        }
        let mut ix = self.index.lock();
        self.sync_index(&mut ix);
        let proof = self.execute_with(&ix, spec)?;
        if let Some(obs) = &self.obs {
            obs.slice_records.observe(proof.records.len() as u64);
        }
        Ok(proof)
    }

    fn execute_with(&self, ix: &QueryIndex, spec: &QuerySpec) -> Result<SliceProof, QueryError> {
        let mut cache = ChainCache::new(&self.db);
        let (target_seq, records, answer) = match spec.op {
            QueryOp::Ancestors | QueryOp::LineageSlice | QueryOp::Polynomial => {
                let latest = self
                    .db
                    .latest_for(spec.target)
                    .ok_or(QueryError::UnknownObject(spec.target))?;
                let root = (spec.target, latest.seq_id);
                let closure =
                    backward_closure(&spec.bounds, root, MAX_SLICE_RECORDS, |oid, seq| {
                        cache.get(oid, seq)
                    });
                if closure.truncated {
                    return Err(QueryError::SliceTooLarge {
                        limit: MAX_SLICE_RECORDS,
                    });
                }
                let mut records: Vec<ProvenanceRecord> = closure
                    .kept
                    .iter()
                    .filter_map(|&(o, s)| cache.get(o, s))
                    .collect();
                records.sort_by_key(|r| (r.output_oid, r.seq_id));
                let answer = if spec.op == QueryOp::Polynomial {
                    QueryAnswer::Polynomial(polynomial_over(&records, root))
                } else {
                    let mut oids: Vec<ObjectId> = closure
                        .kept
                        .iter()
                        .map(|&(o, _)| o)
                        .filter(|&o| o != spec.target)
                        .collect();
                    oids.sort();
                    oids.dedup();
                    QueryAnswer::Objects(oids)
                };
                (root.1, records, answer)
            }
            QueryOp::Descendants => {
                let latest = self
                    .db
                    .latest_for(spec.target)
                    .ok_or(QueryError::UnknownObject(spec.target))?;
                let target_seq = latest.seq_id;
                // Level-order BFS over the reverse-edge index: first reach
                // of an object is its minimum derivation depth, matching
                // the verifier's topological forward_closure.
                let mut depth: HashMap<ObjectId, u32> = HashMap::from([(spec.target, 0)]);
                let mut queue = VecDeque::from([(spec.target, 0u32)]);
                let mut kept: BTreeSet<(ObjectId, u64)> = BTreeSet::new();
                while let Some((cur, d)) = queue.pop_front() {
                    for &(consumer, seq) in ix.edges().consumers_of(cur) {
                        if !spec.bounds.seq_in_range(seq) {
                            continue;
                        }
                        let nd = d + 1;
                        if !spec.bounds.depth_ok(nd) {
                            continue;
                        }
                        kept.insert((consumer, seq));
                        if kept.len() >= MAX_SLICE_RECORDS {
                            return Err(QueryError::SliceTooLarge {
                                limit: MAX_SLICE_RECORDS,
                            });
                        }
                        if let std::collections::hash_map::Entry::Vacant(e) = depth.entry(consumer)
                        {
                            e.insert(nd);
                            queue.push_back((consumer, nd));
                        }
                    }
                }
                let anchor = cache
                    .get(spec.target, target_seq)
                    .ok_or(QueryError::UnknownObject(spec.target))?;
                let mut records = vec![anchor];
                for &(o, s) in &kept {
                    if let Some(r) = cache.get(o, s) {
                        records.push(r);
                    }
                }
                records.sort_by_key(|r| (r.output_oid, r.seq_id));
                records.dedup_by_key(|r| (r.output_oid, r.seq_id));
                let mut oids: Vec<ObjectId> = depth
                    .keys()
                    .copied()
                    .filter(|&o| o != spec.target)
                    .collect();
                oids.sort();
                (target_seq, records, QueryAnswer::Objects(oids))
            }
            QueryOp::AuditSlice => {
                let who = spec.participant.ok_or(QueryError::MissingParticipant)?;
                let posts = ix.by_participant(who);
                let mut records = Vec::new();
                for &(oid, seq) in posts {
                    if !spec.bounds.seq_in_range(seq) {
                        continue;
                    }
                    if records.len() >= MAX_SLICE_RECORDS {
                        return Err(QueryError::SliceTooLarge {
                            limit: MAX_SLICE_RECORDS,
                        });
                    }
                    if let Some(r) = cache.get(oid, seq) {
                        records.push(r);
                    }
                }
                records.sort_by_key(|r| (r.output_oid, r.seq_id));
                records.dedup_by_key(|r| (r.output_oid, r.seq_id));
                let mut oids: Vec<ObjectId> = records.iter().map(|r| r.output_oid).collect();
                oids.sort();
                oids.dedup();
                (0, records, QueryAnswer::Objects(oids))
            }
        };

        let boundary = boundary_for(&records, &mut cache);
        Ok(SliceProof {
            spec: *spec,
            alg: self.alg,
            target_seq,
            records,
            boundary,
            answer,
        })
    }
}

/// Every predecessor checksum the slice's signatures chain to but whose
/// record is *not* in the slice, fetched from the store — the boundary
/// links that let a recipient verify in-slice signatures without the whole
/// history.
fn boundary_for(records: &[ProvenanceRecord], cache: &mut ChainCache<'_>) -> Vec<BoundaryLink> {
    let keys: HashSet<(ObjectId, u64)> = records.iter().map(|r| (r.output_oid, r.seq_id)).collect();
    let mut links: BTreeMap<(ObjectId, u64), Vec<u8>> = BTreeMap::new();
    for r in records {
        for input in &r.inputs {
            let Some(prev) = input.prev_seq else { continue };
            let key = (input.oid, prev);
            if keys.contains(&key) || links.contains_key(&key) {
                continue;
            }
            if let Some(rec) = cache.get(input.oid, prev) {
                links.insert(key, rec.checksum);
            }
        }
    }
    links
        .into_iter()
        .map(|((oid, seq), checksum)| BoundaryLink { oid, seq, checksum })
        .collect()
}
