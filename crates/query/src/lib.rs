//! # tep-query — verifiable provenance query engine
//!
//! The paper (Zhang, Chapman, LeFevre 2009) makes provenance *histories*
//! tamper-evident; this crate makes provenance *answers* tamper-evident.
//! It layers a query engine over the record log:
//!
//! * **Secondary indexes** ([`QueryIndex`]) — reverse derivation edges
//!   and by-participant posting lists, built incrementally by tailing the
//!   log and optionally persisted to a checksum-bound `.tepidx` sidecar.
//! * **Operators** ([`QueryOp`]) — `ancestors`/`descendants` with
//!   depth/seq bounds, `lineage` slices, per-participant `audit` slices,
//!   and provenance-`polynomial` evaluation over the derivation DAG
//!   (the ℕ\[X\] semiring of "Provenance for Aggregate Queries",
//!   arXiv 1101.1110).
//! * **Slice proofs** ([`SliceProof`]) — every answer ships the minimal
//!   record subset plus boundary chain checksums so the recipient re-runs
//!   the R1–R8 checks over just that slice with
//!   `tep_core::Verifier::verify_slice` and recomputes the answer.
//!   Tampering, omission, or a fabricated answer yields attributed
//!   `EvidenceKind`, never a silently wrong result.
//!
//! ```
//! use std::sync::Arc;
//! use rand::{rngs::StdRng, SeedableRng};
//! use tep_core::prelude::*;
//! use tep_model::{AggregateMode, Value};
//! use tep_query::{QueryEngine, QueryOp, QuerySpec};
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! let ca = CertificateAuthority::new(512, HashAlgorithm::Sha256, &mut rng);
//! let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
//! let mut keys = KeyDirectory::new(ca.public_key().clone(), HashAlgorithm::Sha256);
//! keys.register(alice.certificate().clone()).unwrap();
//!
//! let db = Arc::new(ProvenanceDb::in_memory());
//! let mut tracker = ProvenanceTracker::new(TrackerConfig::default(), db.clone());
//! let (a, _) = tracker.insert(&alice, Value::Int(1), None).unwrap();
//! let (b, _) = tracker.insert(&alice, Value::Int(2), None).unwrap();
//! let (c, _) = tracker
//!     .aggregate(&alice, &[a, b], Value::Int(3), AggregateMode::Atomic)
//!     .unwrap();
//!
//! let engine = QueryEngine::new(db, HashAlgorithm::Sha256);
//! let proof = engine.execute(&QuerySpec::new(QueryOp::Ancestors, c)).unwrap();
//! // The recipient re-verifies the slice without trusting the engine.
//! let v = Verifier::new(&keys, HashAlgorithm::Sha256).verify_slice(&proof);
//! assert!(v.verified());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod index;

pub use engine::{QueryEngine, QueryError, MAX_SLICE_RECORDS};
pub use index::{sidecar_path, QueryIndex};
// Re-export the shared query vocabulary so wire/CLI callers need only
// one crate in scope.
pub use tep_core::slice::{
    BoundaryLink, Polynomial, QueryAnswer, QueryBounds, QueryOp, QuerySpec, SliceProof,
};
