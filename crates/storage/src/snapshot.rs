//! Back-end database snapshots: persisting a [`Forest`] to disk.
//!
//! The paper's measurements only cover the provenance side, but a usable
//! system also needs the user-data forest to survive restarts. A snapshot
//! is an [`AppendLog`] whose first frame is a header (magic + node count)
//! followed by one frame per node in parent-before-child order, so loading
//! is a single forward pass of `insert_with_id`.
//!
//! Snapshots are written to a per-process unique temporary file (created
//! with O_EXCL so concurrent savers cannot clobber each other), fsynced,
//! atomically renamed into place, and the parent directory is fsynced so
//! the rename itself survives power loss. A crash mid-snapshot never
//! clobbers the previous one; a torn tail (count mismatch) is detected at
//! load time.

use crate::log::{unique_tmp_path, AppendLog, LogError};
use crate::vfs::{real_vfs, Vfs};
use std::path::Path;
use std::sync::Arc;
use tep_model::encode::{decode_value, encode_value, Reader};
use tep_model::{Forest, ObjectId};

const SNAP_MAGIC: &[u8] = b"TEPSNAP\x01";

/// Errors from snapshot save/load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying log/file failure.
    Log(LogError),
    /// I/O failure outside the log layer (temp file, rename).
    Io(std::io::Error),
    /// The file is not a snapshot (bad header frame).
    BadHeader,
    /// Node count in the header does not match recovered frames —
    /// truncated or torn snapshot.
    Incomplete {
        /// Nodes the header promised.
        expected: u64,
        /// Frames actually recovered.
        found: u64,
    },
    /// A node frame failed to decode or reference its parent.
    CorruptNode(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Log(e) => write!(f, "snapshot log error: {e}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadHeader => write!(f, "not a forest snapshot"),
            SnapshotError::Incomplete { expected, found } => {
                write!(
                    f,
                    "incomplete snapshot: header promises {expected} nodes, found {found}"
                )
            }
            SnapshotError::CorruptNode(why) => write!(f, "corrupt node frame: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<LogError> for SnapshotError {
    fn from(e: LogError) -> Self {
        SnapshotError::Log(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn encode_node(forest: &Forest, id: ObjectId) -> Vec<u8> {
    let node = forest.node(id).expect("node exists during save");
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&id.raw().to_be_bytes());
    match node.parent() {
        Some(p) => {
            out.push(1);
            out.extend_from_slice(&p.raw().to_be_bytes());
        }
        None => out.push(0),
    }
    encode_value(node.value(), &mut out);
    out
}

/// Saves `forest` to `path` atomically (unique temp file, fsync, rename,
/// directory fsync). Any existing snapshot at `path` is replaced only
/// after the new one is durable.
pub fn save_forest(forest: &Forest, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    save_forest_with(real_vfs(), forest, path)
}

/// [`save_forest`] against an explicit [`Vfs`].
pub fn save_forest_with(
    vfs: Arc<dyn Vfs>,
    forest: &Forest,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    // Unique O_EXCL temp sibling: concurrent savers each get their own
    // file instead of clobbering a shared `.tmp`.
    let mut created = None;
    for _ in 0..16 {
        let candidate = unique_tmp_path(path);
        match AppendLog::create_with(Arc::clone(&vfs), &candidate) {
            Ok(log) => {
                created = Some((candidate, log));
                break;
            }
            Err(LogError::Io(e)) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let Some((tmp, mut log)) = created else {
        return Err(SnapshotError::Io(std::io::Error::new(
            std::io::ErrorKind::AlreadyExists,
            "could not allocate a unique snapshot temp file",
        )));
    };
    let result = (|| {
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(SNAP_MAGIC);
        header.extend_from_slice(&(forest.len() as u64).to_be_bytes());
        log.append(&header)?;
        // Pre-order per root: parents always precede children.
        let roots: Vec<ObjectId> = forest.roots().collect();
        for root in roots {
            for id in forest.subtree_ids(root) {
                log.append(&encode_node(forest, id))?;
            }
        }
        log.sync()?;
        drop(log);
        vfs.rename(&tmp, path)?;
        // Make the rename itself durable: without this, a crash right
        // after `save` returns could resurrect the old snapshot — or, for
        // a first save, lose the file entirely.
        vfs.sync_parent_dir(path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

/// Loads a forest saved by [`save_forest`].
pub fn load_forest(path: impl AsRef<Path>) -> Result<Forest, SnapshotError> {
    load_forest_with(real_vfs(), path)
}

/// [`load_forest`] against an explicit [`Vfs`].
pub fn load_forest_with(
    vfs: Arc<dyn Vfs>,
    path: impl AsRef<Path>,
) -> Result<Forest, SnapshotError> {
    let recovered = AppendLog::open_with(vfs, path.as_ref())?;
    let mut frames = recovered.payloads.into_iter();
    let header = frames.next().ok_or(SnapshotError::BadHeader)?;
    let rest = header
        .strip_prefix(SNAP_MAGIC)
        .ok_or(SnapshotError::BadHeader)?;
    if rest.len() != 8 {
        return Err(SnapshotError::BadHeader);
    }
    let expected = u64::from_be_bytes(rest.try_into().expect("checked length"));

    let mut forest = Forest::new();
    let mut loaded = 0u64;
    for frame in frames {
        let mut r = Reader::new(&frame);
        let parse = (|| -> Result<(), tep_model::encode::DecodeError> {
            let id = ObjectId(r.u64()?);
            let parent = match r.u8()? {
                0 => None,
                1 => Some(ObjectId(r.u64()?)),
                t => return Err(tep_model::encode::DecodeError::BadTag(t)),
            };
            let value = decode_value(&mut r)?;
            r.expect_end()?;
            forest
                .insert_with_id(id, value, parent)
                .map_err(|_| tep_model::encode::DecodeError::BadTag(0xFD))?;
            Ok(())
        })();
        parse.map_err(|e| SnapshotError::CorruptNode(e.to_string()))?;
        loaded += 1;
    }
    if loaded != expected {
        return Err(SnapshotError::Incomplete {
            expected,
            found: loaded,
        });
    }
    Ok(forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use tep_model::Value;

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tep-snap-{}-{}-{}.snap",
            std::process::id(),
            tag,
            n
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn sample_forest() -> Forest {
        let mut f = Forest::new();
        let db = f.insert(Value::text("db"), None).unwrap();
        let t = f.insert(Value::text("t"), Some(db)).unwrap();
        for r in 0..5i64 {
            let row = f.insert(Value::Null, Some(t)).unwrap();
            for a in 0..3i64 {
                f.insert(Value::Int(r * 10 + a), Some(row)).unwrap();
            }
        }
        // A second, detached root too.
        f.insert(Value::real(2.5), None).unwrap();
        f
    }

    #[test]
    fn roundtrip_preserves_structure_and_values() {
        let path = temp_path("roundtrip");
        let _guard = Cleanup(path.clone());
        let f = sample_forest();
        save_forest(&f, &path).unwrap();
        let g = load_forest(&path).unwrap();
        assert_eq!(f.len(), g.len());
        assert_eq!(f.roots().collect::<Vec<_>>(), g.roots().collect::<Vec<_>>());
        for id in f.ids() {
            let a = f.node(id).unwrap();
            let b = g.node(id).unwrap();
            assert_eq!(a.value(), b.value());
            assert_eq!(a.parent(), b.parent());
            assert_eq!(
                a.children().collect::<Vec<_>>(),
                b.children().collect::<Vec<_>>()
            );
        }
        // Fresh ids continue past the snapshot's.
        assert_eq!(f.next_id_hint(), g.next_id_hint());
    }

    #[test]
    fn empty_forest_roundtrips() {
        let path = temp_path("empty");
        let _guard = Cleanup(path.clone());
        save_forest(&Forest::new(), &path).unwrap();
        let g = load_forest(&path).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn save_replaces_existing_snapshot_atomically() {
        let path = temp_path("replace");
        let _guard = Cleanup(path.clone());
        save_forest(&sample_forest(), &path).unwrap();
        let mut small = Forest::new();
        small.insert(Value::Int(1), None).unwrap();
        save_forest(&small, &path).unwrap();
        assert_eq!(load_forest(&path).unwrap().len(), 1);
    }

    #[test]
    fn truncated_snapshot_detected() {
        let path = temp_path("torn");
        let _guard = Cleanup(path.clone());
        save_forest(&sample_forest(), &path).unwrap();
        // Chop the tail: the log recovers fewer node frames than promised.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 10).unwrap();
        drop(file);
        assert!(matches!(
            load_forest(&path),
            Err(SnapshotError::Incomplete { .. })
        ));
    }

    #[test]
    fn non_snapshot_rejected() {
        let path = temp_path("bad");
        let _guard = Cleanup(path.clone());
        // A valid log that is not a snapshot.
        let mut log = AppendLog::create(&path).unwrap();
        log.append(b"not a header").unwrap();
        log.sync().unwrap();
        drop(log);
        assert!(matches!(load_forest(&path), Err(SnapshotError::BadHeader)));
        // Not a log at all.
        std::fs::write(&path, b"garbage").unwrap();
        assert!(load_forest(&path).is_err());
    }
}
