//! Durable single-blob checkpoint storage for replica catch-up.
//!
//! A replica tailing a primary seals its streaming verifier state
//! (`tep_core::streaming::VerifierCheckpoint`) after every durably
//! applied batch, so a power cycle mid-catch-up resumes verification
//! from the last *verified* offset instead of re-verifying (or worse,
//! trusting) everything from scratch. The blob travels opaquely — its
//! cryptographic self-authentication lives in the sealing layer; this
//! store only guarantees **atomic replacement** and **honest absence**:
//!
//! * [`CheckpointStore::save`] writes a temp file, fsyncs it, renames it
//!   over the live name, and fsyncs the parent directory — all through
//!   the [`Vfs`] seam, so the crash-at-every-op fault sweeps apply.
//! * [`CheckpointStore::load`] treats a missing, torn, or CRC-damaged
//!   file as `Ok(None)` (rebuild from the local log), never as data.
//!   A crash can only lose the *newest* checkpoint, falling back to the
//!   previous one or to a clean rebuild — both safe, since the durable
//!   record log remains the source of truth for what was applied.

use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use crate::crc::frame_crc;
use crate::vfs::Vfs;

/// Magic prefix of a checkpoint file.
const MAGIC: &[u8; 8] = b"TEPRCKP\x01";

/// Atomically-replaced durable storage for one opaque checkpoint blob.
pub struct CheckpointStore {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
}

impl CheckpointStore {
    /// Binds the store to `path` on `vfs`. Nothing is touched until the
    /// first [`save`](Self::save) or [`load`](Self::load).
    pub fn new(vfs: Arc<dyn Vfs>, path: impl Into<PathBuf>) -> Self {
        CheckpointStore {
            vfs,
            path: path.into(),
        }
    }

    fn tmp_path(&self) -> PathBuf {
        let mut name = self
            .path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "checkpoint".into());
        name.push(".tmp");
        self.path.with_file_name(name)
    }

    /// Durably replaces the stored blob: temp file → fsync → rename →
    /// parent-dir fsync. After `save` returns, a power cycle yields
    /// either this blob or the previous one — never a mix.
    pub fn save(&self, blob: &[u8]) -> io::Result<()> {
        let tmp = self.tmp_path();
        if self.vfs.exists(&tmp) {
            // Leftover from an earlier crash between create and rename.
            self.vfs.remove_file(&tmp)?;
        }
        let mut file = self.vfs.create_new(&tmp)?;
        let len = blob.len() as u32;
        let mut framed = Vec::with_capacity(16 + blob.len());
        framed.extend_from_slice(MAGIC);
        framed.extend_from_slice(&len.to_be_bytes());
        framed.extend_from_slice(&frame_crc(len, blob).to_be_bytes());
        framed.extend_from_slice(blob);
        file.write_all(&framed)?;
        file.sync_data()?;
        drop(file);
        self.vfs.rename(&tmp, &self.path)?;
        self.vfs.sync_parent_dir(&self.path)
    }

    /// Loads the stored blob. Missing, truncated, or checksum-damaged
    /// files load as `Ok(None)` — a crash-torn checkpoint means "rebuild
    /// from the log", not an error and *never* tamper evidence (the
    /// sealed blob's own authentication handles malice).
    pub fn load(&self) -> io::Result<Option<Vec<u8>>> {
        if !self.vfs.exists(&self.path) {
            return Ok(None);
        }
        let mut file = self.vfs.open_rw(&self.path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < 16 || &bytes[..8] != MAGIC {
            return Ok(None);
        }
        let len = u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let crc = u32::from_be_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        let Some(blob) = bytes.get(16..16 + len) else {
            return Ok(None);
        };
        if bytes.len() != 16 + len || frame_crc(len as u32, blob) != crc {
            return Ok(None);
        }
        Ok(Some(blob.to_vec()))
    }

    /// Removes the stored blob (durably), if present.
    pub fn clear(&self) -> io::Result<()> {
        if self.vfs.exists(&self.path) {
            self.vfs.remove_file(&self.path)?;
            self.vfs.sync_parent_dir(&self.path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultVfs};

    fn store(vfs: &Arc<FaultVfs>) -> CheckpointStore {
        let dyn_vfs: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
        CheckpointStore::new(dyn_vfs, "/repl/ckpt")
    }

    fn fault_vfs(cfg: FaultConfig) -> Arc<FaultVfs> {
        FaultVfs::new(cfg)
    }

    #[test]
    fn save_load_roundtrip_and_replace() {
        let vfs = fault_vfs(FaultConfig::default());
        let s = store(&vfs);
        assert_eq!(s.load().unwrap(), None);
        s.save(b"first").unwrap();
        assert_eq!(s.load().unwrap().as_deref(), Some(&b"first"[..]));
        s.save(b"second, longer blob").unwrap();
        assert_eq!(
            s.load().unwrap().as_deref(),
            Some(&b"second, longer blob"[..])
        );
        s.clear().unwrap();
        assert_eq!(s.load().unwrap(), None);
    }

    #[test]
    fn damaged_file_loads_as_absent_not_error() {
        let vfs = fault_vfs(FaultConfig::default());
        let s = store(&vfs);
        s.save(b"precious state").unwrap();
        vfs.corrupt_byte("/repl/ckpt".as_ref(), 20);
        assert_eq!(s.load().unwrap(), None, "CRC damage must read as absent");
    }

    /// A power cut at every op of a save sequence yields either the old
    /// blob, the new blob, or (only before the first save completes)
    /// nothing — never a torn mix read back as data.
    #[test]
    fn crash_at_every_op_yields_old_new_or_none() {
        // Dry run to size the op space of save(old) + save(new).
        let vfs = fault_vfs(FaultConfig::default());
        let s = store(&vfs);
        s.save(b"old").unwrap();
        s.save(b"new").unwrap();
        let total_ops = vfs.ops();

        for crash_at in 1..=total_ops {
            let cfg = FaultConfig {
                seed: 0xC4A5 + crash_at,
                crash_at_op: Some(crash_at),
                ..FaultConfig::default()
            };
            let vfs = fault_vfs(cfg);
            let s = store(&vfs);
            let first = s.save(b"old");
            let crashed_in_first = first.is_err();
            if !crashed_in_first {
                let _ = s.save(b"new");
            }
            vfs.power_cycle();
            let s = store(&vfs);
            let loaded = s.load().unwrap();
            match loaded.as_deref() {
                None => assert!(
                    crashed_in_first,
                    "crash at op {crash_at}: completed save(old) lost its blob"
                ),
                Some(b"old") | Some(b"new") => {}
                Some(other) => {
                    panic!("crash at op {crash_at}: torn blob surfaced as data: {other:?}")
                }
            }
        }
    }
}
