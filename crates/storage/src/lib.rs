//! # tep-storage
//!
//! Embedded storage substrate for tamper-evident provenance. The paper's
//! experiments ran against two MySQL databases (a back-end database and a
//! provenance database, §5.1); this crate provides the equivalent
//! self-contained storage engine:
//!
//! * [`archive`] — checkpoint-anchored log compaction: pre-checkpoint
//!   frames move to cold CRC-framed archive segments and the live log is
//!   rewritten behind a cumulative compaction stamp.
//! * [`checkpoint_store`] — atomically-replaced durable blob storage for
//!   replica catch-up checkpoints (sealed verifier state survives a
//!   power cycle; a torn file honestly reads as absent).
//! * [`crc`] — CRC-32 frame checksums (accidental-corruption protection,
//!   distinct from the cryptographic tamper-evidence layer).
//! * [`log`] — a CRC-framed append-only log with torn-write recovery, the
//!   durability primitive.
//! * [`provenance_db`] — the provenance record store: the paper's
//!   `⟨SeqID, Participant, Oid, Checksum(128)⟩` rows plus the full record
//!   payload, indexed by object, optionally durable.
//! * [`tenant_shards`] — tenant-sharded storage: one independent append
//!   log (and quarantine sidecar) per tenant under a single root, opened
//!   independently so one tenant's storage fault never degrades another.
//! * [`vfs`] — the virtual-filesystem seam every durable structure writes
//!   through: a real `std::fs` passthrough for production and a seeded
//!   deterministic fault injector (torn writes, lying fsync, ENOSPC,
//!   crash-at-op-N) for crash-consistency testing.
//!
//! The back-end (user-data) database is the in-memory
//! [`tep_model::Forest`]; its durability is out of scope for the paper's
//! measurements, which only time checksum generation and provenance-row
//! storage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod archive;
pub mod checkpoint_store;
pub mod crc;
pub mod log;
pub mod obs_vfs;
pub mod provenance_db;
pub mod snapshot;
pub mod tenant_shards;
pub mod vfs;

pub use archive::{
    archive_path_for, compact_durable_log, read_archive, ArchiveSegment, CompactionReport,
    CompactionStamp,
};
pub use checkpoint_store::CheckpointStore;
pub use log::{quarantine_path, AppendLog, GapKind, LogError, LogGap, RecoveredLog};
pub use obs_vfs::{record_recovery, ObservedVfs};
pub use provenance_db::{ProvenanceDb, RecoveryReport, StoreError, StoredRecord};
pub use snapshot::{load_forest, load_forest_with, save_forest, save_forest_with, SnapshotError};
pub use tenant_shards::{shard_path, TenantShards};
pub use vfs::{FaultConfig, FaultVfs, RealVfs, Vfs, VirtualFile};
