//! Tenant-sharded provenance storage: one independent append log per
//! tenant under a single root directory.
//!
//! Tenancy is a *bulkhead*. Each tenant's records live in their own
//! [`ProvenanceDb`] (own [`crate::AppendLog`], own quarantine sidecar,
//! own compaction stamp), so a torn write, ENOSPC, or quarantine in
//! tenant A's shard cannot touch tenant B's open, verification, or
//! compaction. The shard set is opened *independently*: a shard whose
//! open fails outright (a dead disk, a crashed fault VFS) is recorded as
//! failed for that tenant and every other shard still comes up.
//!
//! Layout: `<root>/tenant-<id>.log` (flat, one file per tenant). The
//! [`Vfs`] seam has no directory operations, so shards are files rather
//! than subdirectories; every derived artifact (the `.quarantine`
//! sidecar, a `.tepidx` query index) appends to the shard's **full**
//! file name, so two tenants' artifacts can never collide — see
//! [`crate::quarantine_path`].

use crate::provenance_db::{ProvenanceDb, RecoveryReport};
use crate::vfs::{real_vfs, Vfs};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tep_model::TenantId;

/// Path of `tenant`'s shard log under `root`: `<root>/tenant-<id>.log`.
pub fn shard_path(root: &Path, tenant: TenantId) -> PathBuf {
    root.join(format!("tenant-{}.log", tenant.raw()))
}

/// One tenant's shard: either an open store or the reason its open
/// failed. A failed shard is *that tenant's* problem — the rest of the
/// fleet keeps serving.
enum ShardState {
    Open(Arc<ProvenanceDb>),
    Failed(String),
}

/// A set of per-tenant [`ProvenanceDb`] shards under one root.
///
/// ```
/// use tep_storage::tenant_shards::TenantShards;
/// use tep_model::TenantId;
///
/// let root = std::env::temp_dir().join(format!("tep-shards-doc-{}", std::process::id()));
/// let shards = TenantShards::open(&root, &[TenantId(1), TenantId(2)]).unwrap();
/// assert!(shards.shard(TenantId(1)).is_some());
/// assert!(shards.shard(TenantId(3)).is_none());
/// # let _ = std::fs::remove_dir_all(&root);
/// ```
pub struct TenantShards {
    root: PathBuf,
    shards: BTreeMap<TenantId, ShardState>,
}

impl TenantShards {
    /// Opens (or creates) one durable shard per tenant under `root` on
    /// the real filesystem, creating `root` if needed.
    pub fn open(root: impl AsRef<Path>, tenants: &[TenantId]) -> std::io::Result<TenantShards> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let vfs = real_vfs();
        Ok(Self::open_with(
            &root,
            tenants.iter().map(|&t| (t, Arc::clone(&vfs))),
        ))
    }

    /// Opens shards with an explicit [`Vfs`] *per tenant* — the seam the
    /// tenant-isolation chaos soak uses to aim a fault injector at one
    /// tenant's disk while the others run on healthy storage.
    ///
    /// Every shard is opened independently; an open that errors marks
    /// only that tenant's shard failed (see [`TenantShards::shard_error`])
    /// and never prevents the other tenants from coming up.
    pub fn open_with(
        root: impl AsRef<Path>,
        specs: impl IntoIterator<Item = (TenantId, Arc<dyn Vfs>)>,
    ) -> TenantShards {
        let root = root.as_ref().to_path_buf();
        let mut shards = BTreeMap::new();
        for (tenant, vfs) in specs {
            let path = shard_path(&root, tenant);
            let state = match ProvenanceDb::durable_with(vfs, &path) {
                Ok(db) => ShardState::Open(Arc::new(db)),
                Err(e) => ShardState::Failed(e.to_string()),
            };
            shards.insert(tenant, state);
        }
        TenantShards { root, shards }
    }

    /// The root directory the shards live under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The tenants this shard set was opened for, in id order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.shards.keys().copied().collect()
    }

    /// `tenant`'s open shard, if it exists and its open succeeded.
    pub fn shard(&self, tenant: TenantId) -> Option<Arc<ProvenanceDb>> {
        match self.shards.get(&tenant) {
            Some(ShardState::Open(db)) => Some(Arc::clone(db)),
            _ => None,
        }
    }

    /// Why `tenant`'s shard failed to open, if it did.
    pub fn shard_error(&self, tenant: TenantId) -> Option<&str> {
        match self.shards.get(&tenant) {
            Some(ShardState::Failed(why)) => Some(why),
            _ => None,
        }
    }

    /// What recovery found when `tenant`'s shard was opened.
    pub fn recovery(&self, tenant: TenantId) -> Option<RecoveryReport> {
        self.shard(tenant).map(|db| db.recovery())
    }

    /// Path of `tenant`'s shard log (whether or not it opened).
    pub fn path_of(&self, tenant: TenantId) -> PathBuf {
        shard_path(&self.root, tenant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::quarantine_path;
    use crate::vfs::{FaultConfig, FaultVfs};
    use crate::StoredRecord;
    use tep_model::{ObjectId, ParticipantId};

    fn rec(oid: u64, seq: u64) -> StoredRecord {
        StoredRecord {
            seq_id: seq,
            participant: ParticipantId(1),
            oid: ObjectId(oid),
            checksum: vec![0xAB; 128],
            payload: format!("p-{oid}-{seq}").into_bytes(),
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tep-shards-{}-{}", std::process::id(), tag))
    }

    #[test]
    fn shard_paths_are_disjoint_per_tenant() {
        let root = Path::new("/data");
        let a = shard_path(root, TenantId(1));
        let b = shard_path(root, TenantId(2));
        assert_ne!(a, b);
        // Derived artifacts append to the full file name, so they are
        // disjoint too — no tenant can clobber another's recovery state.
        assert_ne!(quarantine_path(&a), quarantine_path(&b));
        assert!(quarantine_path(&a)
            .to_string_lossy()
            .contains("tenant-1.log.quarantine"));
    }

    #[test]
    fn shards_open_and_persist_independently() {
        let root = temp_root("roundtrip");
        let _ = std::fs::remove_dir_all(&root);
        {
            let shards = TenantShards::open(&root, &[TenantId(1), TenantId(2)]).unwrap();
            let a = shards.shard(TenantId(1)).unwrap();
            let b = shards.shard(TenantId(2)).unwrap();
            a.append(rec(1, 0)).unwrap();
            a.append(rec(1, 1)).unwrap();
            b.append(rec(9, 0)).unwrap();
            a.sync().unwrap();
            b.sync().unwrap();
        }
        let shards = TenantShards::open(&root, &[TenantId(1), TenantId(2)]).unwrap();
        assert_eq!(shards.shard(TenantId(1)).unwrap().len(), 2);
        assert_eq!(shards.shard(TenantId(2)).unwrap().len(), 1);
        assert!(shards.shard(TenantId(3)).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_in_one_shard_leaves_the_other_untouched() {
        // Tenant A's disk is a fault injector; tenant B's is healthy.
        let vfs_a = FaultVfs::new(FaultConfig::default());
        let vfs_b = FaultVfs::new(FaultConfig::default());
        let root = PathBuf::from("/shards");
        let specs = |a: Arc<FaultVfs>, b: Arc<FaultVfs>| {
            vec![
                (TenantId(1), a as Arc<dyn Vfs>),
                (TenantId(2), b as Arc<dyn Vfs>),
            ]
        };
        {
            let shards =
                TenantShards::open_with(&root, specs(Arc::clone(&vfs_a), Arc::clone(&vfs_b)));
            let a = shards.shard(TenantId(1)).unwrap();
            let b = shards.shard(TenantId(2)).unwrap();
            for seq in 0..4 {
                a.append(rec(1, seq)).unwrap();
                b.append(rec(2, seq)).unwrap();
            }
            a.sync().unwrap();
            b.sync().unwrap();
        }
        // Flip a byte in the interior of A's log only.
        assert!(vfs_a.corrupt_byte(&shard_path(&root, TenantId(1)), 200));

        let shards = TenantShards::open_with(&root, specs(vfs_a, vfs_b));
        let ra = shards.recovery(TenantId(1)).unwrap();
        let rb = shards.recovery(TenantId(2)).unwrap();
        assert!(ra.is_degraded(), "A's corruption must be quarantined");
        assert!(!rb.is_degraded(), "B must open clean");
        assert_eq!(shards.shard(TenantId(2)).unwrap().len(), 4);
    }

    #[test]
    fn failed_open_is_isolated_to_its_tenant() {
        // Tenant A's vfs is already crashed (every op fails); B's works.
        let vfs_a = FaultVfs::new(FaultConfig {
            crash_at_op: Some(1),
            ..FaultConfig::default()
        });
        let vfs_b = FaultVfs::new(FaultConfig::default());
        let shards = TenantShards::open_with(
            "/shards",
            vec![
                (TenantId(1), vfs_a as Arc<dyn Vfs>),
                (TenantId(2), vfs_b as Arc<dyn Vfs>),
            ],
        );
        assert!(shards.shard(TenantId(1)).is_none());
        assert!(shards.shard_error(TenantId(1)).is_some());
        assert!(shards.shard(TenantId(2)).is_some());
        assert!(shards.shard_error(TenantId(2)).is_none());
        assert_eq!(shards.tenants(), vec![TenantId(1), TenantId(2)]);
    }
}
