//! Checkpoint-anchored log compaction and cold archive segments.
//!
//! Append-only provenance logs grow without bound. Once a sealed
//! checkpoint attests the chain heads (see `tep_core::checkpoint`), every
//! frame *before* the checkpoint watermark can be excised from the live
//! log: R2/R3 continuity is then verified *through* the checkpoint instead
//! of the excised records. Nothing acknowledged is ever deleted — excised
//! frames move to a cold, CRC-framed **archive segment**, and the live log
//! is atomically rewritten with a leading **compaction stamp** that records
//! exactly what was removed and under which checkpoint's authority.
//!
//! On-disk shapes (both reuse the [`AppendLog`] frame format, so they get
//! torn-write recovery and quarantine for free):
//!
//! ```text
//! live log   := log-header stamp-frame record-frame*
//! stamp      := "TEPSTMP\x01" generation(u64) excised_frames(u64)
//!               excised_bytes(u64) watermark(u64) ckpt_digest(len-prefixed)
//! archive    := log-header archive-header-frame excised-record-frame*
//! arch-hdr   := "TEPARCH\x01" generation(u64) watermark(u64)
//!               ckpt_digest(len-prefixed)
//! ```
//!
//! Crash safety (every step runs under the [`Vfs`] fault injector in
//! `tests/compaction_crash.rs`):
//!
//! 1. the archive segment is written and fsynced **first** — no frame is
//!    ever dropped from the live log without a durable cold copy;
//! 2. the new live log (stamp + kept frames) is built at a unique temp
//!    sibling, fsynced, then renamed over the original — the rename is the
//!    single commit point;
//! 3. a crash before the rename leaves the original log byte-intact (the
//!    half-written archive for that generation is an uncommitted orphan and
//!    is removed on retry); a crash after the rename is a completed
//!    compaction.
//!
//! The stamp's `excised_*` totals are **cumulative across generations**, so
//! the verifier can reconstruct the full append-position space without
//! reading any archive.

use crate::log::{AppendLog, LogError, FRAME_HEADER_LEN};
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tep_model::encode::{DecodeError, Reader};

const STAMP_MAGIC: &[u8; 8] = b"TEPSTMP\x01";
const ARCHIVE_MAGIC: &[u8; 8] = b"TEPARCH\x01";

/// The leading frame of a compacted live log: what was excised, and under
/// which sealed checkpoint's authority.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactionStamp {
    /// How many compactions this log has undergone (1-based).
    pub generation: u64,
    /// Total record frames excised across **all** generations.
    pub excised_frames: u64,
    /// Total live-log bytes (frame header + payload) excised across all
    /// generations.
    pub excised_bytes: u64,
    /// The checkpoint watermark (cumulative append position) this
    /// compaction truncated up to.
    pub watermark: u64,
    /// Digest of the sealed checkpoint that authorizes the excision.
    pub checkpoint_digest: Vec<u8>,
}

impl CompactionStamp {
    /// Canonical frame encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.checkpoint_digest.len());
        out.extend_from_slice(STAMP_MAGIC);
        out.extend_from_slice(&self.generation.to_be_bytes());
        out.extend_from_slice(&self.excised_frames.to_be_bytes());
        out.extend_from_slice(&self.excised_bytes.to_be_bytes());
        out.extend_from_slice(&self.watermark.to_be_bytes());
        out.extend_from_slice(&(self.checkpoint_digest.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.checkpoint_digest);
        out
    }

    /// Decodes a stamp frame; fails fast on anything without the magic.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        if r.bytes(8)? != STAMP_MAGIC {
            return Err(DecodeError::UnexpectedEof);
        }
        let generation = r.u64()?;
        let excised_frames = r.u64()?;
        let excised_bytes = r.u64()?;
        let watermark = r.u64()?;
        let checkpoint_digest = r.len_prefixed()?.to_vec();
        r.expect_end()?;
        Ok(CompactionStamp {
            generation,
            excised_frames,
            excised_bytes,
            watermark,
            checkpoint_digest,
        })
    }
}

/// A cold archive segment read back from disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchiveSegment {
    /// The compaction generation that produced this segment.
    pub generation: u64,
    /// The checkpoint watermark the segment was truncated up to.
    pub watermark: u64,
    /// Digest of the authorizing sealed checkpoint.
    pub checkpoint_digest: Vec<u8>,
    /// The excised record frames, in original append order.
    pub payloads: Vec<Vec<u8>>,
}

/// Outcome of one [`compact_durable_log`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactionReport {
    /// Record frames kept in the live log.
    pub kept_frames: u64,
    /// Record frames excised by **this** run.
    pub excised_frames: u64,
    /// Live-log bytes excised by this run.
    pub excised_bytes: u64,
    /// Live-log size before / after, in bytes.
    pub bytes_before: u64,
    /// Live-log size after the rewrite, in bytes.
    pub bytes_after: u64,
    /// Where the excised frames went (absent when nothing was excised).
    pub archive_path: Option<PathBuf>,
    /// The stamp now leading the live log (cumulative totals).
    pub stamp: CompactionStamp,
}

impl CompactionReport {
    /// Live-log shrink factor (`bytes_before / bytes_after`).
    pub fn ratio(&self) -> f64 {
        self.bytes_before as f64 / self.bytes_after.max(1) as f64
    }
}

/// The archive segment path for compaction `generation` of `path`.
pub fn archive_path_for(path: &Path, generation: u64) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".archive.{generation}"));
    PathBuf::from(os)
}

/// Reads a cold archive segment back (header frame + excised frames).
pub fn read_archive(vfs: Arc<dyn Vfs>, path: &Path) -> Result<ArchiveSegment, LogError> {
    let rec = AppendLog::open_with(vfs, path)?;
    let Some(header) = rec.payloads.first() else {
        return Err(LogError::BadHeader);
    };
    let mut r = Reader::new(header);
    let parsed = (|| -> Result<(u64, u64, Vec<u8>), DecodeError> {
        if r.bytes(8)? != ARCHIVE_MAGIC {
            return Err(DecodeError::UnexpectedEof);
        }
        let generation = r.u64()?;
        let watermark = r.u64()?;
        let digest = r.len_prefixed()?.to_vec();
        r.expect_end()?;
        Ok((generation, watermark, digest))
    })();
    let (generation, watermark, checkpoint_digest) = parsed.map_err(|_| LogError::BadHeader)?;
    Ok(ArchiveSegment {
        generation,
        watermark,
        checkpoint_digest,
        payloads: rec.payloads[1..].to_vec(),
    })
}

fn archive_header(generation: u64, watermark: u64, checkpoint_digest: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + checkpoint_digest.len());
    out.extend_from_slice(ARCHIVE_MAGIC);
    out.extend_from_slice(&generation.to_be_bytes());
    out.extend_from_slice(&watermark.to_be_bytes());
    out.extend_from_slice(&(checkpoint_digest.len() as u64).to_be_bytes());
    out.extend_from_slice(checkpoint_digest);
    out
}

/// Compacts the durable log at `path`: record frames failing `keep` move to
/// a cold archive segment, the survivors are rewritten behind a cumulative
/// [`CompactionStamp`], and the swap commits atomically via rename.
///
/// `keep` is called with each record frame's index **within the current
/// live log** (the leading stamp, if any, is not counted) and its payload;
/// the cumulative append position is `stamp.excised_frames + index`. The
/// log must be closed — callers reopen (e.g. via `ProvenanceDb::durable`)
/// after compaction.
///
/// When `keep` keeps everything the log is left untouched (same
/// generation, no archive, no rewrite).
pub fn compact_durable_log(
    vfs: Arc<dyn Vfs>,
    path: &Path,
    mut keep: impl FnMut(usize, &[u8]) -> bool,
    watermark: u64,
    checkpoint_digest: &[u8],
) -> Result<CompactionReport, LogError> {
    let recovered = AppendLog::open_with(Arc::clone(&vfs), path)?;
    let bytes_before = recovered.log.len_bytes();
    drop(recovered.log);

    // A compacted log leads with its stamp; carry the totals forward.
    let prior = recovered
        .payloads
        .first()
        .and_then(|p| CompactionStamp::from_bytes(p).ok());
    let records = &recovered.payloads[if prior.is_some() { 1 } else { 0 }..];

    let mut kept: Vec<Vec<u8>> = Vec::new();
    let mut excised: Vec<Vec<u8>> = Vec::new();
    for (i, payload) in records.iter().enumerate() {
        if keep(i, payload) {
            kept.push(payload.clone());
        } else {
            excised.push(payload.clone());
        }
    }

    let (prior_gen, prior_frames, prior_bytes) = prior
        .as_ref()
        .map(|s| (s.generation, s.excised_frames, s.excised_bytes))
        .unwrap_or((0, 0, 0));

    if excised.is_empty() {
        let stamp = prior.unwrap_or(CompactionStamp {
            generation: prior_gen,
            excised_frames: 0,
            excised_bytes: 0,
            watermark,
            checkpoint_digest: checkpoint_digest.to_vec(),
        });
        return Ok(CompactionReport {
            kept_frames: kept.len() as u64,
            excised_frames: 0,
            excised_bytes: 0,
            bytes_before,
            bytes_after: bytes_before,
            archive_path: None,
            stamp,
        });
    }

    let run_bytes: u64 = excised
        .iter()
        .map(|p| (FRAME_HEADER_LEN + p.len()) as u64)
        .sum();
    let generation = prior_gen + 1;
    let stamp = CompactionStamp {
        generation,
        excised_frames: prior_frames + excised.len() as u64,
        excised_bytes: prior_bytes + run_bytes,
        watermark,
        checkpoint_digest: checkpoint_digest.to_vec(),
    };

    // Step 1: durable cold copy. An existing file at this generation's path
    // can only be the orphan of a crashed attempt (the commit point is the
    // live-log rename, and a committed log's stamp already counts past this
    // generation) — remove and rewrite it.
    let apath = archive_path_for(path, generation);
    if vfs.exists(&apath) {
        vfs.remove_file(&apath)?;
    }
    let mut archive = AppendLog::create_with(Arc::clone(&vfs), &apath)?;
    archive.append(&archive_header(generation, watermark, checkpoint_digest))?;
    for p in &excised {
        archive.append(p)?;
    }
    archive.sync()?;
    drop(archive);
    vfs.sync_parent_dir(&apath)?;

    // Step 2: rewrite the live log behind the new stamp; rename commits.
    let mut frames = Vec::with_capacity(1 + kept.len());
    frames.push(stamp.to_bytes());
    frames.extend(kept.iter().cloned());
    AppendLog::rewrite_atomically(&vfs, path, &frames)?;

    let bytes_after = crate::log::HEADER_LEN
        + frames
            .iter()
            .map(|p| (FRAME_HEADER_LEN + p.len()) as u64)
            .sum::<u64>();
    Ok(CompactionReport {
        kept_frames: kept.len() as u64,
        excised_frames: excised.len() as u64,
        excised_bytes: run_bytes,
        bytes_before,
        bytes_after,
        archive_path: Some(apath),
        stamp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultVfs};

    fn frame(i: u8) -> Vec<u8> {
        vec![i; 64]
    }

    fn seeded_log(vfs: &Arc<dyn Vfs>, path: &Path, n: u8) {
        let mut log = AppendLog::create_with(Arc::clone(vfs), path).unwrap();
        for i in 0..n {
            log.append(&frame(i)).unwrap();
        }
        log.sync().unwrap();
    }

    #[test]
    fn stamp_roundtrip_and_magic_guard() {
        let stamp = CompactionStamp {
            generation: 3,
            excised_frames: 120,
            excised_bytes: 9000,
            watermark: 150,
            checkpoint_digest: vec![0xAB; 32],
        };
        let bytes = stamp.to_bytes();
        assert_eq!(CompactionStamp::from_bytes(&bytes).unwrap(), stamp);
        assert!(CompactionStamp::from_bytes(b"TEPLOG\x00\x01whatever").is_err());
        assert!(CompactionStamp::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn compaction_moves_frames_to_archive_and_stamps_log() {
        let vfs: Arc<dyn Vfs> = FaultVfs::new(FaultConfig::default());
        let path = Path::new("/log");
        seeded_log(&vfs, path, 10);

        let report =
            compact_durable_log(Arc::clone(&vfs), path, |i, _| i >= 6, 6, b"ckpt-digest").unwrap();
        assert_eq!(report.kept_frames, 4);
        assert_eq!(report.excised_frames, 6);
        assert!(report.bytes_after < report.bytes_before);
        assert!(report.ratio() > 1.0);
        assert_eq!(report.stamp.generation, 1);
        assert_eq!(report.stamp.excised_frames, 6);
        assert_eq!(report.stamp.watermark, 6);

        // Live log: stamp frame + the four survivors.
        let rec = AppendLog::open_with(Arc::clone(&vfs), path).unwrap();
        assert_eq!(rec.payloads.len(), 5);
        let stamp = CompactionStamp::from_bytes(&rec.payloads[0]).unwrap();
        assert_eq!(stamp, report.stamp);
        assert_eq!(rec.payloads[1], frame(6));
        drop(rec);

        // Archive: header + the six excised frames, in order.
        let seg = read_archive(Arc::clone(&vfs), report.archive_path.as_deref().unwrap()).unwrap();
        assert_eq!(seg.generation, 1);
        assert_eq!(seg.watermark, 6);
        assert_eq!(seg.checkpoint_digest, b"ckpt-digest");
        assert_eq!(seg.payloads.len(), 6);
        assert_eq!(seg.payloads[0], frame(0));
        assert_eq!(seg.payloads[5], frame(5));
    }

    #[test]
    fn repeated_compaction_accumulates_stamp_totals() {
        let vfs: Arc<dyn Vfs> = FaultVfs::new(FaultConfig::default());
        let path = Path::new("/log");
        seeded_log(&vfs, path, 8);

        let r1 = compact_durable_log(Arc::clone(&vfs), path, |i, _| i >= 3, 3, b"c1").unwrap();
        assert_eq!(r1.stamp.excised_frames, 3);

        // Indices in the second run are relative to the compacted log:
        // cumulative position = stamp.excised_frames + index.
        let r2 = compact_durable_log(
            Arc::clone(&vfs),
            path,
            |i, _| r1.stamp.excised_frames + i as u64 >= 6,
            6,
            b"c2",
        )
        .unwrap();
        assert_eq!(r2.stamp.generation, 2);
        assert_eq!(r2.stamp.excised_frames, 6);
        assert_eq!(r2.excised_frames, 3);
        assert_eq!(r2.kept_frames, 2);

        // Both archive segments survive with their own authority digests.
        let s1 = read_archive(Arc::clone(&vfs), &archive_path_for(path, 1)).unwrap();
        let s2 = read_archive(Arc::clone(&vfs), &archive_path_for(path, 2)).unwrap();
        assert_eq!(s1.payloads.len(), 3);
        assert_eq!(s2.payloads.len(), 3);
        assert_eq!(s2.checkpoint_digest, b"c2");
        assert_eq!(s2.payloads[0], frame(3));
    }

    #[test]
    fn keep_everything_is_a_no_op() {
        let vfs: Arc<dyn Vfs> = FaultVfs::new(FaultConfig::default());
        let path = Path::new("/log");
        seeded_log(&vfs, path, 4);
        let before = AppendLog::open_with(Arc::clone(&vfs), path)
            .unwrap()
            .payloads;
        let report = compact_durable_log(Arc::clone(&vfs), path, |_, _| true, 0, b"c").unwrap();
        assert_eq!(report.excised_frames, 0);
        assert!(report.archive_path.is_none());
        assert_eq!(report.stamp.generation, 0);
        let after = AppendLog::open_with(Arc::clone(&vfs), path)
            .unwrap()
            .payloads;
        assert_eq!(before, after);
    }

    #[test]
    fn no_excised_frame_is_ever_lost() {
        // Every frame is afterwards readable from live log ∪ archives.
        let vfs: Arc<dyn Vfs> = FaultVfs::new(FaultConfig::default());
        let path = Path::new("/log");
        seeded_log(&vfs, path, 12);
        compact_durable_log(Arc::clone(&vfs), path, |i, _| i >= 5, 5, b"c1").unwrap();
        let r2 = compact_durable_log(Arc::clone(&vfs), path, |i, _| 5 + i as u64 >= 9, 9, b"c2")
            .unwrap();

        let mut all: Vec<Vec<u8>> = Vec::new();
        for g in 1..=r2.stamp.generation {
            all.extend(
                read_archive(Arc::clone(&vfs), &archive_path_for(path, g))
                    .unwrap()
                    .payloads,
            );
        }
        let rec = AppendLog::open_with(Arc::clone(&vfs), path).unwrap();
        all.extend(rec.payloads[1..].iter().cloned());
        let expect: Vec<Vec<u8>> = (0..12u8).map(frame).collect();
        assert_eq!(all, expect);
    }
}
