//! Virtual filesystem: the seam between the storage layer and the disk.
//!
//! Every durable structure in this crate ([`crate::AppendLog`], snapshots,
//! [`crate::ProvenanceDb`]) performs its I/O through the [`Vfs`] /
//! [`VirtualFile`] traits instead of `std::fs` directly. Two
//! implementations exist:
//!
//! * [`RealVfs`] — a thin passthrough to the OS, including the
//!   parent-directory fsync that makes renames and file creation durable
//!   on POSIX systems.
//! * [`FaultVfs`] — a deterministic, seeded, in-memory disk simulator for
//!   crash-consistency testing. It models the page cache / platter split:
//!   writes land in the visible image immediately but only become durable
//!   at `sync_data`; directory operations (create/rename/remove) only
//!   become durable at `sync_parent_dir`. A simulated power cut
//!   ([`FaultConfig::crash_at_op`]) freezes the disk; [`FaultVfs::power_cycle`]
//!   then reconstructs what a real machine would see after reboot: the
//!   durable image plus a seeded prefix of the unsynced operations, with
//!   the first dropped write optionally torn at an arbitrary byte offset.
//!
//! The fault model is the classic WAL-testing one (synced data survives;
//! unsynced data survives as an ordered prefix, possibly torn). Arbitrary
//! out-of-order corruption is covered separately by the bit-flip property
//! tests in `tests/log_recovery_props.rs`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open file handle, abstracted over the backing store.
///
/// `read`/`write`/`seek` follow their `std::io` contracts; in particular
/// `write` MAY consume fewer bytes than offered (a fault-injection mode
/// exercises exactly that), so callers must use `write_all` semantics.
pub trait VirtualFile: Read + Write + Seek + Send + Sync {
    /// Flushes the file's data to durable storage (fsync / fdatasync).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncates or extends the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// A filesystem namespace: open/create/rename/remove files and make
/// directory entries durable.
pub trait Vfs: Send + Sync {
    /// Creates a new file, failing if it already exists (O_EXCL).
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VirtualFile>>;
    /// Opens an existing file for reading and writing.
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VirtualFile>>;
    /// `true` if a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Atomically renames `from` onto `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs the directory containing `path`, making entries (creates,
    /// renames, removals) in it durable.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// Real filesystem passthrough
// ---------------------------------------------------------------------------

/// The production [`Vfs`]: `std::fs` with POSIX durability idioms.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

/// A shared handle to the production filesystem.
pub fn real_vfs() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

impl VirtualFile for std::fs::File {
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        std::fs::File::set_len(self, len)
    }
}

impl Vfs for RealVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VirtualFile>> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        Ok(Box::new(f))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VirtualFile>> {
        let f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(f))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        // Directories cannot be opened for fsync on every platform
        // (Windows); degrade to a no-op there rather than failing saves.
        match std::fs::File::open(&parent) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// Configuration of a [`FaultVfs`]. The default injects no faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Seed for every nondeterministic choice (tear offsets, surviving
    /// unsynced-op prefixes, short-write lengths).
    pub seed: u64,
    /// Simulate a power cut when the Nth mutating operation (1-based:
    /// writes, truncates, syncs, creates, renames, removals) is attempted.
    /// The disk freezes: that operation and all later ones fail until
    /// [`FaultVfs::power_cycle`].
    pub crash_at_op: Option<u64>,
    /// The Nth `sync_data` call (1-based) fails with an I/O error and does
    /// NOT make pending data durable.
    pub fail_sync_at: Option<u64>,
    /// The Nth `sync_data` call (1-based) *lies*: it reports success but
    /// does not make pending data durable (a battery-less write cache).
    pub lie_sync_at: Option<u64>,
    /// Total bytes of file data the disk can hold; writes that would grow
    /// past it fail with an ENOSPC-style error.
    pub disk_capacity: Option<u64>,
    /// `write` consumes a seeded 1..=len prefix of the buffer instead of
    /// all of it, exercising callers' `write_all` retry loops.
    pub short_writes: bool,
}

/// Message carried by every error a frozen (crashed) [`FaultVfs`] returns.
pub const POWER_LOSS_MSG: &str = "simulated power loss";

/// `true` if `e` is the simulated-power-loss error a crashed [`FaultVfs`]
/// returns (directly or wrapped in another error's message).
pub fn is_power_loss(e: &io::Error) -> bool {
    e.to_string().contains(POWER_LOSS_MSG)
}

fn power_loss_err() -> io::Error {
    io::Error::other(POWER_LOSS_MSG)
}

/// SplitMix64: tiny, seedable, deterministic; all the randomness the
/// simulator needs without pulling a dependency into the crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One unsynced data mutation, replayed (or dropped) at power loss.
#[derive(Clone, Debug)]
enum Mutation {
    Write { offset: u64, bytes: Vec<u8> },
    SetLen(u64),
}

/// One unsynced directory mutation.
#[derive(Clone, Debug)]
enum DirOp {
    Create(PathBuf, u64),
    Rename(PathBuf, PathBuf),
    Remove(PathBuf),
}

#[derive(Clone, Debug, Default)]
struct FileState {
    /// What the OS shows (page cache view).
    data: Vec<u8>,
    /// What the platters hold as of the last completed sync.
    durable: Vec<u8>,
    /// Data mutations since the last completed sync, in order.
    pending: Vec<Mutation>,
}

struct State {
    cfg: FaultConfig,
    rng: u64,
    /// File bodies by inode id.
    files: HashMap<u64, FileState>,
    /// Visible directory: name -> inode.
    dir: HashMap<PathBuf, u64>,
    /// Durable directory as of the last `sync_parent_dir`.
    durable_dir: HashMap<PathBuf, u64>,
    /// Directory mutations since the last `sync_parent_dir`, in order.
    pending_dir: Vec<DirOp>,
    next_id: u64,
    ops: u64,
    syncs: u64,
    crashed: bool,
}

impl State {
    /// Counts a mutating operation; returns the power-loss error if this is
    /// the configured crash point (or the disk already froze).
    fn mutating_op(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(power_loss_err());
        }
        self.ops += 1;
        if self.cfg.crash_at_op == Some(self.ops) {
            self.crashed = true;
            return Err(power_loss_err());
        }
        Ok(())
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed {
            Err(power_loss_err())
        } else {
            Ok(())
        }
    }

    fn total_bytes(&self) -> u64 {
        self.files.values().map(|f| f.data.len() as u64).sum()
    }

    fn rand(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            splitmix64(&mut self.rng) % bound
        }
    }
}

/// A deterministic in-memory disk with configurable fault injection.
///
/// ```
/// use tep_storage::vfs::{FaultConfig, FaultVfs, Vfs};
/// use std::io::Write;
/// use std::path::Path;
///
/// let vfs = FaultVfs::new(FaultConfig::default());
/// let mut f = vfs.create_new(Path::new("/x")).unwrap();
/// f.write_all(b"hello").unwrap();
/// f.sync_data().unwrap();
/// vfs.sync_parent_dir(Path::new("/x")).unwrap();
/// vfs.power_cycle(); // synced data survives the "crash"
/// assert_eq!(vfs.file_bytes(Path::new("/x")).unwrap(), b"hello");
/// ```
pub struct FaultVfs {
    state: Arc<Mutex<State>>,
}

impl FaultVfs {
    /// A fresh, empty simulated disk.
    pub fn new(cfg: FaultConfig) -> Arc<FaultVfs> {
        Arc::new(FaultVfs {
            state: Arc::new(Mutex::new(State {
                rng: cfg.seed ^ 0x6A09_E667_F3BC_C908,
                cfg,
                files: HashMap::new(),
                dir: HashMap::new(),
                durable_dir: HashMap::new(),
                pending_dir: Vec::new(),
                next_id: 1,
                ops: 0,
                syncs: 0,
                crashed: false,
            })),
        })
    }

    /// Mutating operations performed so far (the crash-point space a
    /// harness sweeps).
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// `sync_data` calls attempted so far.
    pub fn syncs(&self) -> u64 {
        self.state.lock().syncs
    }

    /// `true` once the simulated power cut has happened.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Re-arms (or disarms) the crash point without resetting the disk.
    pub fn set_crash_at(&self, op: Option<u64>) {
        self.state.lock().cfg.crash_at_op = op;
    }

    /// Simulates the machine rebooting after a power cut: the visible image
    /// becomes the durable one plus a seeded prefix of unsynced operations
    /// (data *and* directory), with the first dropped write optionally torn
    /// at a seeded byte offset. The disk unfreezes; the crash point is
    /// disarmed so recovery code can run.
    pub fn power_cycle(&self) {
        let mut s = self.state.lock();

        // Directory entries: the journal preserves order, so a prefix of
        // the pending ops survives.
        let survive = {
            let n = s.pending_dir.len() as u64;
            s.rand(n + 1) as usize
        };
        let mut dir = s.durable_dir.clone();
        for op in s.pending_dir.iter().take(survive) {
            match op {
                DirOp::Create(p, id) => {
                    dir.insert(p.clone(), *id);
                }
                DirOp::Rename(from, to) => {
                    if let Some(id) = dir.remove(from) {
                        dir.insert(to.clone(), id);
                    }
                }
                DirOp::Remove(p) => {
                    dir.remove(p);
                }
            }
        }

        // File contents: per file, the durable image plus a seeded prefix
        // of pending mutations; the first dropped mutation may tear.
        let mut rng = s.rng;
        for f in s.files.values_mut() {
            let keep = {
                let n = f.pending.len() as u64 + 1;
                (splitmix64(&mut rng) % n) as usize
            };
            let mut img = f.durable.clone();
            for m in f.pending.iter().take(keep) {
                apply_mutation(&mut img, m, None);
            }
            if let Some(Mutation::Write { offset, bytes }) = f.pending.get(keep) {
                // Torn write: an arbitrary prefix of the in-flight write
                // reached the platters.
                let torn = (splitmix64(&mut rng) % (bytes.len() as u64 + 1)) as usize;
                apply_mutation(
                    &mut img,
                    &Mutation::Write {
                        offset: *offset,
                        bytes: bytes.clone(),
                    },
                    Some(torn),
                );
            }
            f.data = img.clone();
            f.durable = img;
            f.pending.clear();
        }
        s.rng = rng;

        // Drop files whose directory entry did not survive.
        let live: std::collections::HashSet<u64> = dir.values().copied().collect();
        s.files.retain(|id, _| live.contains(id));
        s.durable_dir = dir.clone();
        s.dir = dir;
        s.pending_dir.clear();
        s.crashed = false;
        s.cfg.crash_at_op = None;
    }

    /// The visible bytes of `path`, if it exists (for byte-identical
    /// recovery assertions).
    pub fn file_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        let s = self.state.lock();
        let id = s.dir.get(path)?;
        Some(s.files[id].data.clone())
    }

    /// All visible file names, sorted.
    pub fn list(&self) -> Vec<PathBuf> {
        let s = self.state.lock();
        let mut v: Vec<PathBuf> = s.dir.keys().cloned().collect();
        v.sort();
        v
    }

    /// Flips one byte of `path`'s visible **and** durable image (simulated
    /// media corruption, below the page-cache model).
    pub fn corrupt_byte(&self, path: &Path, offset: usize) -> bool {
        let mut s = self.state.lock();
        let Some(&id) = s.dir.get(path) else {
            return false;
        };
        let f = s.files.get_mut(&id).expect("dir entry has a file");
        if offset >= f.data.len() {
            return false;
        }
        f.data[offset] ^= 0xFF;
        if offset < f.durable.len() {
            f.durable[offset] ^= 0xFF;
        }
        true
    }
}

fn apply_mutation(img: &mut Vec<u8>, m: &Mutation, tear_at: Option<usize>) {
    match m {
        Mutation::Write { offset, bytes } => {
            let n = tear_at.unwrap_or(bytes.len()).min(bytes.len());
            let off = *offset as usize;
            if img.len() < off {
                img.resize(off, 0);
            }
            let end = off + n;
            if img.len() < end {
                img.resize(end, 0);
            }
            img[off..end].copy_from_slice(&bytes[..n]);
        }
        Mutation::SetLen(len) => {
            let len = *len as usize;
            if img.len() > len {
                img.truncate(len);
            } else {
                img.resize(len, 0);
            }
        }
    }
}

impl Vfs for FaultVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VirtualFile>> {
        let mut s = self.state.lock();
        s.check_alive()?;
        if s.dir.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} exists", path.display()),
            ));
        }
        s.mutating_op()?;
        let id = s.next_id;
        s.next_id += 1;
        s.files.insert(id, FileState::default());
        s.dir.insert(path.to_path_buf(), id);
        s.pending_dir.push(DirOp::Create(path.to_path_buf(), id));
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            id,
            pos: 0,
        }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VirtualFile>> {
        let s = self.state.lock();
        s.check_alive()?;
        let id = *s.dir.get(path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", path.display()),
            )
        })?;
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            id,
            pos: 0,
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().dir.contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        s.mutating_op()?;
        let id = s.dir.remove(from).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", from.display()),
            )
        })?;
        s.dir.insert(to.to_path_buf(), id);
        s.pending_dir
            .push(DirOp::Rename(from.to_path_buf(), to.to_path_buf()));
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        s.mutating_op()?;
        s.dir.remove(path).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} not found", path.display()),
            )
        })?;
        s.pending_dir.push(DirOp::Remove(path.to_path_buf()));
        Ok(())
    }

    fn sync_parent_dir(&self, _path: &Path) -> io::Result<()> {
        // The simulator models a single directory; syncing it makes every
        // pending namespace operation durable.
        let mut s = self.state.lock();
        s.mutating_op()?;
        s.durable_dir = s.dir.clone();
        s.pending_dir.clear();
        Ok(())
    }
}

struct FaultFile {
    state: Arc<Mutex<State>>,
    id: u64,
    pos: u64,
}

impl Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let s = self.state.lock();
        s.check_alive()?;
        let f = s
            .files
            .get(&self.id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file was unlinked"))?;
        let pos = self.pos.min(f.data.len() as u64) as usize;
        let n = buf.len().min(f.data.len() - pos);
        buf[..n].copy_from_slice(&f.data[pos..pos + n]);
        drop(s);
        self.pos += n as u64;
        Ok(n)
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut s = self.state.lock();
        s.check_alive()?;
        // Short write: consume only a seeded 1..=len prefix.
        let n = if s.cfg.short_writes && buf.len() > 1 {
            1 + s.rand(buf.len() as u64) as usize
        } else {
            buf.len()
        };
        // ENOSPC check against the would-be growth of this file.
        if let Some(cap) = s.cfg.disk_capacity {
            let cur = s
                .files
                .get(&self.id)
                .map(|f| f.data.len() as u64)
                .unwrap_or(0);
            let new_len = cur.max(self.pos + n as u64);
            let growth = new_len.saturating_sub(cur);
            if s.total_bytes() + growth > cap {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "simulated device out of space",
                ));
            }
        }
        s.mutating_op()?;
        let pos = self.pos;
        let f = s
            .files
            .get_mut(&self.id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file was unlinked"))?;
        let bytes = buf[..n].to_vec();
        apply_mutation(
            &mut f.data,
            &Mutation::Write {
                offset: pos,
                bytes: bytes.clone(),
            },
            None,
        );
        f.pending.push(Mutation::Write { offset: pos, bytes });
        drop(s);
        self.pos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.state.lock().check_alive()
    }
}

impl Seek for FaultFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let s = self.state.lock();
        s.check_alive()?;
        let len = s
            .files
            .get(&self.id)
            .map(|f| f.data.len() as u64)
            .unwrap_or(0);
        drop(s);
        let new = match pos {
            SeekFrom::Start(n) => n as i128,
            SeekFrom::End(d) => len as i128 + d as i128,
            SeekFrom::Current(d) => self.pos as i128 + d as i128,
        };
        if new < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = new as u64;
        Ok(self.pos)
    }
}

impl VirtualFile for FaultFile {
    fn sync_data(&mut self) -> io::Result<()> {
        let mut s = self.state.lock();
        s.check_alive()?;
        s.syncs += 1;
        let syncs = s.syncs;
        if s.cfg.fail_sync_at == Some(syncs) {
            return Err(io::Error::other("simulated fsync failure"));
        }
        s.mutating_op()?;
        if s.cfg.lie_sync_at == Some(syncs) {
            // Lying fsync: report success, persist nothing.
            return Ok(());
        }
        let f = s
            .files
            .get_mut(&self.id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file was unlinked"))?;
        f.durable = f.data.clone();
        f.pending.clear();
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut s = self.state.lock();
        s.mutating_op()?;
        let f = s
            .files
            .get_mut(&self.id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file was unlinked"))?;
        let l = len as usize;
        if f.data.len() > l {
            f.data.truncate(l);
        } else {
            f.data.resize(l, 0);
        }
        f.pending.push(Mutation::SetLen(len));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn synced_data_survives_power_cycle() {
        let vfs = FaultVfs::new(FaultConfig::default());
        let mut f = vfs.create_new(&p("/a")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap();
        vfs.sync_parent_dir(&p("/a")).unwrap();
        f.write_all(b" volatile").unwrap();
        drop(f);
        vfs.power_cycle();
        let bytes = vfs.file_bytes(&p("/a")).unwrap();
        assert!(bytes.starts_with(b"durable"));
        assert!(bytes.len() <= b"durable volatile".len());
    }

    #[test]
    fn unsynced_writes_survive_as_a_possibly_torn_prefix() {
        for seed in 0..32u64 {
            let vfs = FaultVfs::new(FaultConfig {
                seed,
                ..FaultConfig::default()
            });
            let mut f = vfs.create_new(&p("/a")).unwrap();
            f.sync_data().unwrap();
            vfs.sync_parent_dir(&p("/a")).unwrap();
            f.write_all(b"one").unwrap();
            f.write_all(b"two").unwrap();
            f.write_all(b"three").unwrap();
            drop(f);
            vfs.power_cycle();
            let bytes = vfs.file_bytes(&p("/a")).unwrap();
            assert!(
                b"onetwothree".starts_with(&bytes[..]),
                "seed {seed}: {bytes:?} is not a prefix"
            );
        }
    }

    #[test]
    fn crash_at_op_freezes_the_disk() {
        let vfs = FaultVfs::new(FaultConfig {
            crash_at_op: Some(2),
            ..FaultConfig::default()
        });
        let mut f = vfs.create_new(&p("/a")).unwrap(); // op 1
        let err = f.write_all(b"x").unwrap_err(); // op 2: boom
        assert!(is_power_loss(&err), "{err}");
        assert!(vfs.crashed());
        // Everything fails until power_cycle.
        assert!(vfs.create_new(&p("/b")).is_err());
        vfs.power_cycle();
        assert!(!vfs.crashed());
    }

    #[test]
    fn unsynced_create_can_vanish_synced_one_cannot() {
        // Never synced the directory: the file may or may not survive, but
        // with the pending op dropped (seeded) it vanishes entirely.
        let vfs = FaultVfs::new(FaultConfig::default());
        let mut f = vfs.create_new(&p("/gone")).unwrap();
        f.write_all(b"data").unwrap();
        f.sync_data().unwrap();
        drop(f);
        // Find a seed where the pending dir op is dropped.
        let mut vanished = false;
        for seed in 0..64u64 {
            let vfs = FaultVfs::new(FaultConfig {
                seed,
                ..FaultConfig::default()
            });
            let mut f = vfs.create_new(&p("/gone")).unwrap();
            f.write_all(b"data").unwrap();
            f.sync_data().unwrap();
            drop(f);
            vfs.power_cycle();
            if vfs.file_bytes(&p("/gone")).is_none() {
                vanished = true;
                break;
            }
        }
        assert!(vanished, "no seed dropped the unsynced directory entry");
        // With the dir synced it always survives.
        vfs.sync_parent_dir(&p("/gone")).unwrap();
        vfs.power_cycle();
        assert_eq!(vfs.file_bytes(&p("/gone")).unwrap(), b"data");
    }

    #[test]
    fn lying_sync_reports_ok_but_persists_nothing() {
        let vfs = FaultVfs::new(FaultConfig {
            lie_sync_at: Some(1),
            ..FaultConfig::default()
        });
        let mut f = vfs.create_new(&p("/a")).unwrap();
        vfs.sync_parent_dir(&p("/a")).unwrap();
        f.write_all(b"lost").unwrap();
        f.sync_data().unwrap(); // lies
        drop(f);
        // Force the pending prefix to drop by finding any seed where it does.
        let mut lost = false;
        for seed in 0..64u64 {
            let vfs = FaultVfs::new(FaultConfig {
                seed,
                lie_sync_at: Some(1),
                ..FaultConfig::default()
            });
            let mut f = vfs.create_new(&p("/a")).unwrap();
            vfs.sync_parent_dir(&p("/a")).unwrap();
            f.write_all(b"lost").unwrap();
            f.sync_data().unwrap();
            drop(f);
            vfs.power_cycle();
            if vfs.file_bytes(&p("/a")).unwrap().is_empty() {
                lost = true;
                break;
            }
        }
        assert!(lost, "lying fsync never lost data across seeds");
    }

    #[test]
    fn failing_sync_returns_error() {
        let vfs = FaultVfs::new(FaultConfig {
            fail_sync_at: Some(1),
            ..FaultConfig::default()
        });
        let mut f = vfs.create_new(&p("/a")).unwrap();
        f.write_all(b"x").unwrap();
        assert!(f.sync_data().is_err());
        // Next sync succeeds and persists.
        f.sync_data().unwrap();
        vfs.sync_parent_dir(&p("/a")).unwrap();
        vfs.power_cycle();
        assert_eq!(vfs.file_bytes(&p("/a")).unwrap(), b"x");
    }

    #[test]
    fn enospc_rejects_growth_but_not_overwrite() {
        let vfs = FaultVfs::new(FaultConfig {
            disk_capacity: Some(4),
            ..FaultConfig::default()
        });
        let mut f = vfs.create_new(&p("/a")).unwrap();
        f.write_all(b"1234").unwrap();
        let err = f.write_all(b"5").unwrap_err();
        assert!(err.to_string().contains("space"), "{err}");
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(b"abcd").unwrap(); // in-place overwrite still fits
        let mut buf = Vec::new();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"abcd");
    }

    #[test]
    fn short_writes_are_partial_but_write_all_completes() {
        let vfs = FaultVfs::new(FaultConfig {
            seed: 7,
            short_writes: true,
            ..FaultConfig::default()
        });
        let mut f = vfs.create_new(&p("/a")).unwrap();
        let payload = vec![0xAB; 4096];
        f.write_all(&payload).unwrap();
        let mut buf = Vec::new();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn rename_is_atomic_across_power_cycle() {
        for seed in 0..32u64 {
            let vfs = FaultVfs::new(FaultConfig {
                seed,
                ..FaultConfig::default()
            });
            let mut f = vfs.create_new(&p("/t.tmp")).unwrap();
            f.write_all(b"new").unwrap();
            f.sync_data().unwrap();
            drop(f);
            vfs.rename(&p("/t.tmp"), &p("/t")).unwrap();
            vfs.power_cycle();
            // Either the rename survived (file at /t) or it didn't (nothing
            // or /t.tmp) — never a half-state with both or mangled bytes.
            let at_t = vfs.file_bytes(&p("/t"));
            let at_tmp = vfs.file_bytes(&p("/t.tmp"));
            assert!(
                !(at_t.is_some() && at_tmp.is_some()),
                "seed {seed}: rename produced two links"
            );
            if let Some(b) = at_t {
                assert_eq!(b, b"new");
            }
        }
    }

    #[test]
    fn power_cycle_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let vfs = FaultVfs::new(FaultConfig {
                seed,
                ..FaultConfig::default()
            });
            let mut f = vfs.create_new(&p("/a")).unwrap();
            f.sync_data().unwrap();
            vfs.sync_parent_dir(&p("/a")).unwrap();
            for i in 0..8u8 {
                f.write_all(&[i; 16]).unwrap();
            }
            drop(f);
            vfs.power_cycle();
            vfs.file_bytes(&p("/a")).unwrap()
        };
        assert_eq!(run(42), run(42));
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn corrupt_byte_survives_power_cycle() {
        let vfs = FaultVfs::new(FaultConfig::default());
        let mut f = vfs.create_new(&p("/a")).unwrap();
        f.write_all(b"abcdef").unwrap();
        f.sync_data().unwrap();
        vfs.sync_parent_dir(&p("/a")).unwrap();
        assert!(vfs.corrupt_byte(&p("/a"), 2));
        vfs.power_cycle();
        let bytes = vfs.file_bytes(&p("/a")).unwrap();
        assert_eq!(bytes[2], b'c' ^ 0xFF);
    }

    #[test]
    fn real_vfs_round_trip_with_dir_sync() {
        let dir = std::env::temp_dir().join(format!("tep_vfs_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.bin");
        let _ = std::fs::remove_file(&path);
        let vfs = RealVfs;
        let mut f = vfs.create_new(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        vfs.sync_parent_dir(&path).unwrap();
        drop(f);
        let mut f = vfs.open_rw(&path).unwrap();
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello");
        drop(f);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
