//! CRC-framed append-only log with torn-write recovery.
//!
//! Frame layout (all integers big-endian):
//!
//! ```text
//! file   := header frame*
//! header := magic(8) version(u16) reserved(u16)
//! frame  := len(u32) crc(u32) payload(len bytes)
//! ```
//!
//! `crc` covers the length prefix **and** the payload — covering the length
//! keeps a run of zero bytes from parsing as a valid empty frame
//! (`crc32("") == 0`), which matters for the torn-tail rescan below. On
//! open, frames are scanned forward; the first
//! incomplete or corrupt frame ends recovery and the file is truncated back
//! to the last good frame — the standard WAL torn-tail rule. Corruption
//! *before* the tail (i.e. followed by more valid data) is reported as an
//! error instead, since silently dropping interior records would be data
//! loss.

use crate::crc::frame_crc;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"TEPLOG\x00\x01";
const VERSION: u16 = 1;
const HEADER_LEN: u64 = 12;
const FRAME_HEADER_LEN: usize = 8;

/// Maximum payload size (guards against reading a garbage length field).
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Errors from the log layer.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file exists but does not carry the log magic/version.
    BadHeader,
    /// A corrupt frame was found *before* later valid frames.
    InteriorCorruption {
        /// Byte offset of the corrupt frame.
        offset: u64,
    },
    /// Payload exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge(usize),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O error: {e}"),
            LogError::BadHeader => write!(f, "not a TEP log file (bad magic or version)"),
            LogError::InteriorCorruption { offset } => {
                write!(f, "corrupt frame at offset {offset} followed by valid data")
            }
            LogError::PayloadTooLarge(n) => write!(f, "payload of {n} bytes exceeds frame limit"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Outcome of opening a log: the handle plus recovered payloads.
pub struct RecoveredLog {
    /// The writable log positioned after the last good frame.
    pub log: AppendLog,
    /// Payloads of every intact frame, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Number of bytes truncated from a torn tail (0 when clean).
    pub truncated_bytes: u64,
}

/// An append-only, CRC-framed log file.
///
/// ```no_run
/// use tep_storage::AppendLog;
///
/// let mut log = AppendLog::create("/tmp/example.teplog")?;
/// log.append(b"first frame")?;
/// log.sync()?;
/// drop(log);
///
/// let recovered = AppendLog::open("/tmp/example.teplog")?;
/// assert_eq!(recovered.payloads, vec![b"first frame".to_vec()]);
/// # Ok::<(), tep_storage::LogError>(())
/// ```
pub struct AppendLog {
    writer: BufWriter<File>,
    path: PathBuf,
    end_offset: u64,
    frames: u64,
}

impl AppendLog {
    /// Creates a new log, failing if the file already exists.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, LogError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_be_bytes())?;
        file.write_all(&0u16.to_be_bytes())?;
        file.flush()?;
        Ok(AppendLog {
            writer: BufWriter::new(file),
            path,
            end_offset: HEADER_LEN,
            frames: 0,
        })
    }

    /// Opens an existing log, replaying every intact frame and truncating a
    /// torn tail if present.
    pub fn open(path: impl AsRef<Path>) -> Result<RecoveredLog, LogError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;

        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)
            .map_err(|_| LogError::BadHeader)?;
        if &header[..8] != MAGIC || u16::from_be_bytes([header[8], header[9]]) != VERSION {
            return Err(LogError::BadHeader);
        }

        let mut rest = Vec::new();
        file.read_to_end(&mut rest)?;

        let mut payloads = Vec::new();
        let mut good_end = 0usize; // relative to frame area
        let mut bad_at: Option<usize> = None;
        let mut pos = 0usize;
        while pos + FRAME_HEADER_LEN <= rest.len() {
            let len = u32::from_be_bytes(rest[pos..pos + 4].try_into().expect("4 bytes"));
            let crc = u32::from_be_bytes(rest[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let body_start = pos + FRAME_HEADER_LEN;
            let body_end = body_start.checked_add(len as usize);
            let valid = len <= MAX_PAYLOAD
                && body_end.is_some_and(|e| e <= rest.len())
                && frame_crc(len, &rest[body_start..body_start + len as usize]) == crc;
            if valid {
                if let Some(bad) = bad_at {
                    // Valid frame after a corrupt one: interior corruption.
                    return Err(LogError::InteriorCorruption {
                        offset: HEADER_LEN + bad as u64,
                    });
                }
                payloads.push(rest[body_start..body_start + len as usize].to_vec());
                pos = body_start + len as usize;
                good_end = pos;
            } else {
                if bad_at.is_none() {
                    bad_at = Some(pos);
                }
                // Keep scanning: if another *valid* frame follows we must
                // report interior corruption rather than silently truncate.
                pos += 1;
            }
        }

        let truncated_bytes = (rest.len() - good_end) as u64;
        let end_offset = HEADER_LEN + good_end as u64;
        if truncated_bytes > 0 {
            file.set_len(end_offset)?;
        }
        file.seek(SeekFrom::Start(end_offset))?;
        let frames = payloads.len() as u64;
        Ok(RecoveredLog {
            log: AppendLog {
                writer: BufWriter::new(file),
                path,
                end_offset,
                frames,
            },
            payloads,
            truncated_bytes,
        })
    }

    /// Opens if the file exists, otherwise creates it.
    pub fn open_or_create(path: impl AsRef<Path>) -> Result<RecoveredLog, LogError> {
        if path.as_ref().exists() {
            Self::open(path)
        } else {
            Ok(RecoveredLog {
                log: Self::create(path)?,
                payloads: Vec::new(),
                truncated_bytes: 0,
            })
        }
    }

    /// Appends one frame; returns its byte offset in the file.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, LogError> {
        if payload.len() > MAX_PAYLOAD as usize {
            return Err(LogError::PayloadTooLarge(payload.len()));
        }
        let offset = self.end_offset;
        self.writer
            .write_all(&(payload.len() as u32).to_be_bytes())?;
        self.writer
            .write_all(&frame_crc(payload.len() as u32, payload).to_be_bytes())?;
        self.writer.write_all(payload)?;
        self.end_offset += (FRAME_HEADER_LEN + payload.len()) as u64;
        self.frames += 1;
        Ok(offset)
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> Result<(), LogError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs.
    pub fn sync(&mut self) -> Result<(), LogError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Number of frames appended (including recovered ones).
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// Current end-of-log offset in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.end_offset
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tep-log-test-{}-{}-{}.log",
            std::process::id(),
            tag,
            n
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn append_and_recover() {
        let path = temp_path("basic");
        let _guard = Cleanup(path.clone());
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"alpha").unwrap();
            log.append(b"").unwrap();
            log.append(&vec![7u8; 10_000]).unwrap();
            log.sync().unwrap();
            assert_eq!(log.frame_count(), 3);
        }
        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.payloads.len(), 3);
        assert_eq!(rec.payloads[0], b"alpha");
        assert_eq!(rec.payloads[1], b"");
        assert_eq!(rec.payloads[2].len(), 10_000);
        assert_eq!(rec.log.frame_count(), 3);
    }

    #[test]
    fn create_refuses_existing_file() {
        let path = temp_path("dup");
        let _guard = Cleanup(path.clone());
        AppendLog::create(&path).unwrap();
        assert!(matches!(AppendLog::create(&path), Err(LogError::Io(_))));
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_path("torn");
        let _guard = Cleanup(path.clone());
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"keep me").unwrap();
            log.append(b"i will be torn").unwrap();
            log.sync().unwrap();
        }
        // Chop 3 bytes off the end to simulate a torn write.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();

        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.payloads.len(), 1);
        assert_eq!(rec.payloads[0], b"keep me");
        assert!(rec.truncated_bytes > 0);

        // Appending after recovery works and survives a further reopen.
        let mut log = rec.log;
        log.append(b"after recovery").unwrap();
        log.sync().unwrap();
        drop(log);
        let rec2 = AppendLog::open(&path).unwrap();
        assert_eq!(rec2.payloads.len(), 2);
        assert_eq!(rec2.payloads[1], b"after recovery");
    }

    #[test]
    fn torn_tail_inside_frame_header_is_truncated() {
        // A tear can land inside the 8-byte frame header itself (len/crc),
        // not just the payload. Every partial-header length must recover to
        // the last good frame.
        for kept_header_bytes in 1..FRAME_HEADER_LEN {
            let path = temp_path(&format!("torn-hdr-{kept_header_bytes}"));
            let _guard = Cleanup(path.clone());
            let full_len;
            {
                let mut log = AppendLog::create(&path).unwrap();
                log.append(b"keep me").unwrap();
                full_len = log.len_bytes();
                log.append(b"victim frame payload").unwrap();
                log.sync().unwrap();
            }
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(full_len + kept_header_bytes as u64).unwrap();
            drop(f);

            let rec = AppendLog::open(&path).unwrap();
            assert_eq!(rec.payloads.len(), 1, "tear after {kept_header_bytes}B");
            assert_eq!(rec.payloads[0], b"keep me");
            assert_eq!(rec.truncated_bytes, kept_header_bytes as u64);

            // The recovered log must be appendable and reopen cleanly.
            let mut log = rec.log;
            log.append(b"after header tear").unwrap();
            log.sync().unwrap();
            drop(log);
            let rec2 = AppendLog::open(&path).unwrap();
            assert_eq!(rec2.truncated_bytes, 0);
            assert_eq!(rec2.payloads.len(), 2);
            assert_eq!(rec2.payloads[1], b"after header tear");
        }
    }

    #[test]
    fn torn_header_with_zero_filled_tail_is_truncated() {
        // Crash mode where the filesystem grew the file but only part of the
        // header block made it to disk: the rest of the frame reads as
        // zeros. Because the frame CRC covers the length prefix, zero runs
        // never parse as valid empty frames and the whole tail is dropped.
        let path = temp_path("torn-hdr-zeros");
        let _guard = Cleanup(path.clone());
        let keep_upto;
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"survivor").unwrap();
            keep_upto = log.len_bytes();
            log.append(&[0xABu8; 100]).unwrap();
            log.sync().unwrap();
        }
        // Zero everything after the first 4 header bytes of the last frame.
        let mut data = std::fs::read(&path).unwrap();
        for b in &mut data[keep_upto as usize + 4..] {
            *b = 0;
        }
        std::fs::write(&path, &data).unwrap();

        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.payloads.len(), 1);
        assert_eq!(rec.payloads[0], b"survivor");
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn corrupt_tail_payload_is_dropped() {
        let path = temp_path("crc");
        let _guard = Cleanup(path.clone());
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"good frame").unwrap();
            log.append(b"bad frame!").unwrap();
            log.sync().unwrap();
        }
        // Flip a bit in the last frame's payload.
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 2] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.payloads.len(), 1);
        assert_eq!(rec.payloads[0], b"good frame");
    }

    #[test]
    fn interior_corruption_is_an_error() {
        let path = temp_path("interior");
        let _guard = Cleanup(path.clone());
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"first-frame-payload").unwrap();
            log.append(b"second-frame-payload").unwrap();
            log.sync().unwrap();
        }
        // Corrupt the FIRST frame's payload; the second remains valid.
        let mut data = std::fs::read(&path).unwrap();
        data[HEADER_LEN as usize + FRAME_HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            AppendLog::open(&path),
            Err(LogError::InteriorCorruption { .. })
        ));
    }

    #[test]
    fn bad_header_rejected() {
        let path = temp_path("hdr");
        let _guard = Cleanup(path.clone());
        std::fs::write(&path, b"not a log file at all").unwrap();
        assert!(matches!(AppendLog::open(&path), Err(LogError::BadHeader)));
    }

    #[test]
    fn payload_size_limit() {
        let path = temp_path("big");
        let _guard = Cleanup(path.clone());
        let mut log = AppendLog::create(&path).unwrap();
        let too_big = vec![0u8; MAX_PAYLOAD as usize + 1];
        assert!(matches!(
            log.append(&too_big),
            Err(LogError::PayloadTooLarge(_))
        ));
    }

    #[test]
    fn open_or_create_both_paths() {
        let path = temp_path("ooc");
        let _guard = Cleanup(path.clone());
        let rec = AppendLog::open_or_create(&path).unwrap();
        assert_eq!(rec.payloads.len(), 0);
        let mut log = rec.log;
        log.append(b"x").unwrap();
        log.sync().unwrap();
        drop(log);
        let rec = AppendLog::open_or_create(&path).unwrap();
        assert_eq!(rec.payloads.len(), 1);
    }
}
