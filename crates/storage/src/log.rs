//! CRC-framed append-only log with torn-write recovery and corruption
//! quarantine.
//!
//! Frame layout (all integers big-endian):
//!
//! ```text
//! file   := header frame*
//! header := magic(8) version(u16) reserved(u16)
//! frame  := len(u32) crc(u32) payload(len bytes)
//! ```
//!
//! `crc` covers the length prefix **and** the payload — covering the length
//! keeps a run of zero bytes from parsing as a valid empty frame
//! (`crc32("") == 0`), which matters for the torn-tail rescan below. On
//! open, frames are scanned forward; the first incomplete or corrupt frame
//! at the *tail* (no valid data after it) ends recovery and the file is
//! truncated back to the last good frame — the standard WAL torn-tail rule.
//!
//! Corruption *before* the tail (followed by more valid frames) means the
//! medium, not a crash, damaged the log. Failing `open` outright would turn
//! one bad sector into total data loss, so instead the log enters
//! **quarantine recovery**: each corrupt byte range is excised into a
//! `<path>.quarantine` sidecar (itself an append log, each frame prefixed
//! with the 8-byte BE original file offset), the surviving frames are
//! rewritten to a fresh file that atomically replaces the original, and the
//! open succeeds with the damage reported as [`LogGap`]s in
//! [`RecoveredLog::gaps`]. Callers (see `tep-core`'s Verifier) surface the
//! missing frames as chain-continuity tamper evidence — corruption degrades
//! to a detected, quarantined gap, never to a panic or silent loss.
//!
//! All I/O goes through [`crate::vfs::Vfs`], so the same code paths run
//! against the real filesystem and the deterministic fault injector.

use crate::crc::frame_crc;
use crate::vfs::{real_vfs, Vfs, VirtualFile};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"TEPLOG\x00\x01";
const VERSION: u16 = 1;
pub(crate) const HEADER_LEN: u64 = 12;
pub(crate) const FRAME_HEADER_LEN: usize = 8;

/// Maximum payload size (guards against reading a garbage length field).
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Errors from the log layer.
#[derive(Debug)]
pub enum LogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file exists but does not carry the log magic/version.
    BadHeader,
    /// Payload exceeds [`MAX_PAYLOAD`].
    PayloadTooLarge(usize),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O error: {e}"),
            LogError::BadHeader => write!(f, "not a TEP log file (bad magic or version)"),
            LogError::PayloadTooLarge(n) => write!(f, "payload of {n} bytes exceeds frame limit"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

/// Why a byte range is missing from the live log.
///
/// The distinction matters to the verification layer: [`GapKind::Corruption`]
/// is potential tamper evidence (`StorageQuarantine`), while
/// [`GapKind::Compacted`] records a deliberate, checkpoint-anchored excision
/// whose continuity is attested through the sealed checkpoint instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapKind {
    /// Interior corruption excised into the `.quarantine` sidecar.
    Corruption,
    /// Pre-checkpoint frames excised into a cold archive by compaction.
    Compacted,
}

/// An interior byte range missing from the live log — either corruption
/// quarantined on open, or a compaction-excised segment (see [`GapKind`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogGap {
    /// What removed the range from the live log.
    pub kind: GapKind,
    /// Intact frames recovered before this gap (the gap sits between
    /// record `preceding_frames - 1` and record `preceding_frames`).
    pub preceding_frames: u64,
    /// Byte offset of the gap in the original file.
    pub offset: u64,
    /// Length of the corrupt range in bytes.
    pub bytes: u64,
}

/// Outcome of opening a log: the handle plus recovered payloads.
pub struct RecoveredLog {
    /// The writable log positioned after the last good frame.
    pub log: AppendLog,
    /// Payloads of every intact frame, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Number of bytes truncated from a torn tail (0 when clean).
    pub truncated_bytes: u64,
    /// Interior corrupt ranges excised into the `.quarantine` sidecar
    /// (empty when the log was clean or only torn at the tail).
    pub gaps: Vec<LogGap>,
    /// Total corrupt bytes moved to the sidecar this open.
    pub quarantined_bytes: u64,
}

/// An append-only, CRC-framed log file.
///
/// ```no_run
/// use tep_storage::AppendLog;
///
/// let mut log = AppendLog::create("/tmp/example.teplog")?;
/// log.append(b"first frame")?;
/// log.sync()?;
/// drop(log);
///
/// let recovered = AppendLog::open("/tmp/example.teplog")?;
/// assert_eq!(recovered.payloads, vec![b"first frame".to_vec()]);
/// # Ok::<(), tep_storage::LogError>(())
/// ```
pub struct AppendLog {
    writer: BufWriter<Box<dyn VirtualFile>>,
    path: PathBuf,
    end_offset: u64,
    frames: u64,
}

/// The sidecar path corrupt ranges of `path` are quarantined into.
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".quarantine");
    PathBuf::from(os)
}

/// Result of the forward frame scan over a log's frame area.
struct Scan {
    payloads: Vec<Vec<u8>>,
    /// Interior corrupt ranges, relative to the frame area.
    gaps: Vec<LogGap>,
    /// End of the last valid frame, relative to the frame area.
    good_end: usize,
    /// Bytes after `good_end` (the torn tail).
    truncated_bytes: u64,
}

fn scan_frames(rest: &[u8]) -> Scan {
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut gaps = Vec::new();
    let mut good_end = 0usize;
    let mut bad_start: Option<usize> = None;
    let mut pos = 0usize;
    while pos + FRAME_HEADER_LEN <= rest.len() {
        let len = u32::from_be_bytes(rest[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_be_bytes(rest[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let body_start = pos + FRAME_HEADER_LEN;
        let body_end = body_start.checked_add(len as usize);
        let valid = len <= MAX_PAYLOAD
            && body_end.is_some_and(|e| e <= rest.len())
            && frame_crc(len, &rest[body_start..body_start + len as usize]) == crc;
        if valid {
            if let Some(bad) = bad_start.take() {
                // Valid frame after a corrupt range: interior corruption.
                gaps.push(LogGap {
                    kind: GapKind::Corruption,
                    preceding_frames: payloads.len() as u64,
                    offset: HEADER_LEN + bad as u64,
                    bytes: (pos - bad) as u64,
                });
            }
            payloads.push(rest[body_start..body_start + len as usize].to_vec());
            pos = body_start + len as usize;
            good_end = pos;
        } else {
            if bad_start.is_none() {
                bad_start = Some(pos);
            }
            // Keep scanning byte-by-byte: if another valid frame follows,
            // the bad range is interior (quarantine); otherwise it is a
            // torn tail (truncate).
            pos += 1;
        }
    }
    Scan {
        payloads,
        gaps,
        good_end,
        truncated_bytes: (rest.len() - good_end) as u64,
    }
}

/// Generates a sibling temp name unique to this process and call.
pub(crate) fn unique_tmp_path(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".{}.{}.tmp", std::process::id(), n));
    PathBuf::from(os)
}

impl AppendLog {
    /// Creates a new log on the real filesystem, failing if the file
    /// already exists.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, LogError> {
        Self::create_with(real_vfs(), path)
    }

    /// [`AppendLog::create`] against an explicit [`Vfs`]. The header and
    /// the new directory entry are both fsynced before returning, so a
    /// crash immediately after `create` cannot lose the file.
    pub fn create_with(vfs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<Self, LogError> {
        let path = path.as_ref().to_path_buf();
        let mut file = vfs.create_new(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_be_bytes())?;
        file.write_all(&0u16.to_be_bytes())?;
        file.flush()?;
        file.sync_data()?;
        vfs.sync_parent_dir(&path)?;
        Ok(AppendLog {
            writer: BufWriter::new(file),
            path,
            end_offset: HEADER_LEN,
            frames: 0,
        })
    }

    /// Opens an existing log on the real filesystem, replaying every intact
    /// frame; a torn tail is truncated and interior corruption is
    /// quarantined (see the module docs).
    pub fn open(path: impl AsRef<Path>) -> Result<RecoveredLog, LogError> {
        Self::open_with(real_vfs(), path)
    }

    /// [`AppendLog::open`] against an explicit [`Vfs`].
    pub fn open_with(vfs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<RecoveredLog, LogError> {
        let path = path.as_ref().to_path_buf();
        let (rest, scan) = {
            let mut file = vfs.open_rw(&path)?;
            let mut header = [0u8; HEADER_LEN as usize];
            file.read_exact(&mut header)
                .map_err(|_| LogError::BadHeader)?;
            if &header[..8] != MAGIC || u16::from_be_bytes([header[8], header[9]]) != VERSION {
                return Err(LogError::BadHeader);
            }
            let mut rest = Vec::new();
            file.read_to_end(&mut rest)?;
            let scan = scan_frames(&rest);
            (rest, scan)
        };

        if scan.gaps.is_empty() {
            // Clean file or torn tail only: truncate in place.
            let mut file = vfs.open_rw(&path)?;
            let end_offset = HEADER_LEN + scan.good_end as u64;
            if scan.truncated_bytes > 0 {
                file.set_len(end_offset)?;
            }
            file.seek(SeekFrom::Start(end_offset))?;
            let frames = scan.payloads.len() as u64;
            return Ok(RecoveredLog {
                log: AppendLog {
                    writer: BufWriter::new(file),
                    path,
                    end_offset,
                    frames,
                },
                payloads: scan.payloads,
                truncated_bytes: scan.truncated_bytes,
                gaps: Vec::new(),
                quarantined_bytes: 0,
            });
        }

        // Interior corruption: excise the bad ranges into the sidecar, then
        // atomically rewrite the log from the surviving frames.
        //
        // Ordering matters for crash safety: the sidecar is written and
        // synced *before* the original is replaced, so no corrupt byte is
        // ever dropped without a durable copy. A crash between the two
        // steps leaves the original intact; the next open re-runs
        // quarantine, which can at worst duplicate sidecar frames (each
        // carries its original offset, so duplicates are identifiable).
        let quarantined_bytes = Self::quarantine(&vfs, &path, &rest, &scan)?;
        Self::rewrite_atomically(&vfs, &path, &scan.payloads)?;

        let mut file = vfs.open_rw(&path)?;
        let end_offset = HEADER_LEN
            + scan
                .payloads
                .iter()
                .map(|p| (FRAME_HEADER_LEN + p.len()) as u64)
                .sum::<u64>();
        file.seek(SeekFrom::Start(end_offset))?;
        let frames = scan.payloads.len() as u64;
        Ok(RecoveredLog {
            log: AppendLog {
                writer: BufWriter::new(file),
                path,
                end_offset,
                frames,
            },
            payloads: scan.payloads,
            truncated_bytes: scan.truncated_bytes,
            gaps: scan.gaps,
            quarantined_bytes,
        })
    }

    /// Appends every corrupt range to the `.quarantine` sidecar log, each
    /// frame payload = 8-byte BE original file offset + the raw bytes.
    fn quarantine(
        vfs: &Arc<dyn Vfs>,
        path: &Path,
        rest: &[u8],
        scan: &Scan,
    ) -> Result<u64, LogError> {
        let qpath = quarantine_path(path);
        let mut side = Self::open_or_create_with(Arc::clone(vfs), &qpath)?.log;
        let mut total = 0u64;
        const CHUNK: usize = MAX_PAYLOAD as usize - 8;
        for gap in &scan.gaps {
            let start = (gap.offset - HEADER_LEN) as usize;
            let end = start + gap.bytes as usize;
            let mut at = start;
            while at < end {
                let upto = end.min(at + CHUNK);
                let mut payload = Vec::with_capacity(8 + upto - at);
                payload.extend_from_slice(&(HEADER_LEN + at as u64).to_be_bytes());
                payload.extend_from_slice(&rest[at..upto]);
                side.append(&payload)?;
                at = upto;
            }
            total += gap.bytes;
        }
        side.sync()?;
        vfs.sync_parent_dir(&qpath)?;
        Ok(total)
    }

    /// Rewrites `path` to contain exactly `payloads`, via a unique O_EXCL
    /// temp sibling + fsync + rename + parent-directory fsync.
    pub(crate) fn rewrite_atomically(
        vfs: &Arc<dyn Vfs>,
        path: &Path,
        payloads: &[Vec<u8>],
    ) -> Result<(), LogError> {
        let mut tmp_log = None;
        let mut tmp_path = PathBuf::new();
        for _ in 0..16 {
            let candidate = unique_tmp_path(path);
            match Self::create_with(Arc::clone(vfs), &candidate) {
                Ok(l) => {
                    tmp_log = Some(l);
                    tmp_path = candidate;
                    break;
                }
                Err(LogError::Io(e)) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        let Some(mut tmp_log) = tmp_log else {
            return Err(LogError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "could not allocate a unique temp file for log rewrite",
            )));
        };
        let result = (|| {
            for p in payloads {
                tmp_log.append(p)?;
            }
            tmp_log.sync()?;
            drop(tmp_log);
            vfs.rename(&tmp_path, path)?;
            vfs.sync_parent_dir(path)?;
            Ok(())
        })();
        if result.is_err() {
            // Best-effort cleanup; the unique name keeps a stale temp from
            // ever colliding with a later rewrite.
            let _ = vfs.remove_file(&tmp_path);
        }
        result
    }

    /// Opens if the file exists, otherwise creates it (real filesystem).
    pub fn open_or_create(path: impl AsRef<Path>) -> Result<RecoveredLog, LogError> {
        Self::open_or_create_with(real_vfs(), path)
    }

    /// [`AppendLog::open_or_create`] against an explicit [`Vfs`].
    pub fn open_or_create_with(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
    ) -> Result<RecoveredLog, LogError> {
        let path = path.as_ref();
        if !vfs.exists(path) {
            return Ok(RecoveredLog {
                log: Self::create_with(vfs, path)?,
                payloads: Vec::new(),
                truncated_bytes: 0,
                gaps: Vec::new(),
                quarantined_bytes: 0,
            });
        }
        // A file shorter than the 12-byte header can only be a create torn
        // by a crash: `create` fsyncs the header (and the directory entry)
        // before returning, so no acknowledged log is ever this short.
        // Recreate it instead of failing the open. A full-length file with
        // the wrong magic is still rejected — that is a foreign file, not
        // a torn one.
        let short = {
            let mut f = vfs.open_rw(path)?;
            let mut buf = [0u8; HEADER_LEN as usize];
            let mut n = 0usize;
            loop {
                match f.read(&mut buf[n..]) {
                    Ok(0) => break,
                    Ok(r) => {
                        n += r;
                        if n == buf.len() {
                            break;
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            n < HEADER_LEN as usize
        };
        if short {
            vfs.remove_file(path)?;
            return Ok(RecoveredLog {
                log: Self::create_with(vfs, path)?,
                payloads: Vec::new(),
                truncated_bytes: 0,
                gaps: Vec::new(),
                quarantined_bytes: 0,
            });
        }
        Self::open_with(vfs, path)
    }

    /// Appends one frame; returns its byte offset in the file.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, LogError> {
        if payload.len() > MAX_PAYLOAD as usize {
            return Err(LogError::PayloadTooLarge(payload.len()));
        }
        let offset = self.end_offset;
        self.writer
            .write_all(&(payload.len() as u32).to_be_bytes())?;
        self.writer
            .write_all(&frame_crc(payload.len() as u32, payload).to_be_bytes())?;
        self.writer.write_all(payload)?;
        self.end_offset += (FRAME_HEADER_LEN + payload.len()) as u64;
        self.frames += 1;
        Ok(offset)
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> Result<(), LogError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flushes and fsyncs.
    pub fn sync(&mut self) -> Result<(), LogError> {
        self.writer.flush()?;
        self.writer.get_mut().sync_data()?;
        Ok(())
    }

    /// Number of frames appended (including recovered ones).
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// Current end-of-log offset in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.end_offset
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tep-log-test-{}-{}-{}.log",
            std::process::id(),
            tag,
            n
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let _ = std::fs::remove_file(quarantine_path(&self.0));
        }
    }

    #[test]
    fn append_and_recover() {
        let path = temp_path("basic");
        let _guard = Cleanup(path.clone());
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"alpha").unwrap();
            log.append(b"").unwrap();
            log.append(&vec![7u8; 10_000]).unwrap();
            log.sync().unwrap();
            assert_eq!(log.frame_count(), 3);
        }
        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert!(rec.gaps.is_empty());
        assert_eq!(rec.payloads.len(), 3);
        assert_eq!(rec.payloads[0], b"alpha");
        assert_eq!(rec.payloads[1], b"");
        assert_eq!(rec.payloads[2].len(), 10_000);
        assert_eq!(rec.log.frame_count(), 3);
    }

    #[test]
    fn create_refuses_existing_file() {
        let path = temp_path("dup");
        let _guard = Cleanup(path.clone());
        AppendLog::create(&path).unwrap();
        assert!(matches!(AppendLog::create(&path), Err(LogError::Io(_))));
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_path("torn");
        let _guard = Cleanup(path.clone());
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"keep me").unwrap();
            log.append(b"i will be torn").unwrap();
            log.sync().unwrap();
        }
        // Chop 3 bytes off the end to simulate a torn write.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();

        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.payloads.len(), 1);
        assert_eq!(rec.payloads[0], b"keep me");
        assert!(rec.truncated_bytes > 0);
        assert!(rec.gaps.is_empty(), "torn tail must not be quarantined");

        // Appending after recovery works and survives a further reopen.
        let mut log = rec.log;
        log.append(b"after recovery").unwrap();
        log.sync().unwrap();
        drop(log);
        let rec2 = AppendLog::open(&path).unwrap();
        assert_eq!(rec2.payloads.len(), 2);
        assert_eq!(rec2.payloads[1], b"after recovery");
    }

    #[test]
    fn torn_tail_inside_frame_header_is_truncated() {
        // A tear can land inside the 8-byte frame header itself (len/crc),
        // not just the payload. Every partial-header length must recover to
        // the last good frame.
        for kept_header_bytes in 1..FRAME_HEADER_LEN {
            let path = temp_path(&format!("torn-hdr-{kept_header_bytes}"));
            let _guard = Cleanup(path.clone());
            let full_len;
            {
                let mut log = AppendLog::create(&path).unwrap();
                log.append(b"keep me").unwrap();
                full_len = log.len_bytes();
                log.append(b"victim frame payload").unwrap();
                log.sync().unwrap();
            }
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(full_len + kept_header_bytes as u64).unwrap();
            drop(f);

            let rec = AppendLog::open(&path).unwrap();
            assert_eq!(rec.payloads.len(), 1, "tear after {kept_header_bytes}B");
            assert_eq!(rec.payloads[0], b"keep me");
            assert_eq!(rec.truncated_bytes, kept_header_bytes as u64);

            // The recovered log must be appendable and reopen cleanly.
            let mut log = rec.log;
            log.append(b"after header tear").unwrap();
            log.sync().unwrap();
            drop(log);
            let rec2 = AppendLog::open(&path).unwrap();
            assert_eq!(rec2.truncated_bytes, 0);
            assert_eq!(rec2.payloads.len(), 2);
            assert_eq!(rec2.payloads[1], b"after header tear");
        }
    }

    #[test]
    fn torn_header_with_zero_filled_tail_is_truncated() {
        // Crash mode where the filesystem grew the file but only part of the
        // header block made it to disk: the rest of the frame reads as
        // zeros. Because the frame CRC covers the length prefix, zero runs
        // never parse as valid empty frames and the whole tail is dropped.
        let path = temp_path("torn-hdr-zeros");
        let _guard = Cleanup(path.clone());
        let keep_upto;
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"survivor").unwrap();
            keep_upto = log.len_bytes();
            log.append(&[0xABu8; 100]).unwrap();
            log.sync().unwrap();
        }
        // Zero everything after the first 4 header bytes of the last frame.
        let mut data = std::fs::read(&path).unwrap();
        for b in &mut data[keep_upto as usize + 4..] {
            *b = 0;
        }
        std::fs::write(&path, &data).unwrap();

        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.payloads.len(), 1);
        assert_eq!(rec.payloads[0], b"survivor");
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn corrupt_tail_payload_is_dropped() {
        let path = temp_path("crc");
        let _guard = Cleanup(path.clone());
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"good frame").unwrap();
            log.append(b"bad frame!").unwrap();
            log.sync().unwrap();
        }
        // Flip a bit in the last frame's payload.
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 2] ^= 0x01;
        std::fs::write(&path, &data).unwrap();

        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.payloads.len(), 1);
        assert_eq!(rec.payloads[0], b"good frame");
    }

    #[test]
    fn interior_corruption_is_quarantined_not_an_error() {
        let path = temp_path("interior");
        let _guard = Cleanup(path.clone());
        let second_offset;
        {
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"first-frame-payload").unwrap();
            second_offset = log.len_bytes();
            log.append(b"second-frame-payload").unwrap();
            log.sync().unwrap();
        }
        // Corrupt the FIRST frame's payload; the second remains valid.
        let mut data = std::fs::read(&path).unwrap();
        data[HEADER_LEN as usize + FRAME_HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        // The old behavior was a hard `InteriorCorruption` open error; the
        // log must now open in degraded mode instead.
        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.payloads, vec![b"second-frame-payload".to_vec()]);
        assert_eq!(rec.gaps.len(), 1);
        assert_eq!(rec.gaps[0].preceding_frames, 0);
        assert_eq!(rec.gaps[0].offset, HEADER_LEN);
        assert_eq!(rec.gaps[0].bytes, second_offset - HEADER_LEN);
        assert_eq!(rec.quarantined_bytes, second_offset - HEADER_LEN);
        drop(rec);

        // The corrupt bytes live on in the sidecar, prefixed by offset.
        let side = AppendLog::open(quarantine_path(&path)).unwrap();
        assert_eq!(side.payloads.len(), 1);
        let q = &side.payloads[0];
        assert_eq!(u64::from_be_bytes(q[..8].try_into().unwrap()), HEADER_LEN);
        assert_eq!(q.len() as u64 - 8, second_offset - HEADER_LEN);
        drop(side);

        // Recovery is idempotent: a second open sees a clean log,
        // byte-identical to what the first rewrite produced.
        let after_first = std::fs::read(&path).unwrap();
        let rec2 = AppendLog::open(&path).unwrap();
        assert!(rec2.gaps.is_empty());
        assert_eq!(rec2.truncated_bytes, 0);
        assert_eq!(rec2.payloads, vec![b"second-frame-payload".to_vec()]);
        drop(rec2);
        assert_eq!(std::fs::read(&path).unwrap(), after_first);

        // And the recovered log accepts appends.
        let mut log = AppendLog::open(&path).unwrap().log;
        log.append(b"post-recovery").unwrap();
        log.sync().unwrap();
        drop(log);
        let rec3 = AppendLog::open(&path).unwrap();
        assert_eq!(rec3.payloads.len(), 2);
    }

    #[test]
    fn multiple_interior_gaps_all_quarantined() {
        let path = temp_path("multi-gap");
        let _guard = Cleanup(path.clone());
        let mut offsets = Vec::new();
        {
            let mut log = AppendLog::create(&path).unwrap();
            for i in 0..5u8 {
                offsets.push(log.append(&[i; 64]).unwrap());
            }
            log.sync().unwrap();
        }
        // Corrupt frames 1 and 3 (both interior: valid frames follow).
        let mut data = std::fs::read(&path).unwrap();
        data[offsets[1] as usize + FRAME_HEADER_LEN] ^= 0xFF;
        data[offsets[3] as usize + FRAME_HEADER_LEN] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let rec = AppendLog::open(&path).unwrap();
        assert_eq!(rec.payloads.len(), 3);
        assert_eq!(rec.payloads[0], [0u8; 64]);
        assert_eq!(rec.payloads[1], [2u8; 64]);
        assert_eq!(rec.payloads[2], [4u8; 64]);
        assert_eq!(rec.gaps.len(), 2);
        assert_eq!(rec.gaps[0].preceding_frames, 1);
        assert_eq!(rec.gaps[1].preceding_frames, 2);
        drop(rec);

        let side = AppendLog::open(quarantine_path(&path)).unwrap();
        assert_eq!(side.payloads.len(), 2);
    }

    #[test]
    fn bad_header_rejected() {
        let path = temp_path("hdr");
        let _guard = Cleanup(path.clone());
        std::fs::write(&path, b"not a log file at all").unwrap();
        assert!(matches!(AppendLog::open(&path), Err(LogError::BadHeader)));
    }

    #[test]
    fn payload_size_limit() {
        let path = temp_path("big");
        let _guard = Cleanup(path.clone());
        let mut log = AppendLog::create(&path).unwrap();
        let too_big = vec![0u8; MAX_PAYLOAD as usize + 1];
        assert!(matches!(
            log.append(&too_big),
            Err(LogError::PayloadTooLarge(_))
        ));
    }

    #[test]
    fn open_or_create_both_paths() {
        let path = temp_path("ooc");
        let _guard = Cleanup(path.clone());
        let rec = AppendLog::open_or_create(&path).unwrap();
        assert_eq!(rec.payloads.len(), 0);
        let mut log = rec.log;
        log.append(b"x").unwrap();
        log.sync().unwrap();
        drop(log);
        let rec = AppendLog::open_or_create(&path).unwrap();
        assert_eq!(rec.payloads.len(), 1);
    }

    #[test]
    fn log_round_trips_on_fault_vfs() {
        use crate::vfs::{FaultConfig, FaultVfs};
        let vfs: Arc<dyn Vfs> = FaultVfs::new(FaultConfig::default());
        let path = Path::new("/log");
        let mut log = AppendLog::create_with(Arc::clone(&vfs), path).unwrap();
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        log.sync().unwrap();
        drop(log);
        let rec = AppendLog::open_with(Arc::clone(&vfs), path).unwrap();
        assert_eq!(rec.payloads, vec![b"one".to_vec(), b"two".to_vec()]);
    }
}
