//! CRC-32 (IEEE 802.3) for log-frame integrity.
//!
//! This checksum protects against *accidental* corruption (torn writes,
//! bit rot) in the storage layer. It is **not** part of the tamper-evidence
//! story — that is what the cryptographic provenance checksums are for.

/// Initial (and final-XOR) CRC-32 state.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Table-driven CRC-32 with the IEEE polynomial (reflected, 0xEDB88320).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(CRC_INIT, data) ^ CRC_INIT
}

/// Streaming update: feed `state` from a previous call (start with
/// `0xFFFF_FFFF`), finish by XOR-ing with `0xFFFF_FFFF`.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        let idx = ((state ^ b as u32) & 0xFF) as usize;
        state = TABLE[idx] ^ (state >> 8);
    }
    state
}

/// Frame checksum shared by every length-prefixed framing in the system
/// (the [`crate::log`] durable log and the `tep-net` wire protocol):
/// CRC-32 over the big-endian length prefix followed by the payload bytes.
///
/// Covering the length keeps a run of zero bytes from parsing as a valid
/// empty frame (`crc32("") == 0`), which matters both for the log's
/// torn-tail rescan and for resynchronization on a byte stream.
pub fn frame_crc(len: u32, payload: &[u8]) -> u32 {
    let mut state = CRC_INIT;
    state = crc32_update(state, &len.to_be_bytes());
    state = crc32_update(state, payload);
    state ^ CRC_INIT
}

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello crc world";
        let mut state = 0xFFFF_FFFF;
        state = crc32_update(state, &data[..5]);
        state = crc32_update(state, &data[5..]);
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn frame_crc_binds_length_and_payload() {
        let a = frame_crc(5, b"hello");
        // Same payload under a different claimed length must differ.
        assert_ne!(frame_crc(6, b"hello"), a);
        // Same length, different payload must differ.
        assert_ne!(frame_crc(5, b"hellp"), a);
        // The empty frame is NOT the raw crc32("") == 0 — the length prefix
        // is covered, so zero-runs never parse as valid frames.
        assert_ne!(frame_crc(0, b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"provenance record payload".to_vec();
        let orig = crc32(&data);
        data[3] ^= 0x40;
        assert_ne!(crc32(&data), orig);
    }
}
