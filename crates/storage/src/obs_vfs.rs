//! Metric-recording decorator for the [`Vfs`] seam.
//!
//! [`ObservedVfs`] wraps any [`Vfs`] and counts every namespace operation,
//! every byte moved through file handles, and the latency of each
//! `sync_data` call — without the wrapped implementation (or its callers)
//! knowing. Because [`crate::ProvenanceDb::durable_with`] and the snapshot
//! helpers already accept an `Arc<dyn Vfs>`, wrapping is one line:
//!
//! ```
//! use std::sync::Arc;
//! use tep_obs::Registry;
//! use tep_storage::vfs::{FaultConfig, FaultVfs};
//! use tep_storage::ObservedVfs;
//!
//! let registry = Registry::new();
//! let vfs = ObservedVfs::wrap(FaultVfs::new(FaultConfig::default()), &registry);
//! let db = tep_storage::ProvenanceDb::durable_with(vfs, std::path::Path::new("/prov.db")).unwrap();
//! drop(db);
//! assert!(registry.counter_value("tep_storage_vfs_create_total") >= 1);
//! ```
//!
//! Metric names follow the `tep_storage_*` schema:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `tep_storage_vfs_create_total` | counter | `create_new` calls |
//! | `tep_storage_vfs_open_total` | counter | `open_rw` calls |
//! | `tep_storage_vfs_rename_total` | counter | `rename` calls |
//! | `tep_storage_vfs_remove_total` | counter | `remove_file` calls |
//! | `tep_storage_vfs_dir_sync_total` | counter | `sync_parent_dir` calls |
//! | `tep_storage_read_bytes_total` | counter | bytes read through handles |
//! | `tep_storage_write_bytes_total` | counter | bytes written through handles |
//! | `tep_storage_fsync_total` | counter | `sync_data` calls |
//! | `tep_storage_fsync_ns` | histogram | `sync_data` latency |
//! | `tep_storage_io_errors_total` | counter | failed vfs/file operations |

use crate::provenance_db::RecoveryReport;
use crate::vfs::{Vfs, VirtualFile};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use tep_obs::{Counter, Histogram, Registry};

/// The shared counter bundle; one per [`ObservedVfs`], cloned into every
/// file handle it opens.
#[derive(Clone)]
struct VfsObs {
    creates: Counter,
    opens: Counter,
    renames: Counter,
    removes: Counter,
    dir_syncs: Counter,
    read_bytes: Counter,
    write_bytes: Counter,
    fsyncs: Counter,
    fsync_ns: Histogram,
    io_errors: Counter,
}

impl VfsObs {
    fn new(registry: &Registry) -> Self {
        VfsObs {
            creates: registry.counter("tep_storage_vfs_create_total"),
            opens: registry.counter("tep_storage_vfs_open_total"),
            renames: registry.counter("tep_storage_vfs_rename_total"),
            removes: registry.counter("tep_storage_vfs_remove_total"),
            dir_syncs: registry.counter("tep_storage_vfs_dir_sync_total"),
            read_bytes: registry.counter("tep_storage_read_bytes_total"),
            write_bytes: registry.counter("tep_storage_write_bytes_total"),
            fsyncs: registry.counter("tep_storage_fsync_total"),
            fsync_ns: registry.latency_histogram("tep_storage_fsync_ns"),
            io_errors: registry.counter("tep_storage_io_errors_total"),
        }
    }

    /// Counts a failed operation, passing the result through unchanged.
    fn track<T>(&self, r: io::Result<T>) -> io::Result<T> {
        if r.is_err() {
            self.io_errors.inc();
        }
        r
    }
}

/// A [`Vfs`] decorator that records `tep_storage_*` metrics for every
/// operation performed through it. See the [module docs](self) for the
/// metric schema.
pub struct ObservedVfs {
    inner: Arc<dyn Vfs>,
    obs: VfsObs,
}

impl ObservedVfs {
    /// Wraps `inner`, registering the storage metrics in `registry`.
    pub fn wrap(inner: Arc<dyn Vfs>, registry: &Registry) -> Arc<ObservedVfs> {
        Arc::new(ObservedVfs {
            inner,
            obs: VfsObs::new(registry),
        })
    }
}

impl Vfs for ObservedVfs {
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn VirtualFile>> {
        self.obs.creates.inc();
        let f = self.obs.track(self.inner.create_new(path))?;
        Ok(Box::new(ObservedFile {
            inner: f,
            obs: self.obs.clone(),
        }))
    }

    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VirtualFile>> {
        self.obs.opens.inc();
        let f = self.obs.track(self.inner.open_rw(path))?;
        Ok(Box::new(ObservedFile {
            inner: f,
            obs: self.obs.clone(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.obs.renames.inc();
        self.obs.track(self.inner.rename(from, to))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.obs.removes.inc();
        self.obs.track(self.inner.remove_file(path))
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        self.obs.dir_syncs.inc();
        self.obs.track(self.inner.sync_parent_dir(path))
    }
}

struct ObservedFile {
    inner: Box<dyn VirtualFile>,
    obs: VfsObs,
}

impl Read for ObservedFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.obs.track(self.inner.read(buf))?;
        self.obs.read_bytes.add(n as u64);
        Ok(n)
    }
}

impl Write for ObservedFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.obs.track(self.inner.write(buf))?;
        self.obs.write_bytes.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.obs.track(self.inner.flush())
    }
}

impl Seek for ObservedFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

impl VirtualFile for ObservedFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.obs.fsyncs.inc();
        let timer = self.obs.fsync_ns.start_timer();
        let r = self.obs.track(self.inner.sync_data());
        drop(timer);
        r
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.obs.track(self.inner.set_len(len))
    }
}

/// Records a [`RecoveryReport`] into `registry` under the
/// `tep_storage_recovery_*` names, so reopen/repair outcomes show up next
/// to the I/O counters:
///
/// * `tep_storage_recovery_total` — recoveries performed;
/// * `tep_storage_recovery_degraded_total` — recoveries where
///   [`RecoveryReport::is_degraded`] held;
/// * `tep_storage_recovery_truncated_bytes_total` — torn tail bytes dropped;
/// * `tep_storage_recovery_gaps_total` — interior **corruption** gaps
///   skipped (compaction-excised ranges are deliberate and counted under
///   `tep_storage_compaction_excised_bytes_total` instead);
/// * `tep_storage_quarantine_bytes_total` — bytes moved to quarantine;
/// * `tep_storage_recovery_decode_failures_total` — frames whose payload
///   failed record decoding;
/// * `tep_storage_compacted_opens_total` /
///   `tep_storage_compaction_excised_bytes_total` — opens of a
///   compaction-stamped log and the cumulative bytes its stamp attests.
pub fn record_recovery(registry: &Registry, report: &RecoveryReport) {
    registry.counter("tep_storage_recovery_total").inc();
    if report.is_degraded() {
        registry
            .counter("tep_storage_recovery_degraded_total")
            .inc();
    }
    registry
        .counter("tep_storage_recovery_truncated_bytes_total")
        .add(report.truncated_bytes);
    registry
        .counter("tep_storage_recovery_gaps_total")
        .add(report.corruption_gaps() as u64);
    if let Some(stamp) = &report.compaction {
        registry.counter("tep_storage_compacted_opens_total").inc();
        registry
            .counter("tep_storage_compaction_excised_bytes_total")
            .add(stamp.excised_bytes);
    }
    registry
        .counter("tep_storage_quarantine_bytes_total")
        .add(report.quarantined_bytes);
    registry
        .counter("tep_storage_recovery_decode_failures_total")
        .add(report.decode_failures);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultVfs};
    use std::path::PathBuf;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn counts_ops_bytes_and_fsyncs() {
        let registry = Registry::new();
        let vfs = ObservedVfs::wrap(FaultVfs::new(FaultConfig::default()), &registry);
        let mut f = vfs.create_new(&p("/a")).unwrap();
        f.write_all(b"hello world").unwrap();
        f.sync_data().unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).unwrap();
        drop(f);
        vfs.sync_parent_dir(&p("/a")).unwrap();
        vfs.rename(&p("/a"), &p("/b")).unwrap();
        vfs.remove_file(&p("/b")).unwrap();

        let c = |name: &str| registry.counter_value(name);
        assert_eq!(c("tep_storage_vfs_create_total"), 1);
        assert_eq!(c("tep_storage_vfs_rename_total"), 1);
        assert_eq!(c("tep_storage_vfs_remove_total"), 1);
        assert_eq!(c("tep_storage_vfs_dir_sync_total"), 1);
        assert_eq!(c("tep_storage_write_bytes_total"), 11);
        assert_eq!(c("tep_storage_read_bytes_total"), 11);
        assert_eq!(c("tep_storage_fsync_total"), 1);
        assert_eq!(c("tep_storage_io_errors_total"), 0);
    }

    #[test]
    fn failed_operations_count_as_io_errors() {
        let registry = Registry::new();
        let vfs = ObservedVfs::wrap(FaultVfs::new(FaultConfig::default()), &registry);
        assert!(vfs.open_rw(&p("/missing")).is_err());
        assert!(vfs.remove_file(&p("/missing")).is_err());
        assert_eq!(registry.counter_value("tep_storage_io_errors_total"), 2);
    }

    #[test]
    fn recovery_report_is_recorded() {
        let registry = Registry::new();
        let gap = crate::log::LogGap {
            kind: crate::log::GapKind::Corruption,
            preceding_frames: 3,
            offset: 128,
            bytes: 32,
        };
        // One compaction-excised gap rides along: it must not inflate the
        // corruption gap counter, only the compaction counters.
        let excised = crate::log::LogGap {
            kind: crate::log::GapKind::Compacted,
            preceding_frames: 0,
            offset: 12,
            bytes: 4096,
        };
        let report = RecoveryReport {
            truncated_bytes: 17,
            gaps: vec![excised, gap, gap],
            quarantined_bytes: 64,
            decode_failures: 1,
            compaction: Some(crate::archive::CompactionStamp {
                generation: 1,
                excised_frames: 50,
                excised_bytes: 4096,
                watermark: 50,
                checkpoint_digest: vec![0xCD; 32],
            }),
        };
        record_recovery(&registry, &report);
        record_recovery(&registry, &RecoveryReport::default());
        let c = |name: &str| registry.counter_value(name);
        assert_eq!(c("tep_storage_recovery_total"), 2);
        assert_eq!(c("tep_storage_recovery_degraded_total"), 1);
        assert_eq!(c("tep_storage_recovery_truncated_bytes_total"), 17);
        assert_eq!(c("tep_storage_recovery_gaps_total"), 2);
        assert_eq!(c("tep_storage_quarantine_bytes_total"), 64);
        assert_eq!(c("tep_storage_recovery_decode_failures_total"), 1);
        assert_eq!(c("tep_storage_compacted_opens_total"), 1);
        assert_eq!(c("tep_storage_compaction_excised_bytes_total"), 4096);
    }
}
