//! The provenance database: stores checksummed provenance rows.
//!
//! This is the second database of the paper's experimental setup (§5.1):
//! for each operation the system records the row
//! `⟨SeqID(int), Participant(int), Oid(int), Checksum(binary(128))⟩`, plus —
//! in our implementation — an opaque payload carrying the full provenance
//! record (input/output hashes, input ids, …) that the verifier needs.
//!
//! Records are indexed by output object and kept in per-object `seqID`
//! order. The store runs in-memory, optionally backed by a durable
//! [`AppendLog`] with recovery on open.

use crate::archive::CompactionStamp;
use crate::log::{AppendLog, GapKind, LogError, LogGap};
use crate::vfs::{real_vfs, Vfs};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use tep_model::encode::{DecodeError, Reader};
use tep_model::ObjectId;
use tep_model::ParticipantId;

/// A stored provenance row: the paper's four columns plus the opaque
/// full-record payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredRecord {
    /// Sequence id within the output object's chain.
    pub seq_id: u64,
    /// The acting participant.
    pub participant: ParticipantId,
    /// The output object the record describes.
    pub oid: ObjectId,
    /// The signed provenance checksum.
    pub checksum: Vec<u8>,
    /// Serialized full provenance record (opaque to the storage layer).
    pub payload: Vec<u8>,
}

impl StoredRecord {
    /// Size of the paper's four-column row for this record:
    /// `SeqID(4) + Participant(4) + Oid(4) + checksum` bytes.
    ///
    /// This is the quantity Figures 9 and 11 plot as "space overhead".
    pub fn paper_row_bytes(&self) -> u64 {
        4 + 4 + 4 + self.checksum.len() as u64
    }

    /// Canonical wire encoding of the row — used both for durable log
    /// frames and for `tep-net` PROV frames, so a record's bytes are
    /// identical at rest and in flight.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.checksum.len() + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Appends the [`Self::to_bytes`] encoding to `out` without clearing
    /// it — lets hot paths (tep-net PROV framing) reuse one scratch buffer
    /// instead of allocating a fresh `Vec` per record.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq_id.to_be_bytes());
        out.extend_from_slice(&self.participant.0.to_be_bytes());
        out.extend_from_slice(&self.oid.raw().to_be_bytes());
        out.extend_from_slice(&(self.checksum.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.checksum);
        out.extend_from_slice(&(self.payload.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Decodes a row from its [`Self::to_bytes`] encoding.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        Self::decode(buf)
    }

    fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let seq_id = r.u64()?;
        let participant = ParticipantId(r.u64()?);
        let oid = ObjectId(r.u64()?);
        let checksum = r.len_prefixed()?.to_vec();
        let payload = r.len_prefixed()?.to_vec();
        r.expect_end()?;
        Ok(StoredRecord {
            seq_id,
            participant,
            oid,
            checksum,
            payload,
        })
    }
}

/// Errors from the provenance store.
#[derive(Debug)]
pub enum StoreError {
    /// Durable-log failure.
    Log(LogError),
    /// `retain` was called on a durable store; compaction must go through
    /// `compact_into` instead.
    DurableRetain,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Log(e) => write!(f, "provenance log error: {e}"),
            StoreError::DurableRetain => {
                write!(
                    f,
                    "cannot retain in place on a durable store; use compact_into"
                )
            }
        }
    }
}

/// What recovery found when a durable store was opened.
///
/// A clean open reports all-zero. Anything non-zero means the store came
/// back in **degraded-read mode**: every surviving record loaded, and the
/// damage is described here so the verification layer can surface it as
/// chain-continuity tamper evidence instead of the open failing outright.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes dropped from a torn tail (an interrupted, unacknowledged
    /// append — expected after a crash, not evidence of tampering).
    pub truncated_bytes: u64,
    /// Interior corrupt ranges excised into the `.quarantine` sidecar.
    pub gaps: Vec<LogGap>,
    /// Total corrupt bytes quarantined during this open.
    pub quarantined_bytes: u64,
    /// CRC-valid frames that failed to decode as records (skipped, but
    /// counted: a well-formed frame with garbage inside is suspicious).
    pub decode_failures: u64,
    /// The compaction stamp found leading the log, when this store has
    /// been compacted (see [`crate::archive`]). Excised ranges appear in
    /// [`RecoveryReport::gaps`] tagged [`GapKind::Compacted`] — they are a
    /// deliberate, checkpoint-attested truncation, never tamper evidence.
    pub compaction: Option<CompactionStamp>,
}

impl RecoveryReport {
    /// `true` when recovery found interior damage or undecodable records —
    /// anything beyond the benign torn tail. Compaction-excised gaps are
    /// deliberate and do **not** degrade the store.
    pub fn is_degraded(&self) -> bool {
        self.corruption_gaps() > 0 || self.decode_failures > 0
    }

    /// Number of gaps caused by actual corruption (quarantine), excluding
    /// compaction-excised ranges.
    pub fn corruption_gaps(&self) -> usize {
        self.gaps
            .iter()
            .filter(|g| g.kind == GapKind::Corruption)
            .count()
    }
}

impl std::error::Error for StoreError {}

impl From<LogError> for StoreError {
    fn from(e: LogError) -> Self {
        StoreError::Log(e)
    }
}

struct Inner {
    records: Vec<StoredRecord>,
    by_object: HashMap<ObjectId, Vec<u32>>,
    log: Option<AppendLog>,
    paper_row_bytes: u64,
    recovery: RecoveryReport,
}

/// The provenance record store.
///
/// Thread-safe: appends take a write lock, queries a read lock — mirroring
/// the paper's observation (§3.2) that per-object chains let participants
/// write provenance for different objects without a global serialization
/// point (the lock here protects only the in-memory index, held for the
/// duration of one append, not an entire chain construction).
///
/// ```
/// use tep_storage::{ProvenanceDb, StoredRecord};
/// use tep_model::{ObjectId, ParticipantId};
///
/// let db = ProvenanceDb::in_memory();
/// db.append(StoredRecord {
///     seq_id: 0,
///     participant: ParticipantId(1),
///     oid: ObjectId(7),
///     checksum: vec![0xAA; 128],
///     payload: vec![],
/// }).unwrap();
/// assert_eq!(db.latest_for(ObjectId(7)).unwrap().seq_id, 0);
/// assert_eq!(db.paper_row_bytes(), 140); // the paper's row layout
/// ```
pub struct ProvenanceDb {
    inner: RwLock<Inner>,
}

impl Default for ProvenanceDb {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl ProvenanceDb {
    /// Creates a volatile in-memory store.
    pub fn in_memory() -> Self {
        ProvenanceDb {
            inner: RwLock::new(Inner {
                records: Vec::new(),
                by_object: HashMap::new(),
                log: None,
                paper_row_bytes: 0,
                recovery: RecoveryReport::default(),
            }),
        }
    }

    /// Opens (or creates) a durable store at `path`, replaying any existing
    /// records. Storage damage never fails the open: a torn tail is
    /// truncated, interior corruption is quarantined by the log layer, and
    /// CRC-valid frames that fail to decode are skipped — everything found
    /// is tallied in [`ProvenanceDb::recovery`] for the verifier to report.
    pub fn durable(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::durable_with(real_vfs(), path)
    }

    /// [`ProvenanceDb::durable`] against an explicit [`Vfs`].
    pub fn durable_with(vfs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let recovered = AppendLog::open_or_create_with(vfs, path)?;
        let mut inner = Inner {
            records: Vec::with_capacity(recovered.payloads.len()),
            by_object: HashMap::new(),
            log: Some(recovered.log),
            paper_row_bytes: 0,
            recovery: RecoveryReport {
                truncated_bytes: recovered.truncated_bytes,
                gaps: recovered.gaps,
                quarantined_bytes: recovered.quarantined_bytes,
                decode_failures: 0,
                compaction: None,
            },
        };
        // A compacted log leads with its stamp frame: surface the excision
        // as a `Compacted` gap (attested through the checkpoint, not
        // quarantine evidence) and decode the rest as records.
        let mut frames = recovered.payloads.as_slice();
        if let Some(stamp) = frames
            .first()
            .and_then(|f| CompactionStamp::from_bytes(f).ok())
        {
            inner.recovery.gaps.insert(
                0,
                LogGap {
                    kind: GapKind::Compacted,
                    preceding_frames: 0,
                    offset: crate::log::HEADER_LEN,
                    bytes: stamp.excised_bytes,
                },
            );
            inner.recovery.compaction = Some(stamp);
            frames = &frames[1..];
        }
        for frame in frames {
            match StoredRecord::decode(frame) {
                Ok(rec) => index_record(&mut inner, rec),
                Err(_) => inner.recovery.decode_failures += 1,
            }
        }
        Ok(ProvenanceDb {
            inner: RwLock::new(inner),
        })
    }

    /// What recovery found when this store was opened (all-zero for
    /// in-memory stores and clean opens).
    pub fn recovery(&self) -> RecoveryReport {
        self.inner.read().recovery.clone()
    }

    /// Appends a record (durably if the store is durable).
    pub fn append(&self, record: StoredRecord) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        if let Some(log) = inner.log.as_mut() {
            log.append(&record.to_bytes())?;
        }
        index_record(&mut inner, record);
        Ok(())
    }

    /// Flushes and fsyncs the durable log (no-op for in-memory stores).
    pub fn sync(&self) -> Result<(), StoreError> {
        if let Some(log) = self.inner.write().log.as_mut() {
            log.sync()?;
        }
        Ok(())
    }

    /// All records for `oid`, sorted by `seq_id` (ties keep append order).
    pub fn records_for(&self, oid: ObjectId) -> Vec<StoredRecord> {
        let inner = self.inner.read();
        let mut out: Vec<StoredRecord> = inner
            .by_object
            .get(&oid)
            .map(|idxs| {
                idxs.iter()
                    .map(|&i| inner.records[i as usize].clone())
                    .collect()
            })
            .unwrap_or_default();
        out.sort_by_key(|r| r.seq_id);
        out
    }

    /// The most recent record (greatest `seq_id`) for `oid`.
    pub fn latest_for(&self, oid: ObjectId) -> Option<StoredRecord> {
        let inner = self.inner.read();
        inner.by_object.get(&oid).and_then(|idxs| {
            idxs.iter()
                .map(|&i| &inner.records[i as usize])
                .max_by_key(|r| r.seq_id)
                .cloned()
        })
    }

    /// Total number of stored records.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// `true` when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of [`StoredRecord::paper_row_bytes`] over all records — the
    /// space-overhead metric of Figures 9 and 11.
    pub fn paper_row_bytes(&self) -> u64 {
        self.inner.read().paper_row_bytes
    }

    /// Snapshot of every record in append order.
    pub fn all_records(&self) -> Vec<StoredRecord> {
        self.inner.read().records.clone()
    }

    /// Snapshot of the records at append positions `pos..`, in append
    /// order — the incremental feed secondary indexes tail to stay in sync
    /// without rescanning the whole log. An out-of-range `pos` yields an
    /// empty vec.
    pub fn records_from(&self, pos: usize) -> Vec<StoredRecord> {
        let inner = self.inner.read();
        inner
            .records
            .get(pos..)
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// Ids of all objects that have at least one record.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.inner.read().by_object.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Drops records failing `keep` from an **in-memory** store, returning
    /// how many were removed. Fails on durable stores (an append-only log
    /// cannot be edited in place — use [`Self::compact_into`]).
    pub fn retain(&self, keep: impl Fn(&StoredRecord) -> bool) -> Result<usize, StoreError> {
        let mut inner = self.inner.write();
        if inner.log.is_some() {
            return Err(StoreError::DurableRetain);
        }
        let before = inner.records.len();
        let kept: Vec<StoredRecord> = inner.records.drain(..).filter(|r| keep(r)).collect();
        inner.by_object.clear();
        inner.paper_row_bytes = 0;
        for rec in kept {
            index_record(&mut inner, rec);
        }
        Ok(before - inner.records.len())
    }

    /// Writes the records passing `keep` into a **new** durable store at
    /// `path` (compaction). The source store is untouched; callers swap the
    /// files/handles once the new store is synced.
    pub fn compact_into(
        &self,
        path: impl AsRef<Path>,
        keep: impl Fn(&StoredRecord) -> bool,
    ) -> Result<ProvenanceDb, StoreError> {
        let new = ProvenanceDb::durable(path)?;
        for rec in self.all_records() {
            if keep(&rec) {
                new.append(rec)?;
            }
        }
        new.sync()?;
        Ok(new)
    }
}

fn index_record(inner: &mut Inner, record: StoredRecord) {
    let idx = inner.records.len() as u32;
    inner.paper_row_bytes += record.paper_row_bytes();
    inner.by_object.entry(record.oid).or_default().push(idx);
    inner.records.push(record);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn rec(oid: u64, seq: u64, participant: u64) -> StoredRecord {
        StoredRecord {
            seq_id: seq,
            participant: ParticipantId(participant),
            oid: ObjectId(oid),
            checksum: vec![0xCC; 128],
            payload: format!("payload-{oid}-{seq}").into_bytes(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "tep-provdb-test-{}-{}-{}.log",
            std::process::id(),
            tag,
            n
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let _ = std::fs::remove_file(crate::log::quarantine_path(&self.0));
        }
    }

    #[test]
    fn append_and_query() {
        let db = ProvenanceDb::in_memory();
        db.append(rec(1, 0, 10)).unwrap();
        db.append(rec(1, 1, 11)).unwrap();
        db.append(rec(2, 0, 10)).unwrap();
        assert_eq!(db.len(), 3);
        let one = db.records_for(ObjectId(1));
        assert_eq!(one.len(), 2);
        assert_eq!(one[0].seq_id, 0);
        assert_eq!(one[1].seq_id, 1);
        assert_eq!(db.latest_for(ObjectId(1)).unwrap().seq_id, 1);
        assert!(db.latest_for(ObjectId(9)).is_none());
        assert!(db.records_for(ObjectId(9)).is_empty());
        assert_eq!(db.object_ids(), vec![ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn records_sorted_by_seq_even_if_appended_out_of_order() {
        let db = ProvenanceDb::in_memory();
        db.append(rec(1, 5, 10)).unwrap();
        db.append(rec(1, 2, 10)).unwrap();
        db.append(rec(1, 9, 10)).unwrap();
        let seqs: Vec<u64> = db
            .records_for(ObjectId(1))
            .iter()
            .map(|r| r.seq_id)
            .collect();
        assert_eq!(seqs, vec![2, 5, 9]);
        assert_eq!(db.latest_for(ObjectId(1)).unwrap().seq_id, 9);
    }

    #[test]
    fn paper_row_bytes_accounting() {
        let db = ProvenanceDb::in_memory();
        db.append(rec(1, 0, 10)).unwrap();
        db.append(rec(2, 0, 10)).unwrap();
        // Each row: 4 + 4 + 4 + 128 = 140 bytes, the paper's layout.
        assert_eq!(db.paper_row_bytes(), 280);
    }

    #[test]
    fn durable_roundtrip() {
        let path = temp_path("roundtrip");
        let _guard = Cleanup(path.clone());
        {
            let db = ProvenanceDb::durable(&path).unwrap();
            db.append(rec(1, 0, 10)).unwrap();
            db.append(rec(1, 1, 11)).unwrap();
            db.sync().unwrap();
        }
        let db = ProvenanceDb::durable(&path).unwrap();
        assert_eq!(db.len(), 2);
        let recs = db.records_for(ObjectId(1));
        assert_eq!(recs[1].participant, ParticipantId(11));
        assert_eq!(recs[1].payload, b"payload-1-1");
        assert_eq!(recs[1].checksum, vec![0xCC; 128]);
    }

    #[test]
    fn interior_corruption_opens_degraded_with_gap_report() {
        let path = temp_path("degraded");
        let _guard = Cleanup(path.clone());
        {
            let db = ProvenanceDb::durable(&path).unwrap();
            for seq in 0..4u64 {
                db.append(rec(1, seq, 10)).unwrap();
            }
            db.sync().unwrap();
        }
        // Corrupt the second record's frame (interior: frames 3/4 follow).
        let mut data = std::fs::read(&path).unwrap();
        let frame0_len = 8 + rec(1, 0, 10).to_bytes().len();
        let hit = 12 + frame0_len + 8 + 4;
        data[hit] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let db = ProvenanceDb::durable(&path).unwrap();
        assert_eq!(db.len(), 3);
        let seqs: Vec<u64> = db
            .records_for(ObjectId(1))
            .iter()
            .map(|r| r.seq_id)
            .collect();
        assert_eq!(seqs, vec![0, 2, 3]);
        let report = db.recovery();
        assert!(report.is_degraded());
        assert_eq!(report.gaps.len(), 1);
        assert_eq!(report.gaps[0].preceding_frames, 1);
        assert!(report.quarantined_bytes > 0);
        drop(db);

        // Reopen after quarantine: clean store, surviving records intact.
        let db = ProvenanceDb::durable(&path).unwrap();
        assert_eq!(db.len(), 3);
        assert!(!db.recovery().is_degraded());
    }

    #[test]
    fn undecodable_record_is_skipped_and_counted() {
        let path = temp_path("badrec");
        let _guard = Cleanup(path.clone());
        {
            // A CRC-valid frame that is not a StoredRecord encoding.
            let mut log = AppendLog::create(&path).unwrap();
            log.append(b"not a record").unwrap();
            log.append(&rec(1, 0, 10).to_bytes()).unwrap();
            log.sync().unwrap();
        }
        let db = ProvenanceDb::durable(&path).unwrap();
        assert_eq!(db.len(), 1);
        let report = db.recovery();
        assert!(report.is_degraded());
        assert_eq!(report.decode_failures, 1);
        assert!(report.gaps.is_empty());
    }

    #[test]
    fn record_encode_decode_roundtrip() {
        let r = rec(42, 7, 3);
        let encoded = r.to_bytes();
        assert_eq!(StoredRecord::decode(&encoded).unwrap(), r);
        // Truncation is detected.
        assert!(StoredRecord::decode(&encoded[..encoded.len() - 1]).is_err());
        // Trailing bytes are detected.
        let mut extended = encoded.clone();
        extended.push(0);
        assert!(StoredRecord::decode(&extended).is_err());
    }

    #[test]
    fn retain_rebuilds_indexes() {
        let db = ProvenanceDb::in_memory();
        db.append(rec(1, 0, 10)).unwrap();
        db.append(rec(1, 1, 10)).unwrap();
        db.append(rec(2, 0, 11)).unwrap();
        let removed = db.retain(|r| r.oid != ObjectId(2)).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(db.len(), 2);
        assert!(db.records_for(ObjectId(2)).is_empty());
        assert_eq!(db.records_for(ObjectId(1)).len(), 2);
        assert_eq!(db.paper_row_bytes(), 2 * 140);
        assert_eq!(db.object_ids(), vec![ObjectId(1)]);
    }

    #[test]
    fn retain_rejected_on_durable_store() {
        let path = temp_path("retain");
        let _guard = Cleanup(path.clone());
        let db = ProvenanceDb::durable(&path).unwrap();
        db.append(rec(1, 0, 10)).unwrap();
        assert!(matches!(
            db.retain(|_| true),
            Err(StoreError::DurableRetain)
        ));
    }

    #[test]
    fn compact_into_writes_filtered_durable_copy() {
        let src_path = temp_path("compact-src");
        let dst_path = temp_path("compact-dst");
        let _g1 = Cleanup(src_path.clone());
        let _g2 = Cleanup(dst_path.clone());
        let src = ProvenanceDb::durable(&src_path).unwrap();
        for oid in 1..=5u64 {
            src.append(rec(oid, 0, 10)).unwrap();
        }
        src.sync().unwrap();
        let dst = src
            .compact_into(&dst_path, |r| r.oid.raw() % 2 == 1)
            .unwrap();
        assert_eq!(dst.len(), 3); // oids 1, 3, 5
                                  // Source untouched.
        assert_eq!(src.len(), 5);
        // The compacted store survives reopen.
        drop(dst);
        let reopened = ProvenanceDb::durable(&dst_path).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(
            reopened.object_ids(),
            vec![ObjectId(1), ObjectId(3), ObjectId(5)]
        );
    }

    #[test]
    fn concurrent_appends_from_threads() {
        use std::sync::Arc;
        let db = Arc::new(ProvenanceDb::in_memory());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for s in 0..100u64 {
                    db.append(rec(t, s, t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.len(), 800);
        for t in 0..8u64 {
            let recs = db.records_for(ObjectId(t));
            assert_eq!(recs.len(), 100);
            // Per-object order intact despite interleaving.
            assert!(recs.windows(2).all(|w| w[0].seq_id < w[1].seq_id));
        }
    }
}
