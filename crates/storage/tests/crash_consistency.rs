//! Crash-consistency harness: replay a recorded workload against the
//! fault-injected VFS, simulate a power cut at EVERY mutating-operation
//! boundary, reopen, and assert the durability contract:
//!
//! 1. every record acknowledged by a completed `sync()` is recovered;
//! 2. what is recovered is an ordered prefix of what was attempted — a
//!    torn tail is truncated, never misread as interior tampering;
//! 3. recovery is idempotent: a second reopen is byte-identical and
//!    returns the same records.
//!
//! The sweep seed comes from `TEP_CRASH_SEED` (default 2009, the paper's
//! year) so CI can run a seed matrix.

use std::path::Path;
use std::sync::Arc;
use tep_storage::vfs::{FaultConfig, FaultVfs, Vfs};
use tep_storage::{load_forest_with, save_forest_with, AppendLog, LogError, ProvenanceDb};
use tep_workloads::{CrashOp, CrashWorkload};

fn sweep_seed() -> u64 {
    std::env::var("TEP_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2009)
}

type Payloads = Vec<Vec<u8>>;

/// Replays `workload` against a log at `path`, returning
/// `(acked, attempted)`: payloads acknowledged by a completed sync, and
/// payloads whose append call was issued (successfully or not). Stops at
/// the first error (the simulated power cut).
fn replay_log(
    vfs: &Arc<FaultVfs>,
    path: &Path,
    workload: &CrashWorkload,
) -> (Payloads, Payloads, Result<(), LogError>) {
    let mut acked: Vec<Vec<u8>> = Vec::new();
    let mut attempted: Vec<Vec<u8>> = Vec::new();
    let dyn_vfs: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    let mut log = match AppendLog::create_with(dyn_vfs, path) {
        Ok(l) => l,
        Err(e) => return (acked, attempted, Err(e)),
    };
    let mut appended: Vec<Vec<u8>> = Vec::new();
    for op in &workload.ops {
        let step = match op {
            CrashOp::Append(payload) => {
                attempted.push(payload.clone());
                match log.append(payload) {
                    Ok(_) => {
                        appended.push(payload.clone());
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            CrashOp::Sync => log.sync().map(|()| {
                acked = appended.clone();
            }),
        };
        if let Err(e) = step {
            return (acked, attempted, Err(e));
        }
    }
    (acked, attempted, Ok(()))
}

/// Asserts the durability contract after a power cut + reopen.
fn assert_recovered_contract(
    vfs: &Arc<FaultVfs>,
    path: &Path,
    acked: &[Vec<u8>],
    attempted: &[Vec<u8>],
    ctx: &str,
) {
    let dyn_vfs: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    let rec = AppendLog::open_or_create_with(Arc::clone(&dyn_vfs), path)
        .unwrap_or_else(|e| panic!("{ctx}: recovery must never fail, got {e}"));
    assert!(
        rec.gaps.is_empty(),
        "{ctx}: a crash tears the tail; it must never be reported as interior corruption"
    );
    assert_eq!(rec.quarantined_bytes, 0, "{ctx}: nothing to quarantine");
    // 1. Synced-prefix durability.
    assert!(
        rec.payloads.len() >= acked.len() && rec.payloads[..acked.len()] == *acked,
        "{ctx}: lost acknowledged records: acked {} recovered {}",
        acked.len(),
        rec.payloads.len()
    );
    // 2. Recovered is an ordered prefix of what was attempted.
    assert!(
        rec.payloads.len() <= attempted.len()
            && attempted[..rec.payloads.len()] == rec.payloads[..],
        "{ctx}: recovered frames are not a prefix of the attempted appends"
    );
    drop(rec);

    // 3. Idempotence: reopening again changes nothing, byte for byte.
    let bytes_after_first = vfs.file_bytes(path).expect("log exists after recovery");
    let rec2 = AppendLog::open_or_create_with(dyn_vfs, path)
        .unwrap_or_else(|e| panic!("{ctx}: second recovery failed: {e}"));
    drop(rec2);
    let bytes_after_second = vfs
        .file_bytes(path)
        .expect("log exists after second recovery");
    assert_eq!(
        bytes_after_first, bytes_after_second,
        "{ctx}: recovery is not idempotent"
    );
}

#[test]
fn append_log_survives_a_crash_at_every_operation() {
    let seed = sweep_seed();
    let workload = CrashWorkload::frames(seed, 40);
    let path = Path::new("/wal.teplog");

    // Dry run (no fault) to measure the operation space.
    let vfs = FaultVfs::new(FaultConfig {
        seed,
        ..FaultConfig::default()
    });
    let (_, _, result) = replay_log(&vfs, path, &workload);
    result.expect("dry run must succeed");
    let total_ops = vfs.ops();
    // BufWriter coalesces appends, so mutating ops ≪ workload steps; just
    // make sure the sweep covers a non-trivial operation space.
    assert!(total_ops > 15, "workload too small to be interesting");

    for crash_at in 1..=total_ops {
        let vfs = FaultVfs::new(FaultConfig {
            seed: seed ^ crash_at,
            crash_at_op: Some(crash_at),
            ..FaultConfig::default()
        });
        let (acked, attempted, result) = replay_log(&vfs, path, &workload);
        assert!(
            result.is_err(),
            "crash at op {crash_at}/{total_ops} never fired"
        );
        assert!(vfs.crashed(), "disk must be frozen after the cut");
        vfs.power_cycle();
        assert_recovered_contract(
            &vfs,
            path,
            &acked,
            &attempted,
            &format!("seed {seed}, crash at op {crash_at}/{total_ops}"),
        );
    }
}

#[test]
fn provenance_db_survives_a_crash_at_every_operation() {
    let seed = sweep_seed();
    let workload = CrashWorkload::records(seed, 30);
    let path = Path::new("/prov.teplog");

    let replay = |vfs: &Arc<FaultVfs>| -> (usize, usize, bool) {
        // Returns (acked, attempted, crashed).
        let dyn_vfs: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
        let db = match ProvenanceDb::durable_with(dyn_vfs, path) {
            Ok(db) => db,
            Err(_) => return (0, 0, true),
        };
        let mut acked = 0usize;
        let mut attempted = 0usize;
        for op in &workload.ops {
            let step = match op {
                CrashOp::Append(bytes) => {
                    let rec = tep_storage::StoredRecord::from_bytes(bytes)
                        .expect("workload payloads are records");
                    attempted += 1;
                    db.append(rec)
                }
                CrashOp::Sync => db.sync().map(|()| acked = attempted),
            };
            if step.is_err() {
                return (acked, attempted, true);
            }
        }
        (acked, attempted, false)
    };

    let vfs = FaultVfs::new(FaultConfig {
        seed,
        ..FaultConfig::default()
    });
    let (_, _, crashed) = replay(&vfs);
    assert!(!crashed, "dry run must succeed");
    let total_ops = vfs.ops();

    let expected: Vec<Vec<u8>> = workload
        .ops
        .iter()
        .filter_map(|op| match op {
            CrashOp::Append(b) => Some(b.clone()),
            CrashOp::Sync => None,
        })
        .collect();

    for crash_at in 1..=total_ops {
        let vfs = FaultVfs::new(FaultConfig {
            seed: seed ^ (crash_at << 1),
            crash_at_op: Some(crash_at),
            ..FaultConfig::default()
        });
        let (acked, _attempted, crashed) = replay(&vfs);
        assert!(crashed, "crash at op {crash_at}/{total_ops} never fired");
        vfs.power_cycle();

        let ctx = format!("provdb seed {seed}, crash at {crash_at}/{total_ops}");
        let dyn_vfs: Arc<dyn Vfs> = Arc::clone(&vfs) as Arc<dyn Vfs>;
        let db = ProvenanceDb::durable_with(Arc::clone(&dyn_vfs), path)
            .unwrap_or_else(|e| panic!("{ctx}: reopen must not fail: {e}"));
        let report = db.recovery();
        assert!(
            !report.is_degraded(),
            "{ctx}: a crash must never look like interior corruption: {report:?}"
        );
        let recovered = db.all_records();
        assert!(
            recovered.len() >= acked,
            "{ctx}: lost acknowledged records ({} < {acked})",
            recovered.len()
        );
        for (i, rec) in recovered.iter().enumerate() {
            assert_eq!(
                rec.to_bytes(),
                expected[i],
                "{ctx}: recovered record {i} differs from the appended one"
            );
        }
        drop(db);

        // Idempotent: reopen again, same records, byte-identical file.
        let bytes_first = vfs.file_bytes(path).expect("store exists");
        let db2 = ProvenanceDb::durable_with(dyn_vfs, path)
            .unwrap_or_else(|e| panic!("{ctx}: second reopen failed: {e}"));
        assert_eq!(db2.len(), recovered.len(), "{ctx}: reopen changed records");
        drop(db2);
        assert_eq!(
            vfs.file_bytes(path).expect("store exists"),
            bytes_first,
            "{ctx}: reopen changed bytes"
        );
    }
}

#[test]
fn snapshot_save_is_atomic_under_crash_at_every_operation() {
    use tep_model::{Forest, Value};
    let seed = sweep_seed();
    let path = Path::new("/forest.snap");

    let forest_a = {
        let mut f = Forest::new();
        let root = f.insert(Value::text("a"), None).unwrap();
        for i in 0..6i64 {
            f.insert(Value::Int(i), Some(root)).unwrap();
        }
        f
    };
    let forest_b = {
        let mut f = Forest::new();
        let root = f.insert(Value::text("b"), None).unwrap();
        for i in 0..9i64 {
            f.insert(Value::Int(100 + i), Some(root)).unwrap();
        }
        f
    };

    // Measure save B's operation count on a disk that already holds A.
    let probe = FaultVfs::new(FaultConfig {
        seed,
        ..FaultConfig::default()
    });
    {
        let v: Arc<dyn Vfs> = Arc::clone(&probe) as Arc<dyn Vfs>;
        save_forest_with(Arc::clone(&v), &forest_a, path).unwrap();
        let before = probe.ops();
        save_forest_with(v, &forest_b, path).unwrap();
        assert!(probe.ops() > before);
    }
    let save_a_ops;
    let save_b_ops;
    {
        let vfs = FaultVfs::new(FaultConfig {
            seed,
            ..FaultConfig::default()
        });
        let v: Arc<dyn Vfs> = Arc::clone(&vfs) as Arc<dyn Vfs>;
        save_forest_with(Arc::clone(&v), &forest_a, path).unwrap();
        save_a_ops = vfs.ops();
        save_forest_with(v, &forest_b, path).unwrap();
        save_b_ops = vfs.ops() - save_a_ops;
    }

    for crash_offset in 1..=save_b_ops {
        let vfs = FaultVfs::new(FaultConfig {
            seed: seed ^ (crash_offset << 2),
            ..FaultConfig::default()
        });
        let v: Arc<dyn Vfs> = Arc::clone(&vfs) as Arc<dyn Vfs>;
        save_forest_with(Arc::clone(&v), &forest_a, path).unwrap();
        vfs.set_crash_at(Some(vfs.ops() + crash_offset));
        let crashed = save_forest_with(Arc::clone(&v), &forest_b, path).is_err();
        let ctx = format!("snapshot seed {seed}, crash at save-B op {crash_offset}/{save_b_ops}");
        if crashed {
            vfs.power_cycle();
        }
        let loaded = load_forest_with(v, path)
            .unwrap_or_else(|e| panic!("{ctx}: snapshot must load after crash: {e}"));
        let n = loaded.len();
        assert!(
            n == forest_a.len() || n == forest_b.len(),
            "{ctx}: loaded a half-written snapshot ({n} nodes)"
        );
        if !crashed {
            assert_eq!(n, forest_b.len(), "{ctx}: completed save must win");
        }
    }
}

#[test]
fn lying_fsync_loses_data_but_never_corrupts() {
    let seed = sweep_seed();
    let workload = CrashWorkload::frames(seed, 25);
    let path = Path::new("/lie.teplog");
    // Lie on each sync position in turn.
    let sync_count = workload
        .ops
        .iter()
        .filter(|op| matches!(op, CrashOp::Sync))
        .count() as u64;
    for lie_at in 1..=(sync_count + 1) {
        // +1 covers the header sync inside create().
        let vfs = FaultVfs::new(FaultConfig {
            seed: seed ^ lie_at,
            lie_sync_at: Some(lie_at),
            ..FaultConfig::default()
        });
        let (_, attempted, result) = replay_log(&vfs, path, &workload);
        result.expect("a lying fsync reports success");
        vfs.power_cycle();
        // Acked records CAN be lost (that is the point of the lie), but
        // recovery must still be a clean, uncorrupted prefix.
        assert_recovered_contract(
            &vfs,
            path,
            &[],
            &attempted,
            &format!("lie at sync {lie_at}"),
        );
    }
}

#[test]
fn enospc_is_a_clean_error_and_synced_prefix_survives() {
    let seed = sweep_seed();
    let workload = CrashWorkload::frames(seed, 40);
    let path = Path::new("/full.teplog");
    let vfs = FaultVfs::new(FaultConfig {
        seed,
        disk_capacity: Some(16 * 1024),
        ..FaultConfig::default()
    });
    let (acked, attempted, result) = replay_log(&vfs, path, &workload);
    let err = result.expect_err("the workload must overflow a 16 KiB disk");
    assert!(
        err.to_string().contains("space"),
        "out-of-space must surface as ENOSPC, got: {err}"
    );
    // The disk did not crash — but even if the machine dies now, the
    // synced prefix must be intact.
    vfs.power_cycle();
    assert_recovered_contract(&vfs, path, &acked, &attempted, "enospc");
}

#[test]
fn short_writes_are_transparent_to_the_log() {
    let seed = sweep_seed();
    let workload = CrashWorkload::frames(seed, 30);
    let path = Path::new("/short.teplog");
    let vfs = FaultVfs::new(FaultConfig {
        seed,
        short_writes: true,
        ..FaultConfig::default()
    });
    let (acked, attempted, result) = replay_log(&vfs, path, &workload);
    result.expect("short writes must be absorbed by write_all");
    assert_eq!(acked.len(), attempted.len(), "workload ends with a sync");
    vfs.power_cycle();
    assert_recovered_contract(&vfs, path, &acked, &attempted, "short-writes");
}

#[test]
fn failed_fsync_keeps_the_log_usable() {
    let seed = sweep_seed();
    let workload = CrashWorkload::frames(seed, 20);
    let path = Path::new("/failsync.teplog");
    let vfs = FaultVfs::new(FaultConfig {
        seed,
        fail_sync_at: Some(2),
        ..FaultConfig::default()
    });
    let (acked, attempted, result) = replay_log(&vfs, path, &workload);
    // The workload aborts at the failed sync (fsync errors are not
    // retryable in general — see fsyncgate); acked reflects only syncs
    // that completed.
    assert!(result.is_err(), "the failing fsync must surface");
    vfs.power_cycle();
    assert_recovered_contract(&vfs, path, &acked, &attempted, "failed-fsync");
}
