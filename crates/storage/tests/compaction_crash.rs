//! Compaction crash harness: run checkpoint-anchored log compaction
//! against the fault-injected VFS, simulate a power cut at EVERY
//! mutating-operation boundary, reopen, and assert the compaction
//! contract from `archive.rs`:
//!
//! 1. **No acknowledged record is ever lost**: after any cut, every
//!    synced record is readable from the live log ∪ committed archive
//!    segments — the archive is fsynced before the live log shrinks, and
//!    the rename is the single commit point.
//! 2. **A half-finished compaction is recovered, never misread as
//!    tampering**: reopen always succeeds with a non-degraded recovery
//!    report (no corruption gaps, no quarantine) — the original log is
//!    byte-intact before the commit point, and a committed log is simply
//!    a compacted log.
//! 3. **Reopen is idempotent** (byte-identical second open) and **retry
//!    converges**: re-running the interrupted compaction completes,
//!    rewrites any orphan archive, and the log keeps accepting appends.
//!
//! The sweep seed comes from `TEP_CRASH_SEED` (default 2009) so CI can
//! run a seed matrix.

use std::path::Path;
use std::sync::Arc;
use tep_model::{ObjectId, ParticipantId};
use tep_storage::vfs::{FaultConfig, FaultVfs, Vfs};
use tep_storage::{
    archive_path_for, compact_durable_log, read_archive, ProvenanceDb, StoredRecord,
};

const RECORDS: u64 = 24;
const WATERMARK: u64 = 16;
const DIGEST: &[u8] = b"sealed-checkpoint-digest";

fn sweep_seed() -> u64 {
    std::env::var("TEP_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2009)
}

fn record(seq: u64) -> StoredRecord {
    StoredRecord {
        seq_id: seq,
        participant: ParticipantId(1),
        oid: ObjectId(seq % 7),
        checksum: vec![seq as u8; 48],
        payload: vec![0x7E; 32],
    }
}

/// Seeds the log with `RECORDS` acknowledged (synced) records.
fn seed_log(vfs: &Arc<FaultVfs>, path: &Path) {
    let dyn_vfs: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    let db = ProvenanceDb::durable_with(dyn_vfs, path).unwrap();
    for seq in 0..RECORDS {
        db.append(record(seq)).unwrap();
    }
    db.sync().unwrap();
}

fn compact(vfs: &Arc<FaultVfs>, path: &Path) -> Result<(), String> {
    let dyn_vfs: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    // `keep` sees indices relative to the current live log; fold in the
    // prior stamp's excised count so a retry over an already-compacted
    // log keeps the survivors (mirrors `tep_core::gc::compact_log`).
    let prior = {
        let db =
            ProvenanceDb::durable_with(Arc::clone(&dyn_vfs), path).map_err(|e| e.to_string())?;
        db.recovery()
            .compaction
            .map(|s| s.excised_frames)
            .unwrap_or(0)
    };
    compact_durable_log(
        dyn_vfs,
        path,
        |i, _| prior + i as u64 >= WATERMARK,
        WATERMARK,
        DIGEST,
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

/// Reads back every record the store acknowledges across the live log and
/// all *committed* archive generations (an orphan archive from a crashed
/// attempt is uncommitted and deliberately not counted).
fn union_of_archives_and_live(vfs: &Arc<FaultVfs>, path: &Path) -> (Vec<Vec<u8>>, bool) {
    let dyn_vfs: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
    let db = ProvenanceDb::durable_with(Arc::clone(&dyn_vfs), path)
        .unwrap_or_else(|e| panic!("reopen after a compaction crash must not fail: {e}"));
    let report = db.recovery();
    assert!(
        !report.is_degraded(),
        "a compaction crash must never look like tampering: {report:?}"
    );
    assert_eq!(
        report.quarantined_bytes, 0,
        "a compaction crash must not quarantine anything"
    );
    let stamp = report.compaction.clone();
    let mut all: Vec<Vec<u8>> = Vec::new();
    if let Some(stamp) = &stamp {
        for generation in 1..=stamp.generation {
            let seg = read_archive(Arc::clone(&dyn_vfs), &archive_path_for(path, generation))
                .unwrap_or_else(|e| panic!("committed archive {generation} unreadable: {e}"));
            assert_eq!(seg.checkpoint_digest, DIGEST);
            all.extend(seg.payloads);
        }
    }
    all.extend(db.all_records().iter().map(|r| r.to_bytes()));
    (all, stamp.is_some())
}

#[test]
fn compaction_survives_a_crash_at_every_operation() {
    let seed = sweep_seed();
    let path = Path::new("/compact.teplog");
    let expected: Vec<Vec<u8>> = (0..RECORDS).map(|s| record(s).to_bytes()).collect();

    // Dry run to measure the compaction's mutating-operation space.
    let vfs = FaultVfs::new(FaultConfig {
        seed,
        ..FaultConfig::default()
    });
    seed_log(&vfs, path);
    let setup_ops = vfs.ops();
    compact(&vfs, path).expect("dry run must succeed");
    let compact_ops = vfs.ops() - setup_ops;
    assert!(
        compact_ops > 8,
        "compaction op space too small to be interesting ({compact_ops})"
    );

    for crash_offset in 1..=compact_ops {
        let ctx = format!("seed {seed}, crash at compaction op {crash_offset}/{compact_ops}");
        let vfs = FaultVfs::new(FaultConfig {
            seed: seed ^ (crash_offset << 3),
            ..FaultConfig::default()
        });
        seed_log(&vfs, path);
        vfs.set_crash_at(Some(vfs.ops() + crash_offset));
        let result = compact(&vfs, path);

        if result.is_ok() {
            // The cut landed on a post-commit op (e.g. the final parent
            // dir sync): the compaction already reported success, so it
            // must be fully effective after the power cycle.
            assert!(vfs.crashed(), "{ctx}: crash never fired");
            vfs.power_cycle();
            let (all, committed) = union_of_archives_and_live(&vfs, path);
            assert!(committed, "{ctx}: reported success but stamp missing");
            assert_eq!(all, expected, "{ctx}: records lost after committed run");
            continue;
        }
        assert!(vfs.crashed(), "{ctx}: compaction failed without a crash");
        vfs.power_cycle();

        // 1+2: reopen succeeds, nothing acknowledged is lost, and the
        // half-finished state is never mistaken for tampering.
        let (all, _committed) = union_of_archives_and_live(&vfs, path);
        assert_eq!(
            all, expected,
            "{ctx}: acknowledged records lost across live log ∪ archives"
        );

        // 3a: reopen is idempotent, byte for byte.
        let bytes_first = vfs.file_bytes(path).expect("live log exists");
        let (all2, _) = union_of_archives_and_live(&vfs, path);
        assert_eq!(all2, expected, "{ctx}: second reopen changed the records");
        assert_eq!(
            vfs.file_bytes(path).expect("live log exists"),
            bytes_first,
            "{ctx}: reopen is not idempotent"
        );

        // 3b: retrying the interrupted compaction converges — the orphan
        // archive (if any) is rewritten and the commit completes.
        compact(&vfs, path).unwrap_or_else(|e| panic!("{ctx}: retry must complete: {e}"));
        let (all, committed) = union_of_archives_and_live(&vfs, path);
        assert!(committed, "{ctx}: retry did not commit");
        assert_eq!(all, expected, "{ctx}: records lost after retry");
        let seg =
            read_archive(Arc::clone(&vfs) as Arc<dyn Vfs>, &archive_path_for(path, 1)).unwrap();
        assert_eq!(
            seg.payloads,
            expected[..WATERMARK as usize].to_vec(),
            "{ctx}: archive does not hold exactly the excised prefix"
        );

        // 3c: the compacted log keeps accepting acknowledged appends.
        let dyn_vfs: Arc<dyn Vfs> = Arc::clone(&vfs) as Arc<dyn Vfs>;
        let db = ProvenanceDb::durable_with(Arc::clone(&dyn_vfs), path).unwrap();
        let live_before = db.len();
        db.append(record(RECORDS)).unwrap();
        db.sync().unwrap();
        drop(db);
        let db = ProvenanceDb::durable_with(dyn_vfs, path).unwrap();
        assert_eq!(
            db.len(),
            live_before + 1,
            "{ctx}: tail append after compaction did not survive reopen"
        );
        assert_eq!(
            db.recovery().compaction.as_ref().map(|s| s.excised_frames),
            Some(WATERMARK),
            "{ctx}: stamp lost after tail append"
        );
    }
}

/// A compaction whose watermark covers the whole log must still keep the
/// (empty) live log openable after a crash at any point — the degenerate
/// shape replicas hit when no records were appended since the seal.
#[test]
fn full_truncation_survives_crashes_too() {
    let seed = sweep_seed();
    let path = Path::new("/compact-all.teplog");
    let expected: Vec<Vec<u8>> = (0..RECORDS).map(|s| record(s).to_bytes()).collect();

    let full = |vfs: &Arc<FaultVfs>| -> Result<(), String> {
        let dyn_vfs: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
        compact_durable_log(dyn_vfs, path, |_, _| false, RECORDS, DIGEST)
            .map(|_| ())
            .map_err(|e| e.to_string())
    };

    let vfs = FaultVfs::new(FaultConfig {
        seed,
        ..FaultConfig::default()
    });
    seed_log(&vfs, path);
    let setup_ops = vfs.ops();
    full(&vfs).expect("dry run must succeed");
    let compact_ops = vfs.ops() - setup_ops;

    for crash_offset in 1..=compact_ops {
        let ctx = format!("seed {seed}, full-truncation crash at {crash_offset}/{compact_ops}");
        let vfs = FaultVfs::new(FaultConfig {
            seed: seed ^ (crash_offset << 4),
            ..FaultConfig::default()
        });
        seed_log(&vfs, path);
        vfs.set_crash_at(Some(vfs.ops() + crash_offset));
        let result = full(&vfs);
        assert!(vfs.crashed(), "{ctx}: crash never fired");
        vfs.power_cycle();
        let (all, committed) = union_of_archives_and_live(&vfs, path);
        assert_eq!(all, expected, "{ctx}: records lost");
        if result.is_ok() {
            assert!(committed, "{ctx}: reported success but stamp missing");
        }
        if !committed {
            full(&vfs).unwrap_or_else(|e| panic!("{ctx}: retry must complete: {e}"));
            let (all, _) = union_of_archives_and_live(&vfs, path);
            assert_eq!(all, expected, "{ctx}: records lost after retry");
        }
    }
}
