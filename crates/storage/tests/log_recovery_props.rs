//! Property tests for append-log recovery: random truncation offsets and
//! single-bit flips at arbitrary positions.
//!
//! Invariants checked (the durability contract from DESIGN.md):
//!
//! * truncation at any offset recovers exactly the frames wholly below the
//!   cut — the synced prefix — and never reports interior corruption;
//! * a single flipped bit loses at most the frame it landed in (CRC32
//!   detects all single-bit errors, so no CRC-failing frame is ever
//!   recovered), and `open` still succeeds: a flipped tail frame is
//!   truncated, a flipped interior frame is quarantined as a gap;
//! * every recovered payload is byte-identical to the one appended.

use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tep_storage::{quarantine_path, AppendLog, LogError};

const HEADER_LEN: usize = 12;
const FRAME_HEADER_LEN: usize = 8;

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tep_log_props_{tag}_{}_{n}.teplog",
        std::process::id()
    ))
}

struct Cleanup(PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
        let _ = fs::remove_file(quarantine_path(&self.0));
    }
}

/// Writes `frames` to a fresh log at `path`; returns each frame's
/// `(start, end)` byte range in the file (header included in `start`).
fn write_log(path: &PathBuf, frames: &[Vec<u8>]) -> Vec<(usize, usize)> {
    let mut log = AppendLog::create(path).expect("create");
    let mut ranges = Vec::with_capacity(frames.len());
    let mut at = HEADER_LEN;
    for f in frames {
        log.append(f).expect("append");
        let end = at + FRAME_HEADER_LEN + f.len();
        ranges.push((at, end));
        at = end;
    }
    log.sync().expect("sync");
    ranges
}

fn frames_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn truncation_recovers_exactly_the_frames_below_the_cut(
        frames in frames_strategy(),
        cut_raw in any::<u64>(),
    ) {
        let path = temp_path("cut");
        let _cleanup = Cleanup(path.clone());
        let ranges = write_log(&path, &frames);
        let full = fs::metadata(&path).unwrap().len() as usize;
        let cut = (cut_raw % (full as u64 + 1)) as usize; // 0..=full

        let file = fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(cut as u64).unwrap();
        drop(file);

        if cut < HEADER_LEN {
            // Not even a full header: this cannot be told apart from a
            // foreign file, so `open` must refuse (while `open_or_create`
            // repairs it — covered by the unit tests).
            prop_assert!(matches!(AppendLog::open(&path), Err(LogError::BadHeader)));
            return Ok(());
        }

        let rec = AppendLog::open(&path).expect("truncation must never fail open");
        let expected: Vec<&Vec<u8>> = frames
            .iter()
            .zip(&ranges)
            .filter(|(_, (_, end))| *end <= cut)
            .map(|(f, _)| f)
            .collect();
        prop_assert_eq!(rec.payloads.len(), expected.len());
        for (got, want) in rec.payloads.iter().zip(&expected) {
            prop_assert_eq!(got, *want);
        }
        prop_assert!(rec.gaps.is_empty(), "a cut is a torn tail, never tampering");
        prop_assert_eq!(rec.quarantined_bytes, 0);
        let good_end = expected.last().map_or(HEADER_LEN, |_| ranges[expected.len() - 1].1);
        prop_assert_eq!(rec.truncated_bytes, (cut - good_end) as u64);
        drop(rec);

        // Recovery is idempotent: the second open sees a clean log.
        let rec2 = AppendLog::open(&path).expect("reopen");
        prop_assert_eq!(rec2.payloads.len(), expected.len());
        prop_assert_eq!(rec2.truncated_bytes, 0);
        prop_assert!(rec2.gaps.is_empty());
    }

    #[test]
    fn single_bit_flip_loses_at_most_the_frame_it_hit(
        frames in frames_strategy(),
        pos_raw in any::<u64>(),
        bit in 0..8u8,
    ) {
        let path = temp_path("flip");
        let _cleanup = Cleanup(path.clone());
        let ranges = write_log(&path, &frames);

        let mut bytes = fs::read(&path).unwrap();
        let pos = (pos_raw % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        fs::write(&path, &bytes).unwrap();

        if pos < 10 {
            // Magic/version damage is indistinguishable from a foreign
            // file; `open` must refuse rather than guess.
            prop_assert!(matches!(AppendLog::open(&path), Err(LogError::BadHeader)));
            return Ok(());
        }
        if pos < HEADER_LEN {
            // The reserved header field is not validated: all data intact.
            let rec = AppendLog::open(&path).expect("reserved bytes are ignored");
            prop_assert_eq!(rec.payloads.len(), frames.len());
            prop_assert!(rec.gaps.is_empty());
            return Ok(());
        }

        let hit = ranges
            .iter()
            .position(|(start, end)| (*start..*end).contains(&pos))
            .expect("every post-header byte belongs to a frame");
        let expected: Vec<&Vec<u8>> = frames
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != hit)
            .map(|(_, f)| f)
            .collect();
        let rec = AppendLog::open(&path).expect("a flipped bit must never fail open");

        // CRC32 detects every single-bit error, so the damaged frame is
        // never recovered — and only that frame is lost.
        prop_assert_eq!(rec.payloads.len(), expected.len());
        for (got, want) in rec.payloads.iter().zip(&expected) {
            prop_assert_eq!(got, *want);
        }

        let (hit_start, hit_end) = ranges[hit];
        if hit == frames.len() - 1 {
            // Tail frame: indistinguishable from a torn write — truncated,
            // not quarantined.
            prop_assert!(rec.gaps.is_empty());
            prop_assert_eq!(rec.truncated_bytes, (hit_end - hit_start) as u64);
            prop_assert_eq!(rec.quarantined_bytes, 0);
        } else {
            // Interior frame: valid data follows, so this is medium damage
            // — excised into the sidecar and reported as a gap.
            prop_assert_eq!(rec.gaps.len(), 1);
            prop_assert_eq!(rec.gaps[0].offset, hit_start as u64);
            prop_assert_eq!(rec.gaps[0].bytes, (hit_end - hit_start) as u64);
            prop_assert_eq!(rec.gaps[0].preceding_frames, hit as u64);
            prop_assert_eq!(rec.quarantined_bytes, (hit_end - hit_start) as u64);
            prop_assert!(quarantine_path(&path).exists(), "sidecar must exist");
        }
        drop(rec);

        // Second open: the damage was handled, the log is clean.
        let rec2 = AppendLog::open(&path).expect("reopen");
        prop_assert_eq!(rec2.payloads.len(), expected.len());
        prop_assert!(rec2.gaps.is_empty());
        prop_assert_eq!(rec2.truncated_bytes, 0);
    }
}
