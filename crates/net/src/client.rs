//! Fetching client: connect/read retry with decorrelated-jitter backoff,
//! and **streaming verify-on-receive**.
//!
//! Every PROV frame is pushed into a `tep-core`
//! [`StreamingVerifier`](tep_core::verify::StreamingVerifier) the moment it
//! arrives; the transfer is aborted at the **first** frame that produces
//! tamper evidence, and the report says exactly which frame failed. DATA
//! frames feed a [`DepthStreamHasher`](tep_core::streaming::DepthStreamHasher)
//! so the object hash is recomputed incrementally — the client never trusts
//! a hash the server claims, only the one it derives from the delivered
//! bytes. A transfer is accepted only if the recomputed hash matches the
//! newest provenance record (R4/R5) and every record verified (R1–R3).
//!
//! Transient failures (refused connections, timeouts, truncated streams,
//! `ERR busy`) are retried with *decorrelated jitter*:
//! `delay = min(cap, uniform(base, prev_delay * 3))` — the strategy that
//! avoids retry thundering herds without coordination. Tamper evidence is
//! **never** retried: a forged history does not become honest on the second
//! download.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tep_core::metrics::{TransferCounters, TransferSnapshot};
use tep_core::streaming::{DepthStreamHasher, StreamError};
use tep_core::verify::{
    EvidenceCounters, EvidenceKind, StreamingVerifier, TamperEvidence, Verification,
};
use tep_core::ProvenanceRecord;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::KeyDirectory;
use tep_model::ObjectId;
use tep_obs::Registry;

use crate::wire::{
    ErrorCode, FrameReader, FrameWriter, Message, OfferEntry, WireError, WIRE_VERSION,
};

/// Retry/backoff policy for transient network failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). 1 disables retrying.
    pub max_attempts: u32,
    /// Lower bound of every backoff delay.
    pub base: Duration,
    /// Upper bound the jittered delay is clamped to.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        }
    }
}

/// Client configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Hash algorithm the transfer's hashes use (must match the server).
    pub alg: HashAlgorithm,
    /// Backoff policy for transient failures.
    pub retry: RetryPolicy,
    /// Socket read timeout.
    pub read_timeout: Duration,
    /// Seed for the backoff jitter (deterministic for reproducible tests).
    pub jitter_seed: u64,
}

impl ClientConfig {
    /// Defaults for `alg`.
    pub fn new(alg: HashAlgorithm) -> Self {
        ClientConfig {
            alg,
            retry: RetryPolicy::default(),
            read_timeout: Duration::from_secs(5),
            jitter_seed: 0x7E94_E75D,
        }
    }
}

/// Successful, fully verified fetch.
#[derive(Clone, Debug)]
pub struct FetchReport {
    /// The verifier's verdict (always `verified()` on the `Ok` path).
    pub verification: Verification,
    /// The object hash recomputed from the delivered data.
    pub object_hash: Vec<u8>,
    /// Provenance records received.
    pub records: u64,
    /// Data nodes received.
    pub nodes: u64,
    /// The server's OFFER manifest from this connection.
    pub offer: Vec<OfferEntry>,
}

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Wire-level failure (socket, framing, decoding).
    Wire(WireError),
    /// The server refused with a protocol error.
    Remote {
        /// The server's error code.
        code: ErrorCode,
        /// The server's detail string.
        detail: String,
    },
    /// The peer violated the protocol state machine.
    Protocol(&'static str),
    /// The provenance failed cryptographic verification — the transfer was
    /// rejected. **Never retried.**
    TamperDetected {
        /// Wire frame index (0-based, per connection) of the first frame
        /// that produced evidence; `None` when the evidence only appears
        /// at end-of-transfer (e.g. an object/record hash mismatch).
        frame: Option<u64>,
        /// All evidence accumulated up to the abort.
        issues: Vec<TamperEvidence>,
    },
    /// The DATA stream was structurally malformed (bad depth tags, subtree
    /// reordering). Also treated as tamper evidence, never retried.
    MalformedStream {
        /// Wire frame index of the offending DATA frame.
        frame: u64,
        /// The structural error.
        error: StreamError,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Remote { code, detail } => write!(f, "server refused ({code}): {detail}"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::TamperDetected { frame, issues } => {
                match frame {
                    Some(i) => write!(f, "tampering detected at frame {i}: ")?,
                    None => write!(f, "tampering detected at end of transfer: ")?,
                }
                write!(f, "{} issue(s)", issues.len())?;
                if let Some(first) = issues.first() {
                    write!(f, ", first: {first}")?;
                }
                Ok(())
            }
            NetError::MalformedStream { frame, error } => {
                write!(f, "malformed data stream at frame {frame}: {error}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Wire(WireError::from(e))
    }
}

impl NetError {
    /// Whether retrying could plausibly help. Cryptographic rejections and
    /// protocol violations are terminal; connectivity hiccups are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Wire(WireError::Io(_)) | NetError::Wire(WireError::Truncated) => true,
            NetError::Remote { code, .. } => *code == ErrorCode::Busy,
            _ => false,
        }
    }
}

/// A provenance-fetching client for one server address.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    counters: Arc<TransferCounters>,
    registry: Option<Registry>,
    rng: StdRng,
}

impl Client {
    /// A client that will dial `addr`.
    pub fn new(addr: SocketAddr, cfg: ClientConfig) -> Self {
        Client {
            addr,
            cfg,
            rng: StdRng::seed_from_u64(cfg.jitter_seed),
            counters: Arc::new(TransferCounters::new()),
            registry: None,
        }
    }

    /// Attaches metric instrumentation: frame/byte traffic mirrors into
    /// `registry` under `tep_net_*`, and every piece of tamper evidence a
    /// fetch detects increments its `tep_core_evidence_<kind>_total`
    /// counter (including [`EvidenceKind::MalformedStream`] for
    /// structurally bad DATA streams).
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.counters = Arc::new(TransferCounters::observed(registry));
        self.registry = Some(registry.clone());
    }

    /// Transfer counters accumulated across every attempt so far.
    pub fn counters(&self) -> TransferSnapshot {
        self.counters.snapshot()
    }

    /// Requests the server's metric registry as text exposition (a STATS
    /// frame), with retry.
    pub fn stats(&mut self) -> Result<String, NetError> {
        self.with_retry(|conn| {
            conn.writer.write_message(&Message::StatsRequest)?;
            match conn.reader.read_message()? {
                Some(Message::Stats { text }) => Ok(text),
                Some(Message::Error { code, detail }) => Err(NetError::Remote { code, detail }),
                _ => Err(NetError::Protocol("expected STATS")),
            }
        })
    }

    /// Connects and returns the server's OFFER manifest (with retry).
    pub fn offer(&mut self) -> Result<Vec<OfferEntry>, NetError> {
        self.with_retry(|conn| conn.offer.clone().ok_or(NetError::Protocol("no OFFER")))
    }

    /// Fetches `oid`, verifying every record as it arrives and the
    /// recomputed object hash at the end. Transient failures are retried
    /// per the policy; tamper evidence aborts immediately and is returned
    /// as [`NetError::TamperDetected`].
    pub fn fetch_verified(
        &mut self,
        oid: ObjectId,
        keys: &KeyDirectory,
    ) -> Result<FetchReport, NetError> {
        let alg = self.cfg.alg;
        let counters = Arc::clone(&self.counters);
        let registry = self.registry.clone();
        self.with_retry(move |conn| fetch_on(conn, oid, keys, alg, &counters, registry.as_ref()))
    }

    /// Runs `op` on a fresh connection, retrying transient failures with
    /// decorrelated jitter.
    fn with_retry<T>(
        &mut self,
        op: impl Fn(&mut Connection) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let policy = self.cfg.retry;
        let mut delay = policy.base;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = self.connect().and_then(|mut conn| op(&mut conn));
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt < policy.max_attempts.max(1) => {
                    self.counters.retry();
                    delay = self.next_delay(delay, policy);
                    std::thread::sleep(delay);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Decorrelated jitter: `min(cap, uniform(base, prev * 3))`.
    fn next_delay(&mut self, prev: Duration, policy: RetryPolicy) -> Duration {
        let base = policy.base.as_millis().max(1) as u64;
        let hi = (prev.as_millis() as u64).saturating_mul(3).max(base + 1);
        let picked = self.rng.gen_range(base..hi);
        Duration::from_millis(picked).min(policy.cap)
    }

    /// Dials the server and completes the HELLO exchange.
    fn connect(&self) -> Result<Connection, NetError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_nodelay(true)?;
        let mut reader = FrameReader::new(
            stream.try_clone().map_err(WireError::Io)?,
            Arc::clone(&self.counters),
        );
        let mut writer = FrameWriter::new(stream, Arc::clone(&self.counters));
        writer.write_message(&Message::Hello {
            version: WIRE_VERSION,
            alg: self.cfg.alg,
        })?;
        match reader.read_message()? {
            Some(Message::Hello { version, alg })
                if version == WIRE_VERSION && alg == self.cfg.alg => {}
            Some(Message::Error { code, detail }) => {
                return Err(NetError::Remote { code, detail });
            }
            Some(_) | None => return Err(NetError::Protocol("expected HELLO")),
        }
        let offer = match reader.read_message()? {
            Some(Message::Offer { entries }) => Some(entries),
            Some(Message::Error { code, detail }) => {
                return Err(NetError::Remote { code, detail });
            }
            _ => return Err(NetError::Protocol("expected OFFER")),
        };
        Ok(Connection {
            reader,
            writer,
            offer,
        })
    }
}

/// An established, HELLO-negotiated connection.
struct Connection {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
    offer: Option<Vec<OfferEntry>>,
}

/// One fetch on an established connection: streams PROV frames through the
/// verifier, DATA frames through the subtree hasher, and settles at DONE.
fn fetch_on(
    conn: &mut Connection,
    oid: ObjectId,
    keys: &KeyDirectory,
    alg: HashAlgorithm,
    counters: &Arc<TransferCounters>,
    registry: Option<&Registry>,
) -> Result<FetchReport, NetError> {
    conn.writer.write_message(&Message::Fetch { oid })?;

    let mut verifier = StreamingVerifier::new(keys, alg, oid);
    if let Some(reg) = registry {
        verifier.attach_obs(reg);
    }
    let mut hasher = DepthStreamHasher::new(alg);
    let mut records = 0u64;
    let mut seen_data = false;

    loop {
        let frame = conn.reader.frames(); // index of the frame about to arrive
        let msg = conn
            .reader
            .read_message()?
            .ok_or(NetError::Protocol("connection closed mid-transfer"))?;
        match msg {
            Message::Prov { record } => {
                if seen_data {
                    return Err(NetError::Protocol("PROV after DATA"));
                }
                let rec = ProvenanceRecord::from_stored(&record).map_err(WireError::Decode)?;
                records += 1;
                if verifier.push_record(&rec) > 0 {
                    counters.verify_failure();
                    return Err(NetError::TamperDetected {
                        frame: Some(frame),
                        issues: verifier.issues().to_vec(),
                    });
                }
            }
            Message::Data { entries } => {
                seen_data = true;
                for e in &entries {
                    if let Err(error) = hasher.push(e.depth as usize, e.id, &e.value) {
                        counters.verify_failure();
                        record_malformed_stream(registry);
                        return Err(NetError::MalformedStream { frame, error });
                    }
                }
            }
            Message::Done {
                records: sent_records,
                nodes: sent_nodes,
            } => {
                let nodes = hasher.node_count();
                let (object_hash, _) = match hasher.finish() {
                    Ok(h) => h,
                    Err(error) => {
                        counters.verify_failure();
                        record_malformed_stream(registry);
                        return Err(NetError::MalformedStream { frame, error });
                    }
                };
                // Verify FIRST: if frames were removed in flight, the
                // evidence (broken chains, missing records) matters more
                // than the bare count mismatch.
                let verification = verifier.finish(&object_hash);
                if !verification.verified() {
                    counters.verify_failure();
                    return Err(NetError::TamperDetected {
                        frame: None,
                        issues: verification.issues,
                    });
                }
                if sent_records != records || sent_nodes != nodes {
                    return Err(NetError::Protocol("DONE totals disagree with transfer"));
                }
                let ret = FetchReport {
                    verification,
                    object_hash,
                    records,
                    nodes,
                    offer: conn.offer.clone().unwrap_or_default(),
                };
                return Ok(ret);
            }
            Message::Error { code, detail } => return Err(NetError::Remote { code, detail }),
            _ => return Err(NetError::Protocol("unexpected message during transfer")),
        }
    }
}

/// Counts a structurally malformed DATA stream under the unified evidence
/// schema (`tep_core_evidence_malformed_stream_total`) — the one detection
/// surface with no [`TamperEvidence`] variant of its own.
fn record_malformed_stream(registry: Option<&Registry>) {
    if let Some(reg) = registry {
        EvidenceCounters::new(reg).record(EvidenceKind::MalformedStream);
    }
}
