//! Fetching client: connect/read retry with decorrelated-jitter backoff,
//! **streaming verify-on-receive**, and checkpointed resume.
//!
//! Every PROV frame is pushed into a `tep-core`
//! [`StreamingVerifier`](tep_core::verify::StreamingVerifier) the moment it
//! arrives; the transfer is aborted at the **first** frame that produces
//! tamper evidence, and the report says exactly which frame failed. DATA
//! frames feed a [`DepthStreamHasher`](tep_core::streaming::DepthStreamHasher)
//! so the object hash is recomputed incrementally — the client never trusts
//! a hash the server claims, only the one it derives from the delivered
//! bytes. A transfer is accepted only if the recomputed hash matches the
//! newest provenance record (R4/R5) and every record verified (R1–R3).
//!
//! Transient failures (refused connections, timeouts, truncated streams,
//! frame corruption, `ERR busy`/`ERR deadline`) are retried with
//! *decorrelated jitter*: `delay = min(cap, uniform(base, prev_delay * 3))`
//! — the strategy that avoids retry thundering herds without coordination.
//! A server-supplied `Retry-After` hint sets a floor under the jittered
//! delay, and the whole retry loop is bounded by a wall-clock
//! [`RetryPolicy::deadline`] on top of the attempt cap.
//!
//! When a transfer dies after k verified records, the client seals the
//! verifier state into a checkpoint ([`StreamingVerifier::checkpoint`]) and
//! the next attempt opens with `RESUME` instead of `FETCH`: it claims
//! offset k and proves it with the rolling record-stream digest. The server
//! recomputes the digest over its own first k records; only a byte-identical
//! prefix resumes. A server that confirms a different offset or digest is
//! rejected as [`TamperEvidence::ResumeMismatch`] — and tamper evidence is
//! **never** retried: a forged history does not become honest on the second
//! download.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tep_core::denial::{SignedDenial, SignedRange};
use tep_core::metrics::{TransferCounters, TransferSnapshot};
use tep_core::slice::{QuerySpec, SliceProof};
use tep_core::streaming::{DepthStreamHasher, StreamError};
use tep_core::verify::{
    EvidenceCounters, EvidenceKind, StreamingVerifier, TamperEvidence, Verification, Verifier,
};
use tep_core::{ProvenanceObject, ProvenanceRecord, VerifyBatcher};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::KeyDirectory;
use tep_model::{ObjectId, TenantId};
use tep_obs::Registry;

use crate::wire::{
    ErrorCode, FrameReader, FrameWriter, Message, OfferEntry, WireError, WIRE_VERSION,
};

/// Retry/backoff policy for transient network failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). 1 disables retrying.
    pub max_attempts: u32,
    /// Lower bound of every backoff delay.
    pub base: Duration,
    /// Upper bound the jittered delay is clamped to.
    pub cap: Duration,
    /// Total wall-clock budget across all attempts *and* backoff sleeps.
    /// Once elapsed, the next transient failure is returned instead of
    /// retried — so a flapping server cannot pin a caller for
    /// `max_attempts × cap` regardless of how slow each attempt is.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            deadline: Duration::from_secs(30),
        }
    }
}

/// Client configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Hash algorithm the transfer's hashes use (must match the server).
    pub alg: HashAlgorithm,
    /// Backoff policy for transient failures.
    pub retry: RetryPolicy,
    /// Socket read timeout.
    pub read_timeout: Duration,
    /// Seed for the backoff jitter (deterministic for reproducible tests).
    pub jitter_seed: u64,
    /// Resume interrupted transfers with RESUME instead of refetching from
    /// record zero (on by default; disable to measure the difference).
    pub resume: bool,
    /// The tenant scope this client states in HELLO. Every request on the
    /// connection is scoped to it; a server that does not know (or has
    /// disabled) the tenant answers with the non-retryable
    /// `ERR unknown-tenant`. Defaults to [`TenantId::DEFAULT`].
    pub tenant: TenantId,
}

impl ClientConfig {
    /// Defaults for `alg`.
    pub fn new(alg: HashAlgorithm) -> Self {
        ClientConfig {
            alg,
            retry: RetryPolicy::default(),
            read_timeout: Duration::from_secs(5),
            jitter_seed: 0x7E94_E75D,
            resume: true,
            tenant: TenantId::DEFAULT,
        }
    }

    /// Same defaults, scoped to `tenant`.
    pub fn for_tenant(alg: HashAlgorithm, tenant: TenantId) -> Self {
        ClientConfig {
            tenant,
            ..Self::new(alg)
        }
    }
}

/// Successful, fully verified fetch.
#[derive(Clone, Debug)]
pub struct FetchReport {
    /// The verifier's verdict (always `verified()` on the `Ok` path).
    pub verification: Verification,
    /// The object hash recomputed from the delivered data.
    pub object_hash: Vec<u8>,
    /// Provenance records received and verified (across all attempts —
    /// resumed records are counted once).
    pub records: u64,
    /// Data nodes received.
    pub nodes: u64,
    /// The server's OFFER manifest from the final connection.
    pub offer: Vec<OfferEntry>,
    /// How many attempts continued a previous attempt via RESUME (0 for an
    /// uninterrupted transfer).
    pub resumed: u32,
    /// The rolling record-stream digest over every verified record, in
    /// order — two transfers delivered the byte-identical record sequence
    /// iff their digests are equal.
    pub stream_digest: Vec<u8>,
}

/// Successful, fully re-verified query.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// The decoded slice proof: records, boundary links, and the answer.
    pub proof: SliceProof,
    /// The client-side re-verification verdict (always `verified()` on
    /// the `Ok` path).
    pub verification: Verification,
}

/// Successful, completeness-proven range listing ([`Client::range`]).
#[derive(Clone, Debug)]
pub struct RangeReport {
    /// Every object in the requested range, ascending — proven complete
    /// by the verified [`SignedRange`]: the server cannot have withheld a
    /// member without the proof failing.
    pub members: Vec<ObjectId>,
    /// Cumulative log high-water mark the signed root attests.
    pub log_records: u64,
    /// The client-side verification verdict (always `verified()` on the
    /// `Ok` path).
    pub verification: Verification,
}

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Wire-level failure (socket, framing, decoding).
    Wire(WireError),
    /// The server refused with a protocol error.
    Remote {
        /// The server's error code.
        code: ErrorCode,
        /// The server's backoff hint, if it sent one.
        retry_after: Option<Duration>,
        /// The server's detail string.
        detail: String,
    },
    /// The connection ended cleanly in the middle of a transfer — the
    /// server (or the network) hung up at a frame boundary. Retryable, and
    /// resumable from the last verified record.
    Interrupted,
    /// The peer violated the protocol state machine.
    Protocol(&'static str),
    /// The provenance failed cryptographic verification — the transfer was
    /// rejected. **Never retried.**
    TamperDetected {
        /// Wire frame index (0-based, per connection) of the first frame
        /// that produced evidence; `None` when the evidence only appears
        /// at end-of-transfer (e.g. an object/record hash mismatch).
        frame: Option<u64>,
        /// All evidence accumulated up to the abort.
        issues: Vec<TamperEvidence>,
    },
    /// The DATA stream was structurally malformed (bad depth tags, subtree
    /// reordering). Also treated as tamper evidence, never retried.
    MalformedStream {
        /// Wire frame index of the offending DATA frame.
        frame: u64,
        /// The structural error.
        error: StreamError,
    },
    /// The server proved — with a verified signed non-membership proof —
    /// that the requested object is absent. An honest answer, not a
    /// failure: **never retried** (the proof is cryptographic; asking
    /// again cannot make the object exist).
    Denied {
        /// The object the verified proof covers.
        oid: ObjectId,
        /// Cumulative log high-water mark the signed root attests.
        log_records: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Remote { code, detail, .. } => {
                write!(f, "server refused ({code}): {detail}")
            }
            NetError::Interrupted => write!(f, "connection closed mid-transfer"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::TamperDetected { frame, issues } => {
                match frame {
                    Some(i) => write!(f, "tampering detected at frame {i}: ")?,
                    None => write!(f, "tampering detected at end of transfer: ")?,
                }
                write!(f, "{} issue(s)", issues.len())?;
                if let Some(first) = issues.first() {
                    write!(f, ", first: {first}")?;
                }
                Ok(())
            }
            NetError::MalformedStream { frame, error } => {
                write!(f, "malformed data stream at frame {frame}: {error}")
            }
            NetError::Denied { oid, log_records } => {
                write!(
                    f,
                    "server proved non-membership of {oid} (signed root at log high-water {log_records})"
                )
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Wire(WireError::from(e))
    }
}

impl NetError {
    /// Whether retrying could plausibly help. Cryptographic rejections and
    /// protocol violations are terminal; connectivity hiccups — including
    /// *accidental* frame corruption, which is exactly what the CRC exists
    /// to catch — are not. (Deliberate tampering survives the CRC, is
    /// caught by signature verification, and is never retried.)
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Wire(WireError::Io(_))
            | NetError::Wire(WireError::Truncated)
            | NetError::Wire(WireError::BadCrc)
            | NetError::Wire(WireError::Oversized { .. })
            | NetError::Interrupted => true,
            NetError::Remote { code, .. } => {
                matches!(code, ErrorCode::Busy | ErrorCode::Deadline)
            }
            _ => false,
        }
    }

    /// The server's `Retry-After` hint, if this failure carried one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            NetError::Remote { retry_after, .. } => *retry_after,
            _ => None,
        }
    }
}

/// A provenance-fetching client for one server address.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    counters: Arc<TransferCounters>,
    registry: Option<Registry>,
    rng: StdRng,
}

impl Client {
    /// A client that will dial `addr`.
    pub fn new(addr: SocketAddr, cfg: ClientConfig) -> Self {
        Client {
            addr,
            cfg,
            rng: StdRng::seed_from_u64(cfg.jitter_seed),
            counters: Arc::new(TransferCounters::new()),
            registry: None,
        }
    }

    /// Attaches metric instrumentation: frame/byte traffic mirrors into
    /// `registry` under `tep_net_*`, and every piece of tamper evidence a
    /// fetch detects increments its `tep_core_evidence_<kind>_total`
    /// counter (including [`EvidenceKind::MalformedStream`] for
    /// structurally bad DATA streams and [`EvidenceKind::ResumeMismatch`]
    /// for resume points the peer cannot or will not honor honestly).
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.counters = Arc::new(TransferCounters::observed(registry));
        self.registry = Some(registry.clone());
    }

    /// Transfer counters accumulated across every attempt so far.
    pub fn counters(&self) -> TransferSnapshot {
        self.counters.snapshot()
    }

    /// Requests the server's metric registry as text exposition (a STATS
    /// frame), with retry.
    pub fn stats(&mut self) -> Result<String, NetError> {
        self.with_retry(|conn| {
            conn.writer.write_message(&Message::StatsRequest)?;
            match conn.reader.read_message()? {
                Some(Message::Stats { text }) => Ok(text),
                Some(Message::Error {
                    code,
                    retry_after_ms,
                    detail,
                }) => Err(remote_error(code, retry_after_ms, detail)),
                _ => Err(NetError::Protocol("expected STATS")),
            }
        })
    }

    /// Connects and returns the server's OFFER manifest (with retry).
    pub fn offer(&mut self) -> Result<Vec<OfferEntry>, NetError> {
        self.with_retry(|conn| conn.offer.clone().ok_or(NetError::Protocol("no OFFER")))
    }

    /// Runs a provenance query on the server and **re-verifies the slice
    /// proof locally** before returning it: the records' signatures and
    /// chains are checked against `keys`, the traversal is re-run over the
    /// slice, and the answer recomputed. The server is never trusted — a
    /// QRESULT that fails any check is rejected as
    /// [`NetError::TamperDetected`] (never retried), including a proof
    /// answering a *different* question than the one asked.
    pub fn query(
        &mut self,
        spec: &QuerySpec,
        keys: &KeyDirectory,
    ) -> Result<QueryReport, NetError> {
        let cfg = self.cfg;
        let counters = Arc::clone(&self.counters);
        let registry = self.registry.clone();
        self.with_retry(move |conn| {
            conn.writer.write_message(&Message::Query { spec: *spec })?;
            let frame = conn.reader.frames();
            match conn.reader.read_message()? {
                Some(Message::QResult { proof }) => {
                    let Ok(proof) = SliceProof::from_bytes(&proof) else {
                        // The frame CRC passed, so these bytes are what the
                        // server sent — a non-canonical or truncated proof
                        // is a lie, not line noise.
                        counters.verify_failure();
                        record_malformed_stream(registry.as_ref());
                        return Err(NetError::Protocol("QRESULT proof failed to decode"));
                    };
                    if proof.spec != *spec {
                        // An answer to a different question than asked.
                        counters.verify_failure();
                        if let Some(reg) = registry.as_ref() {
                            EvidenceCounters::new(reg).record(EvidenceKind::OutputMismatch);
                        }
                        return Err(NetError::TamperDetected {
                            frame: Some(frame),
                            issues: vec![TamperEvidence::OutputMismatch { oid: spec.target }],
                        });
                    }
                    let mut verifier = Verifier::new(keys, cfg.alg);
                    if let Some(reg) = registry.as_ref() {
                        verifier.attach_obs(reg);
                    }
                    let verification = verifier.verify_slice(&proof);
                    if !verification.verified() {
                        counters.verify_failure();
                        return Err(NetError::TamperDetected {
                            frame: Some(frame),
                            issues: verification.issues,
                        });
                    }
                    Ok(QueryReport {
                        proof,
                        verification,
                    })
                }
                Some(Message::Denial { proof }) => Err(denial_outcome(
                    &proof,
                    spec.target,
                    keys,
                    cfg.alg,
                    frame,
                    &counters,
                    registry.as_ref(),
                )),
                Some(Message::Error {
                    code,
                    retry_after_ms,
                    detail,
                }) => Err(remote_error(code, retry_after_ms, detail)),
                Some(_) => Err(NetError::Protocol("expected QRESULT")),
                None => Err(NetError::Interrupted),
            }
        })
    }

    /// Lists every object the server stores in `[lo, hi]`, demanding a
    /// **signed completeness proof** and re-verifying it locally: the
    /// returned member set is exactly what the proof authenticates, with
    /// straddling boundary witnesses showing nothing in the range was
    /// withheld. A response whose proof fails any check — or that answers
    /// a different range than asked — is [`NetError::TamperDetected`]
    /// ([`TamperEvidence::ForgedDenial`] /
    /// [`TamperEvidence::IncompleteResponse`]), never retried.
    pub fn range(
        &mut self,
        lo: ObjectId,
        hi: ObjectId,
        keys: &KeyDirectory,
    ) -> Result<RangeReport, NetError> {
        let cfg = self.cfg;
        let counters = Arc::clone(&self.counters);
        let registry = self.registry.clone();
        self.with_retry(move |conn| {
            conn.writer.write_message(&Message::RangeReq { lo, hi })?;
            let frame = conn.reader.frames();
            match conn.reader.read_message()? {
                Some(Message::RangeResp { oids, proof }) => {
                    let forged = || {
                        counters.verify_failure();
                        if let Some(reg) = registry.as_ref() {
                            EvidenceCounters::new(reg).record(EvidenceKind::ForgedDenial);
                        }
                        NetError::TamperDetected {
                            frame: Some(frame),
                            issues: vec![TamperEvidence::ForgedDenial { oid: lo }],
                        }
                    };
                    let Ok(range) = SignedRange::from_bytes(&proof) else {
                        return Err(forged());
                    };
                    if range.proof.lo != lo || range.proof.hi != hi {
                        // An answer to a different question than asked.
                        return Err(forged());
                    }
                    let mut verifier = Verifier::new(keys, cfg.alg);
                    if let Some(reg) = registry.as_ref() {
                        verifier.attach_obs(reg);
                    }
                    // verify_range records failing evidence itself —
                    // including a member the proof covers but the answer
                    // omits (IncompleteResponse).
                    let verification = verifier.verify_range(&range, &oids);
                    if !verification.verified() {
                        counters.verify_failure();
                        return Err(NetError::TamperDetected {
                            frame: Some(frame),
                            issues: verification.issues,
                        });
                    }
                    Ok(RangeReport {
                        members: oids,
                        log_records: range.root.log_records,
                        verification,
                    })
                }
                Some(Message::Error {
                    code,
                    retry_after_ms,
                    detail,
                }) => Err(remote_error(code, retry_after_ms, detail)),
                Some(_) => Err(NetError::Protocol("expected RANGE_RESP")),
                None => Err(NetError::Interrupted),
            }
        })
    }

    /// Fetches `oid`, verifying every record as it arrives and the
    /// recomputed object hash at the end. Transient failures are retried
    /// per the policy; when [`ClientConfig::resume`] is on, a retry after k
    /// verified records reconnects with RESUME and continues from k+1
    /// instead of refetching. Tamper evidence aborts immediately and is
    /// returned as [`NetError::TamperDetected`].
    pub fn fetch_verified(
        &mut self,
        oid: ObjectId,
        keys: &KeyDirectory,
    ) -> Result<FetchReport, NetError> {
        let cfg = self.cfg;
        let counters = Arc::clone(&self.counters);
        let registry = self.registry.clone();
        let mut session = FetchSession::default();
        self.with_retry(move |conn| {
            fetch_on(
                conn,
                oid,
                keys,
                cfg,
                &mut session,
                &counters,
                registry.as_ref(),
            )
        })
    }

    /// Fetches `oid` and hands verification to a cross-connection
    /// [`VerifyBatcher`] instead of checking records inline: the records
    /// are collected, the object hash is recomputed from the delivered
    /// data, and the `(hash, provenance)` pair is submitted to `batcher`,
    /// blocking only on this transfer's own [ticket]. Many client threads
    /// sharing one batcher amortize signature checks into micro-batches —
    /// the throughput path the `net_scale` benchmark measures.
    ///
    /// Trade-off versus [`fetch_verified`](Self::fetch_verified):
    /// tampering is still always detected (same verifier, same verdicts),
    /// but only *after* the whole object has arrived, with no per-frame
    /// attribution and no checkpoint/RESUME — a retryable failure
    /// refetches from record zero.
    ///
    /// [ticket]: tep_core::VerifyTicket
    pub fn fetch_batched(
        &mut self,
        oid: ObjectId,
        batcher: &VerifyBatcher,
    ) -> Result<Verification, NetError> {
        let cfg = self.cfg;
        let counters = Arc::clone(&self.counters);
        let registry = self.registry.clone();
        self.with_retry(move |conn| {
            fetch_batched_on(conn, oid, cfg, &counters, batcher, registry.as_ref())
        })
    }

    /// Runs `op` on a fresh connection, retrying transient failures with
    /// decorrelated jitter until the attempt cap or the wall-clock deadline
    /// is hit — whichever comes first. A server `Retry-After` hint floors
    /// the jittered delay, but the final wait is clamped to the time left
    /// before [`RetryPolicy::deadline`] so one oversized hint cannot park
    /// the client past its own budget.
    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut Connection) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let policy = self.cfg.retry;
        let started = Instant::now();
        let mut delay = policy.base;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = self.connect().and_then(|mut conn| op(&mut conn));
            match outcome {
                Ok(v) => return Ok(v),
                Err(e)
                    if e.is_retryable()
                        && attempt < policy.max_attempts.max(1)
                        && started.elapsed() < policy.deadline =>
                {
                    self.counters.retry();
                    delay = self.next_delay(delay, policy);
                    let remaining = policy.deadline.saturating_sub(started.elapsed());
                    let wait = clamp_retry_wait(delay, e.retry_after(), remaining);
                    std::thread::sleep(wait);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Decorrelated jitter: `min(cap, uniform(base, prev * 3))`.
    ///
    /// All arithmetic is carried out in saturating u64 milliseconds so a
    /// pathological `cap` (or a previous delay near it) can never overflow:
    /// `prev * 3` saturates, and the sample range is clamped to
    /// `[base, cap]` before the draw rather than after.
    fn next_delay(&mut self, prev: Duration, policy: RetryPolicy) -> Duration {
        fn ms(d: Duration) -> u64 {
            u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
        }
        let cap = ms(policy.cap).max(1);
        let base = ms(policy.base).clamp(1, cap);
        // Upper bound of the draw, exclusive: at least base+1 (so the range
        // is never empty), at most cap+1 (so the pick never exceeds cap).
        let hi = ms(prev)
            .saturating_mul(3)
            .clamp(base.saturating_add(1), cap.saturating_add(1));
        Duration::from_millis(self.rng.gen_range(base..hi))
    }

    /// Dials the server and completes the HELLO exchange.
    fn connect(&self) -> Result<Connection, NetError> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_nodelay(true)?;
        let control = stream.try_clone().map_err(WireError::Io)?;
        let mut reader = FrameReader::new(
            stream.try_clone().map_err(WireError::Io)?,
            Arc::clone(&self.counters),
        );
        let mut writer = FrameWriter::new(stream, Arc::clone(&self.counters));
        writer.write_message(&Message::Hello {
            version: WIRE_VERSION,
            alg: self.cfg.alg,
            tenant: self.cfg.tenant.raw(),
        })?;
        match reader.read_message()? {
            Some(Message::Hello {
                version,
                alg,
                tenant,
            }) if version == WIRE_VERSION
                && alg == self.cfg.alg
                && tenant == self.cfg.tenant.raw() => {}
            Some(Message::Error {
                code,
                retry_after_ms,
                detail,
            }) => {
                return Err(remote_error(code, retry_after_ms, detail));
            }
            Some(_) => return Err(NetError::Protocol("expected HELLO")),
            // EOF before the handshake: the peer (or the path) dropped the
            // connection before saying anything — transient, retryable.
            None => return Err(NetError::Interrupted),
        }
        let offer = match reader.read_message()? {
            Some(Message::Offer { entries }) => Some(entries),
            Some(Message::Error {
                code,
                retry_after_ms,
                detail,
            }) => {
                return Err(remote_error(code, retry_after_ms, detail));
            }
            Some(_) => return Err(NetError::Protocol("expected OFFER")),
            None => return Err(NetError::Interrupted),
        };
        Ok(Connection {
            reader,
            writer,
            offer,
            stream: control,
        })
    }
}

/// An established, HELLO-negotiated connection.
struct Connection {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
    offer: Option<Vec<OfferEntry>>,
    /// A control handle on the same socket as `reader`/`writer`, kept so
    /// the fetch path can rescale the read timeout once the OFFER reveals
    /// how large the transfer will be (`set_read_timeout` acts on the
    /// shared fd, so the reader's clone sees the new value).
    stream: TcpStream,
}

impl Connection {
    /// Chain length the server's OFFER claims for `oid`, if offered.
    fn offered_records(&self, oid: ObjectId) -> Option<u64> {
        self.offer
            .as_ref()?
            .iter()
            .find(|e| e.oid == oid)
            .map(|e| e.records)
    }
}

/// Resume state carried across the attempts of one `fetch_verified` call.
#[derive(Default)]
struct FetchSession {
    /// Sealed verifier checkpoint + verified-record count from the last
    /// interrupted attempt, if any.
    checkpoint: Option<(Vec<u8>, u64)>,
    /// Attempts that successfully resumed a previous attempt.
    resumed: u32,
}

/// Per-read socket timeout for a transfer the OFFER says carries
/// `records` provenance records: the configured base plus 2ms of slack
/// per record, saturating at 10 000 records' worth (+20s).
///
/// The base timeout is sized to catch a *stalled* peer quickly. But on a
/// loaded event-loop server the gap between two frames of one stream
/// grows with how much other work the loop interleaves, and long streams
/// hit the write high-watermark (where the server deliberately pauses the
/// job) far more often than short ones — so a flat per-read timeout that
/// is right for a 10-record object spuriously kills a 10 000-record one
/// under fan-in. Scaling by offered size keeps big transfers alive under
/// load while small ones still fail fast, and the slope is shallow enough
/// that a genuinely wedged stream is detected well inside any realistic
/// stall-injection window (e.g. 350ms base + 12 records = 374ms, still
/// far under a 600ms stall).
pub fn scaled_read_timeout(base: Duration, records: u64) -> Duration {
    const PER_RECORD_MS: u64 = 2;
    const RECORD_CAP: u64 = 10_000;
    base.saturating_add(Duration::from_millis(
        records.min(RECORD_CAP) * PER_RECORD_MS,
    ))
}

/// Picks the wait before the next retry attempt: the jittered `delay`,
/// floored by the server's `Retry-After` `hint` — then clamped to the
/// `remaining` wall-clock budget. The clamp is what keeps one oversized
/// (or hostile) hint from overshooting [`RetryPolicy::deadline`]: the
/// client sleeps at most until the deadline, wakes, and the deadline
/// check in the retry loop converts the failure into a clean error.
fn clamp_retry_wait(delay: Duration, hint: Option<Duration>, remaining: Duration) -> Duration {
    hint.map_or(delay, |h| delay.max(h)).min(remaining)
}

/// Converts a wire ERR into [`NetError::Remote`], decoding the hint.
pub(crate) fn remote_error(code: ErrorCode, retry_after_ms: u64, detail: String) -> NetError {
    NetError::Remote {
        code,
        retry_after: (retry_after_ms > 0).then(|| Duration::from_millis(retry_after_ms)),
        detail,
    }
}

/// Builds the terminal [`TamperEvidence::ResumeMismatch`] rejection: the
/// peer either refused a checkpoint this client verified record-by-record,
/// or confirmed a resume point it cannot prove. Either way the two ends
/// disagree about history, which is an R2/R3 violation, not a retry.
pub(crate) fn resume_mismatch(
    oid: ObjectId,
    claimed: u64,
    confirmed: u64,
    frame: u64,
    counters: &Arc<TransferCounters>,
    registry: Option<&Registry>,
) -> NetError {
    counters.verify_failure();
    if let Some(reg) = registry {
        EvidenceCounters::new(reg).record(EvidenceKind::ResumeMismatch);
    }
    NetError::TamperDetected {
        frame: Some(frame),
        issues: vec![TamperEvidence::ResumeMismatch {
            oid,
            claimed,
            confirmed,
        }],
    }
}

/// Opens the transfer on a fresh connection: RESUME from the session's
/// checkpoint when there is one, FETCH from scratch otherwise. Returns the
/// verifier (restored or new) and the record offset the stream starts at.
fn open_transfer<'a>(
    conn: &mut Connection,
    oid: ObjectId,
    keys: &'a KeyDirectory,
    cfg: ClientConfig,
    session: &mut FetchSession,
    counters: &Arc<TransferCounters>,
    registry: Option<&Registry>,
) -> Result<(StreamingVerifier<'a>, u64), NetError> {
    if cfg.resume {
        if let Some((blob, claimed)) = session.checkpoint.take() {
            // The blob was sealed by our own verifier an attempt ago; if it
            // no longer opens, local state is damaged — fall back to a full
            // fetch rather than claiming a prefix we cannot prove.
            if let Ok(mut verifier) = StreamingVerifier::restore(keys, &blob) {
                if let Some(reg) = registry {
                    verifier.attach_obs(reg);
                }
                let digest = verifier.stream_digest().to_vec();
                conn.writer.write_message(&Message::Resume {
                    oid,
                    records: claimed,
                    digest: digest.clone(),
                })?;
                let frame = conn.reader.frames();
                return match conn.reader.read_message()? {
                    Some(Message::ResumeOk {
                        records: confirmed,
                        digest: theirs,
                    }) => {
                        if confirmed != claimed || theirs != digest {
                            // The server "accepted" a resume point it
                            // cannot prove — it is lying about history.
                            Err(resume_mismatch(
                                oid, claimed, confirmed, frame, counters, registry,
                            ))
                        } else {
                            session.resumed += 1;
                            Ok((verifier, claimed))
                        }
                    }
                    Some(Message::Error {
                        code: ErrorCode::ResumeMismatch,
                        ..
                    }) => {
                        // The server's history diverged from the prefix we
                        // verified — or it rewrote it. Terminal evidence.
                        Err(resume_mismatch(oid, claimed, 0, frame, counters, registry))
                    }
                    Some(Message::Error {
                        code,
                        retry_after_ms,
                        detail,
                    }) => Err(remote_error(code, retry_after_ms, detail)),
                    Some(Message::Denial { proof }) => {
                        // The object this client once verified records for
                        // is now provably absent (e.g. pruned upstream).
                        // The denial still has to prove itself.
                        Err(denial_outcome(
                            &proof, oid, keys, cfg.alg, frame, counters, registry,
                        ))
                    }
                    Some(_) | None => Err(NetError::Protocol("expected RESUME_OK")),
                };
            }
        }
    }
    conn.writer.write_message(&Message::Fetch { oid })?;
    let mut verifier = StreamingVerifier::new(keys, cfg.alg, oid);
    if let Some(reg) = registry {
        verifier.attach_obs(reg);
    }
    Ok((verifier, 0))
}

/// One attempt on an established connection: opens (or resumes) the
/// transfer, streams PROV frames through the verifier and DATA frames
/// through the subtree hasher, and settles at DONE. On a *retryable*
/// failure after at least one verified record, the verifier state is
/// sealed into the session so the next attempt can RESUME.
fn fetch_on(
    conn: &mut Connection,
    oid: ObjectId,
    keys: &KeyDirectory,
    cfg: ClientConfig,
    session: &mut FetchSession,
    counters: &Arc<TransferCounters>,
    registry: Option<&Registry>,
) -> Result<FetchReport, NetError> {
    // Rescale the socket timeout to the transfer's offered size before any
    // stream frames are read. Connections are per-attempt, so the base
    // timeout never needs restoring.
    if let Some(records) = conn.offered_records(oid) {
        conn.stream
            .set_read_timeout(Some(scaled_read_timeout(cfg.read_timeout, records)))?;
    }
    let (mut verifier, start_records) =
        open_transfer(conn, oid, keys, cfg, session, counters, registry)?;
    let mut hasher = DepthStreamHasher::new(cfg.alg);
    let mut records = start_records;
    let mut seen_data = false;

    let failure: NetError = loop {
        let frame = conn.reader.frames(); // index of the frame about to arrive
        let msg = match conn.reader.read_message() {
            Ok(Some(m)) => m,
            Ok(None) => break NetError::Interrupted,
            Err(e) => break NetError::Wire(e),
        };
        match msg {
            Message::Prov { record } => {
                if seen_data {
                    break NetError::Protocol("PROV after DATA");
                }
                let rec = match ProvenanceRecord::from_stored(&record) {
                    Ok(r) => r,
                    Err(e) => break NetError::Wire(WireError::Decode(e)),
                };
                records += 1;
                if verifier.push_record(&rec) > 0 {
                    counters.verify_failure();
                    break NetError::TamperDetected {
                        frame: Some(frame),
                        issues: verifier.issues().to_vec(),
                    };
                }
            }
            Message::Data { entries } => {
                seen_data = true;
                let mut bad = None;
                for e in &entries {
                    if let Err(error) = hasher.push(e.depth as usize, e.id, &e.value) {
                        bad = Some(error);
                        break;
                    }
                }
                if let Some(error) = bad {
                    counters.verify_failure();
                    record_malformed_stream(registry);
                    break NetError::MalformedStream { frame, error };
                }
            }
            Message::Done {
                records: sent_records,
                nodes: sent_nodes,
            } => {
                let nodes = hasher.node_count();
                let (object_hash, _) = match hasher.finish() {
                    Ok(h) => h,
                    Err(error) => {
                        counters.verify_failure();
                        record_malformed_stream(registry);
                        return Err(NetError::MalformedStream { frame, error });
                    }
                };
                // Verify FIRST: if frames were removed in flight, the
                // evidence (broken chains, missing records) matters more
                // than the bare count mismatch.
                let stream_digest = verifier.stream_digest().to_vec();
                let verification = verifier.finish(&object_hash);
                if !verification.verified() {
                    counters.verify_failure();
                    return Err(NetError::TamperDetected {
                        frame: None,
                        issues: verification.issues,
                    });
                }
                if sent_records != records || sent_nodes != nodes {
                    return Err(NetError::Protocol("DONE totals disagree with transfer"));
                }
                return Ok(FetchReport {
                    verification,
                    object_hash,
                    records,
                    nodes,
                    offer: conn.offer.clone().unwrap_or_default(),
                    resumed: session.resumed,
                    stream_digest,
                });
            }
            Message::Denial { proof } => {
                break denial_outcome(&proof, oid, keys, cfg.alg, frame, counters, registry)
            }
            Message::Error {
                code,
                retry_after_ms,
                detail,
            } => break remote_error(code, retry_after_ms, detail),
            _ => break NetError::Protocol("unexpected message during transfer"),
        }
    };

    // A retryable interruption after verified records: seal the verifier so
    // the next attempt can prove where this one stopped. Tamper evidence
    // never reaches here retryably, and a tainted verifier refuses to
    // checkpoint anyway.
    if cfg.resume && failure.is_retryable() && records > 0 {
        if let Some(blob) = verifier.checkpoint() {
            session.checkpoint = Some((blob, records));
        }
    }
    Err(failure)
}

/// One batched-verify attempt: stream the object, recompute the object
/// hash, submit `(hash, provenance)` to the batcher, and relay its
/// verdict. Unlike [`fetch_on`] there is no per-frame verification and no
/// checkpointing — the verifier runs once, inside the batcher's collector.
fn fetch_batched_on(
    conn: &mut Connection,
    oid: ObjectId,
    cfg: ClientConfig,
    counters: &Arc<TransferCounters>,
    batcher: &VerifyBatcher,
    registry: Option<&Registry>,
) -> Result<Verification, NetError> {
    if let Some(records) = conn.offered_records(oid) {
        conn.stream
            .set_read_timeout(Some(scaled_read_timeout(cfg.read_timeout, records)))?;
    }
    conn.writer.write_message(&Message::Fetch { oid })?;
    let mut records: Vec<ProvenanceRecord> = Vec::new();
    let mut hasher = DepthStreamHasher::new(cfg.alg);
    let mut seen_data = false;
    loop {
        let frame = conn.reader.frames();
        let msg = match conn.reader.read_message() {
            Ok(Some(m)) => m,
            Ok(None) => return Err(NetError::Interrupted),
            Err(e) => return Err(NetError::Wire(e)),
        };
        match msg {
            Message::Prov { record } => {
                if seen_data {
                    return Err(NetError::Protocol("PROV after DATA"));
                }
                records.push(
                    ProvenanceRecord::from_stored(&record)
                        .map_err(|e| NetError::Wire(WireError::Decode(e)))?,
                );
            }
            Message::Data { entries } => {
                seen_data = true;
                for e in &entries {
                    if let Err(error) = hasher.push(e.depth as usize, e.id, &e.value) {
                        counters.verify_failure();
                        record_malformed_stream(registry);
                        return Err(NetError::MalformedStream { frame, error });
                    }
                }
            }
            Message::Done {
                records: sent_records,
                nodes: sent_nodes,
            } => {
                let nodes = hasher.node_count();
                let (object_hash, _) = match hasher.finish() {
                    Ok(h) => h,
                    Err(error) => {
                        counters.verify_failure();
                        record_malformed_stream(registry);
                        return Err(NetError::MalformedStream { frame, error });
                    }
                };
                if sent_records != records.len() as u64 || sent_nodes != nodes {
                    return Err(NetError::Protocol("DONE totals disagree with transfer"));
                }
                // The verifier expects collect()-order: (object, seqID).
                records.sort_by_key(|r| (r.output_oid, r.seq_id));
                let ticket = batcher.submit(
                    object_hash,
                    ProvenanceObject {
                        target: oid,
                        records,
                    },
                );
                let verification = ticket
                    .wait()
                    .ok_or(NetError::Protocol("verify batcher shut down"))?;
                if !verification.verified() {
                    counters.verify_failure();
                    return Err(NetError::TamperDetected {
                        frame: None,
                        issues: verification.issues,
                    });
                }
                return Ok(verification);
            }
            Message::Denial { .. } => {
                // A batched fetch carries no key directory, so the proof
                // cannot be vouched for here; refuse it rather than treat
                // an unverified claim as an honest not-found. Non-
                // retryable — use fetch_verified for denial-aware misses.
                return Err(NetError::Protocol(
                    "DENIAL on a batched fetch; use fetch_verified to check the proof",
                ));
            }
            Message::Error {
                code,
                retry_after_ms,
                detail,
            } => return Err(remote_error(code, retry_after_ms, detail)),
            _ => return Err(NetError::Protocol("unexpected message during transfer")),
        }
    }
}

/// Counts a structurally malformed DATA stream under the unified evidence
/// schema (`tep_core_evidence_malformed_stream_total`) — the one detection
/// surface with no [`TamperEvidence`] variant of its own.
fn record_malformed_stream(registry: Option<&Registry>) {
    if let Some(reg) = registry {
        EvidenceCounters::new(reg).record(EvidenceKind::MalformedStream);
    }
}

/// Settles a DENIAL frame received in place of the provenance of `oid`.
///
/// A denial is only as good as its proof: the bytes must decode, the
/// proof must be *about* the requested object (a replayed denial for some
/// other absent ID proves nothing), the root signature must verify, and
/// the gap must authenticate under the signed root. A proof that clears
/// every check is an honest not-found ([`NetError::Denied`]); anything
/// less is [`TamperEvidence::ForgedDenial`]. Both are terminal — an
/// honest absence will not appear on retry, and a forged one must not be
/// laundered through one.
fn denial_outcome(
    bytes: &[u8],
    oid: ObjectId,
    keys: &KeyDirectory,
    alg: HashAlgorithm,
    frame: u64,
    counters: &TransferCounters,
    registry: Option<&Registry>,
) -> NetError {
    let forged = || {
        counters.verify_failure();
        if let Some(reg) = registry {
            EvidenceCounters::new(reg).record(EvidenceKind::ForgedDenial);
        }
        NetError::TamperDetected {
            frame: Some(frame),
            issues: vec![TamperEvidence::ForgedDenial { oid }],
        }
    };
    let Ok(denial) = SignedDenial::from_bytes(bytes) else {
        return forged();
    };
    if denial.proof.absent != oid {
        return forged();
    }
    let mut verifier = Verifier::new(keys, alg);
    if let Some(reg) = registry {
        verifier.attach_obs(reg);
    }
    // verify_denial records failing evidence into the registry itself.
    let verification = verifier.verify_denial(&denial);
    if verification.verified() {
        NetError::Denied {
            oid,
            log_records: denial.root.log_records,
        }
    } else {
        counters.verify_failure();
        NetError::TamperDetected {
            frame: Some(frame),
            issues: verification.issues,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_client(policy: RetryPolicy) -> Client {
        let cfg = ClientConfig {
            retry: policy,
            ..ClientConfig::new(HashAlgorithm::Sha256)
        };
        Client::new("127.0.0.1:9".parse().unwrap(), cfg)
    }

    /// The timeout-scaling slope is pinned: base + 2ms per offered record.
    /// The chaos harness relies on the small-object end staying far below
    /// its stall-injection window (350ms base + 12 records = 374ms < 600ms).
    #[test]
    fn read_timeout_scales_linearly_with_offered_records() {
        let base = Duration::from_millis(350);
        assert_eq!(scaled_read_timeout(base, 0), base);
        assert_eq!(scaled_read_timeout(base, 12), Duration::from_millis(374));
        assert_eq!(
            scaled_read_timeout(Duration::from_secs(5), 162),
            Duration::from_millis(5324)
        );
    }

    /// An absurd OFFER (or a hostile one) cannot push the timeout past
    /// base + 20s: the record term saturates at 10 000.
    #[test]
    fn read_timeout_scaling_saturates_at_the_record_cap() {
        let base = Duration::from_millis(350);
        assert_eq!(
            scaled_read_timeout(base, u64::MAX),
            base + Duration::from_secs(20)
        );
        assert_eq!(
            scaled_read_timeout(base, 10_000),
            scaled_read_timeout(base, 1_000_000)
        );
    }

    /// The decorrelated-jitter sequence for the default seed and policy is
    /// pinned: a change here means every deployment's backoff behavior
    /// changed, which should be a deliberate decision, not a side effect.
    #[test]
    fn jitter_sequence_is_pinned_for_default_seed() {
        let policy = RetryPolicy::default();
        let mut c = test_client(policy);
        let mut delay = policy.base;
        let mut seq = Vec::new();
        for _ in 0..8 {
            delay = c.next_delay(delay, policy);
            seq.push(u64::try_from(delay.as_millis()).unwrap());
        }
        assert_eq!(seq, [21, 25, 25, 23, 34, 92, 190, 127]);
        let base = u64::try_from(policy.base.as_millis()).unwrap();
        let cap = u64::try_from(policy.cap.as_millis()).unwrap();
        for &ms in &seq {
            assert!((base..=cap).contains(&ms), "{ms}ms outside [{base}, {cap}]");
        }
    }

    /// `prev * 3` must not overflow for caps near `Duration::MAX`; the
    /// delay stays within `[base, cap]` no matter how extreme the inputs.
    #[test]
    fn jitter_never_overflows_at_extreme_caps() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::MAX,
            deadline: Duration::from_secs(30),
        };
        let mut c = test_client(policy);
        let mut delay = Duration::MAX; // worst-case previous delay
        for _ in 0..64 {
            delay = c.next_delay(delay, policy);
            assert!(delay >= Duration::from_millis(10));
            assert!(delay <= policy.cap);
        }
    }

    /// A server-supplied `Retry-After` hint is clamped to the remaining
    /// wall-clock deadline: one huge (or hostile) hint can no longer park
    /// the client asleep past `RetryPolicy::deadline`.
    #[test]
    fn retry_after_hint_is_clamped_to_the_remaining_deadline() {
        let delay = Duration::from_millis(20);
        let remaining = Duration::from_millis(150);
        // Hint within budget: still floors the jittered delay.
        assert_eq!(
            clamp_retry_wait(delay, Some(Duration::from_millis(90)), remaining),
            Duration::from_millis(90)
        );
        // Oversized hint: clamped to exactly what is left of the deadline.
        assert_eq!(
            clamp_retry_wait(delay, Some(Duration::from_secs(3600)), remaining),
            remaining
        );
        // No hint, but the jittered delay itself outlives the deadline:
        // same clamp applies.
        assert_eq!(
            clamp_retry_wait(Duration::from_secs(10), None, remaining),
            remaining
        );
        // Deadline already spent: the retry wakes immediately and the
        // loop's deadline check surfaces the error.
        assert_eq!(
            clamp_retry_wait(delay, Some(Duration::from_secs(1)), Duration::ZERO),
            Duration::ZERO
        );
        // Plenty of budget: the hintless path is untouched jitter.
        assert_eq!(
            clamp_retry_wait(delay, None, Duration::from_secs(30)),
            delay
        );
    }

    /// `ERR unknown-tenant` is typed and terminal: a client pointed at a
    /// scope that will never admit it fails fast instead of burning its
    /// retry budget the way a `busy` shed (retryable, hinted) would.
    #[test]
    fn unknown_tenant_is_terminal_but_busy_is_retryable() {
        let rejected = NetError::Remote {
            code: ErrorCode::UnknownTenant,
            retry_after: None,
            detail: "tenant t9 is not provisioned here".into(),
        };
        assert!(!rejected.is_retryable());
        assert_eq!(rejected.retry_after(), None);
        let shed = NetError::Remote {
            code: ErrorCode::Busy,
            retry_after: Some(Duration::from_millis(75)),
            detail: "tenant t1 connection quota reached".into(),
        };
        assert!(shed.is_retryable());
    }

    /// A zero/degenerate policy must not panic (empty sample ranges).
    #[test]
    fn jitter_handles_degenerate_policies() {
        let policy = RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            deadline: Duration::ZERO,
        };
        let mut c = test_client(policy);
        let d = c.next_delay(Duration::ZERO, policy);
        assert_eq!(d, Duration::from_millis(1));
    }
}
