//! Raw `poll(2)` readiness polling — the only unsafe code in the crate.
//!
//! The event-loop server needs one primitive the standard library does not
//! expose: "sleep until any of these sockets is readable/writable, or a
//! tick elapses". Rather than pull in `mio`/`tokio` (the workspace is
//! std-only by design), this module declares the POSIX `poll` syscall
//! directly. The unsafe surface is exactly one `extern "C"` call, wrapped
//! in [`poll_fds`] which upholds its contract: the pointer comes from a
//! live `&mut [PollFd]`, the length matches, and `EINTR` is retried so
//! callers never observe spurious interrupt errors.
//!
//! [`PollFd`] is `#[repr(C)]`-identical to `struct pollfd` from
//! `<poll.h>`: `{ int fd; short events; short revents; }` — pinned by a
//! layout test below so a drifting definition fails loudly instead of
//! corrupting the syscall's argument memory.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// `POLLIN`: data is readable (or a peer close is pending — `read` will
/// return 0).
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: the socket can accept writes without blocking.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR`: an error condition (revents only; never requested).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP`: the peer hung up (revents only; never requested).
pub const POLLHUP: i16 = 0x010;
/// `POLLNVAL`: the fd is not open (revents only; never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` interest set, layout-compatible with the C
/// `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT` bitmask).
    pub events: i16,
    /// Returned events, filled in by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// An interest-set entry for `fd` watching `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The kernel reported the fd readable.
    pub fn readable(&self) -> bool {
        self.revents & POLLIN != 0
    }

    /// The kernel reported the fd writable.
    pub fn writable(&self) -> bool {
        self.revents & POLLOUT != 0
    }

    /// The kernel reported an error or invalid-fd condition.
    pub fn error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// The kernel reported the peer hung up.
    pub fn hangup(&self) -> bool {
        self.revents & POLLHUP != 0
    }

    /// Any event at all (readiness, error, or hangup).
    pub fn any(&self) -> bool {
        self.revents != 0
    }
}

// `nfds_t` is `unsigned long` on Linux, `unsigned int` on most BSDs.
#[cfg(target_os = "linux")]
type NfdsT = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// Blocks until at least one fd in `fds` has a pending event or `timeout`
/// elapses; returns how many entries have nonzero `revents` (0 on
/// timeout). `EINTR` is retried internally. Timeouts longer than `i32::MAX`
/// milliseconds are clamped (about 24 days — effectively unbounded for a
/// server tick).
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as std::ffi::c_int;
    loop {
        // SAFETY: `fds` is a live, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the pointer and length
        // describe exactly that allocation for the duration of the call,
        // and the kernel only writes within it (the `revents` fields).
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn pollfd_layout_matches_struct_pollfd() {
        // int + short + short, no padding: the syscall reads this memory
        // as the C struct, so the layout is load-bearing.
        assert_eq!(std::mem::size_of::<PollFd>(), 8);
        assert_eq!(std::mem::align_of::<PollFd>(), 4);
    }

    #[test]
    fn connected_socket_reports_writable() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Duration::from_secs(5)).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn pending_data_reports_readable() {
        let (mut a, b) = socket_pair();
        a.write_all(b"ping").expect("write");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Duration::from_secs(5)).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].error());
    }

    #[test]
    fn idle_socket_times_out_with_zero_events() {
        let (_a, b) = socket_pair();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_fds(&mut fds, Duration::from_millis(20)).expect("poll");
        assert_eq!(n, 0);
        assert!(!fds[0].any());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn peer_close_reports_readable_eof() {
        let (a, b) = socket_pair();
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Duration::from_secs(5)).expect("poll");
        assert_eq!(n, 1);
        // A closed peer is signalled as readable (read returns 0) and/or
        // HUP — either way the loop wakes and discovers the EOF.
        assert!(fds[0].readable() || fds[0].hangup());
    }

    #[test]
    fn empty_interest_set_just_sleeps() {
        let mut fds: [PollFd; 0] = [];
        let n = poll_fds(&mut fds, Duration::from_millis(5)).expect("poll");
        assert_eq!(n, 0);
    }
}
