//! Deterministic fault injection for the transport — the network twin of
//! `tep_storage::vfs::FaultVfs`.
//!
//! Two layers, mirroring how faults actually strike:
//!
//! * [`FaultStream`] wraps any `Read + Write` byte stream and fires one
//!   scheduled fault at the Nth I/O operation: a connection reset, a clean
//!   EOF, a read timeout, a seeded bit flip, or a short read/write. Because
//!   `wire::FrameReader`/`FrameWriter` are generic over the stream, every
//!   codec path can be crashed at every byte boundary in a plain unit test
//!   — no sockets, no threads, no timing.
//! * [`FaultListener`] is a TCP proxy (the non-malicious sibling of
//!   `proxy::TamperProxy`): it forwards the client→server direction
//!   verbatim and relays server→client traffic *frame-aligned*, firing one
//!   scheduled [`FaultKind`] at downstream frame N — cut at a boundary,
//!   cut mid-frame, flip a bit (without fixing the CRC, modeling line
//!   noise rather than an attacker), stall past the client's read timeout,
//!   or drop the connection. With `once` set the fault fires on one
//!   connection only, so a retrying client's next attempt sees a healthy
//!   path — exactly the shape of a transient network failure.
//!
//! Everything is seeded and deterministic: the same
//! ([`FaultPlan`], byte stream) pair produces the same torn prefix, the
//! same flipped bit, the same outcome — so a chaos run that fails can be
//! replayed exactly from its seed.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// SplitMix64 — the same tiny deterministic generator `FaultVfs` uses, so
/// net and storage chaos schedules are seeded the same way.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// FaultStream: byte-level faults for unit-testing the codec
// ---------------------------------------------------------------------------

/// The fault a [`FaultStream`] fires at its scheduled operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFault {
    /// Fail the op with `io::ErrorKind::ConnectionReset`.
    Reset,
    /// Read returns 0 bytes (EOF); writes report `BrokenPipe`.
    Eof,
    /// Fail the op with `io::ErrorKind::TimedOut` — what a socket read
    /// returns when the peer stalls past the read timeout.
    TimedOut,
    /// Flip one seeded bit in the bytes the op delivers (reads only;
    /// writes pass through).
    BitFlip,
    /// Deliver only a seeded 1..=len prefix of the op's buffer. Callers
    /// using `read_exact`/`write_all` must survive this without
    /// corruption.
    Short,
}

/// When and how a [`FaultStream`] misbehaves.
#[derive(Clone, Copy, Debug)]
pub struct StreamFaultPlan {
    /// The fault to fire.
    pub fault: StreamFault,
    /// The 0-based I/O operation (reads and writes share one counter) at
    /// which to fire. `Short` keeps firing from this op onward (a slow
    /// link is not a one-shot event); the others fire once.
    pub at_op: u64,
    /// Seed for the fault's randomness (bit position, prefix length).
    pub seed: u64,
}

/// A `Read + Write` wrapper that injects one deterministic, scheduled
/// fault. See the module docs.
pub struct FaultStream<S> {
    inner: S,
    plan: StreamFaultPlan,
    rng: u64,
    op: u64,
    fired: bool,
}

impl<S> FaultStream<S> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: S, plan: StreamFaultPlan) -> Self {
        FaultStream {
            inner,
            plan,
            rng: plan.seed ^ 0x243F_6A88_85A3_08D3,
            op: 0,
            fired: false,
        }
    }

    /// Whether the scheduled fault has fired yet.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The wrapped stream back (for inspecting what was actually written).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// True if this op is the scheduled one (or past it, for `Short`).
    fn due(&self) -> bool {
        if self.plan.fault == StreamFault::Short {
            self.op >= self.plan.at_op
        } else {
            self.op == self.plan.at_op && !self.fired
        }
    }
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let due = self.due();
        self.op += 1;
        if !due {
            return self.inner.read(buf);
        }
        self.fired = true;
        match self.plan.fault {
            StreamFault::Reset => Err(io::ErrorKind::ConnectionReset.into()),
            StreamFault::Eof => Ok(0),
            StreamFault::TimedOut => Err(io::ErrorKind::TimedOut.into()),
            StreamFault::BitFlip => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    let bit = splitmix64(&mut self.rng) as usize % (n * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(n)
            }
            StreamFault::Short => {
                if buf.is_empty() {
                    return self.inner.read(buf);
                }
                let take = 1 + splitmix64(&mut self.rng) as usize % buf.len();
                self.inner.read(&mut buf[..take])
            }
        }
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let due = self.due();
        self.op += 1;
        if !due {
            return self.inner.write(buf);
        }
        self.fired = true;
        match self.plan.fault {
            StreamFault::Reset => Err(io::ErrorKind::ConnectionReset.into()),
            StreamFault::Eof => Err(io::ErrorKind::BrokenPipe.into()),
            StreamFault::TimedOut => Err(io::ErrorKind::TimedOut.into()),
            StreamFault::BitFlip => self.inner.write(buf),
            StreamFault::Short => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                let take = 1 + splitmix64(&mut self.rng) as usize % buf.len();
                self.inner.write(&buf[..take])
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// FaultListener: frame-level faults on a live TCP path
// ---------------------------------------------------------------------------

/// The fault a [`FaultListener`] fires at its scheduled downstream frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Close the connection cleanly *before* forwarding frame N — the
    /// client sees EOF at a frame boundary (a resumable interruption).
    CutBoundary,
    /// Forward a seeded non-empty proper prefix of frame N's bytes, then
    /// close — the client sees a torn frame (`Truncated`).
    CutMidFrame,
    /// Flip one seeded bit of frame N (header or payload) without fixing
    /// the CRC — line noise, caught as `BadCrc`/`Oversized`.
    BitFlip,
    /// Sleep this long before forwarding frame N — stalls a client whose
    /// read timeout is shorter.
    Stall(Duration),
    /// Drop both directions abruptly before frame N, without the
    /// courtesy of draining or half-close.
    Reset,
}

/// When and how a [`FaultListener`] misbehaves.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// The fault to fire.
    pub kind: FaultKind,
    /// The 0-based server→client frame index to fire at (HELLO = 0,
    /// OFFER = 1, first transfer frame = 2).
    pub frame: u64,
    /// Seed for the fault's randomness (torn prefix length, bit position).
    pub seed: u64,
    /// Fire on the first connection that reaches the frame, then relay
    /// every later connection verbatim — so a retrying client recovers.
    /// When false the fault fires on every connection.
    pub once: bool,
}

/// A fault-injecting TCP proxy; dropping it stops the listener.
pub struct FaultListener {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    fired: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FaultListener {
    /// Spawns a proxy on an ephemeral localhost port relaying to
    /// `upstream`, injecting per `plan`. Connections are handled one at a
    /// time (fault tests are sequential by nature).
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> io::Result<FaultListener> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicU64::new(0));
        let flag = Arc::clone(&shutdown);
        let count = Arc::clone(&fired);
        let accept_thread = thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        // Relay errors (peer hangups, timeouts) are the
                        // point of the exercise, not failures.
                        let _ = relay(client, upstream, plan, &count);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(2)),
                }
            }
        });
        Ok(FaultListener {
            addr,
            shutdown,
            fired,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many times the scheduled fault has fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// Stops the listener and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultListener {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Relays one client connection, frame-aligned downstream, firing the
/// plan's fault at its scheduled frame. Returns when either side closes.
fn relay(
    client: TcpStream,
    upstream: SocketAddr,
    plan: FaultPlan,
    fired: &AtomicU64,
) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    client.set_read_timeout(Some(Duration::from_secs(10)))?;
    server.set_read_timeout(Some(Duration::from_secs(10)))?;

    // Client→server: verbatim byte copy on its own thread.
    let mut c2s_src = client.try_clone()?;
    let mut c2s_dst = server.try_clone()?;
    let uplink = thread::spawn(move || {
        let mut buf = [0u8; 4096];
        loop {
            match c2s_src.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if c2s_dst.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = c2s_dst.shutdown(std::net::Shutdown::Write);
    });

    // Server→client: raw frame-aligned copy. The relay reads each frame's
    // 8-byte header (len ‖ crc) and payload off the upstream socket, so it
    // always knows where boundaries are — no decoding, no re-framing, and
    // a bit flip here reaches the client byte-for-byte.
    let mut src = server.try_clone()?;
    let mut dst = client.try_clone()?;
    let mut seed = plan.seed;
    let mut frame = 0u64;
    let armed = !plan.once || fired.load(Ordering::SeqCst) == 0;
    loop {
        let mut header = [0u8; 8];
        match read_full(&mut src, &mut header) {
            Ok(true) => {}
            Ok(false) | Err(_) => break, // upstream closed or died
        }
        let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if len > crate::wire::MAX_FRAME {
            break; // upstream is not speaking the protocol; stop relaying
        }
        let mut bytes = Vec::with_capacity(8 + len);
        bytes.extend_from_slice(&header);
        bytes.resize(8 + len, 0);
        if !matches!(read_full(&mut src, &mut bytes[8..]), Ok(true)) {
            break;
        }

        if armed && frame == plan.frame {
            fired.fetch_add(1, Ordering::SeqCst);
            match plan.kind {
                FaultKind::CutBoundary => {
                    let _ = client.shutdown(std::net::Shutdown::Both);
                    break;
                }
                FaultKind::CutMidFrame => {
                    // A non-empty proper prefix: at least the first byte,
                    // never the whole frame.
                    let keep = 1 + splitmix64(&mut seed) as usize % (bytes.len() - 1);
                    let _ = dst.write_all(&bytes[..keep]);
                    let _ = client.shutdown(std::net::Shutdown::Both);
                    break;
                }
                FaultKind::BitFlip => {
                    let bit = splitmix64(&mut seed) as usize % (bytes.len() * 8);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                    if dst.write_all(&bytes).is_err() {
                        break;
                    }
                }
                FaultKind::Stall(d) => {
                    thread::sleep(d);
                    if dst.write_all(&bytes).is_err() {
                        break;
                    }
                }
                FaultKind::Reset => {
                    let _ = client.shutdown(std::net::Shutdown::Both);
                    let _ = server.shutdown(std::net::Shutdown::Both);
                    break;
                }
            }
        } else if dst.write_all(&bytes).is_err() {
            break;
        }
        frame += 1;
    }
    let _ = client.shutdown(std::net::Shutdown::Write);
    let _ = uplink.join();
    Ok(())
}

/// `read_exact` that reports a clean EOF *before any byte* as `Ok(false)`
/// instead of an error (EOF mid-buffer is still an error).
fn read_full<R: Read>(src: &mut R, buf: &mut [u8]) -> Result<bool, io::Error> {
    let mut filled = 0;
    while filled < buf.len() {
        match src.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{FrameReader, FrameWriter, Message, WireError};
    use std::sync::Arc;
    use tep_core::metrics::TransferCounters;
    use tep_model::ObjectId;

    fn counters() -> Arc<TransferCounters> {
        Arc::new(TransferCounters::new())
    }

    /// A few framed messages as raw bytes.
    fn framed(n: u64) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf, counters());
        for i in 0..n {
            w.write_message(&Message::Fetch { oid: ObjectId(i) })
                .unwrap();
        }
        buf
    }

    fn reader_over(bytes: &[u8], plan: StreamFaultPlan) -> FrameReader<FaultStream<&[u8]>> {
        FrameReader::new(FaultStream::new(bytes, plan), counters())
    }

    #[test]
    fn reset_surfaces_as_io_error_not_panic() {
        let bytes = framed(3);
        let mut r = reader_over(
            &bytes,
            StreamFaultPlan {
                fault: StreamFault::Reset,
                at_op: 2,
                seed: 1,
            },
        );
        let mut io_errors = 0;
        for _ in 0..4 {
            match r.read_message() {
                Ok(Some(_)) | Ok(None) => {}
                Err(WireError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                    io_errors += 1;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(io_errors, 1, "the scheduled reset never fired");
    }

    #[test]
    fn timeout_fault_models_a_stalled_peer() {
        let bytes = framed(2);
        let mut r = reader_over(
            &bytes,
            StreamFaultPlan {
                fault: StreamFault::TimedOut,
                at_op: 0,
                seed: 9,
            },
        );
        match r.read_message() {
            Err(WireError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::TimedOut),
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_truncated_eof_between_frames_is_clean() {
        // Fire EOF at the very first read: clean end-of-stream.
        let bytes = framed(1);
        let mut r = reader_over(
            &bytes,
            StreamFaultPlan {
                fault: StreamFault::Eof,
                at_op: 0,
                seed: 3,
            },
        );
        assert!(matches!(r.read_message(), Ok(None)));

        // Fire EOF inside the first frame's payload read: truncation.
        let mut r = reader_over(
            &bytes,
            StreamFaultPlan {
                fault: StreamFault::Eof,
                at_op: 1,
                seed: 3,
            },
        );
        assert!(matches!(r.read_message(), Err(WireError::Truncated)));
    }

    /// Every seed's bit flip is caught — by the CRC, the length cap, or
    /// the body decoder — and none of them panics or yields the original
    /// message as if nothing happened.
    #[test]
    fn every_seeded_bit_flip_is_caught() {
        let bytes = framed(1);
        for seed in 0..64u64 {
            for at_op in 0..2u64 {
                let mut r = reader_over(
                    &bytes,
                    StreamFaultPlan {
                        fault: StreamFault::BitFlip,
                        at_op,
                        seed,
                    },
                );
                match r.read_message() {
                    Ok(Some(Message::Fetch { oid })) => {
                        panic!("seed {seed} op {at_op}: flipped frame decoded as FETCH {oid}")
                    }
                    Ok(Some(_)) => panic!("seed {seed}: flipped frame decoded cleanly"),
                    Ok(None) | Err(_) => {} // caught (or flip landed past the stream)
                }
            }
        }
    }

    /// Short reads must be invisible to the framing layer: `read_exact`
    /// loops until the buffer fills, so every message still arrives
    /// intact, for every seed.
    #[test]
    fn short_reads_never_corrupt_the_stream() {
        let bytes = framed(5);
        for seed in 0..32u64 {
            let mut r = reader_over(
                &bytes,
                StreamFaultPlan {
                    fault: StreamFault::Short,
                    at_op: 0,
                    seed,
                },
            );
            let mut got = 0u64;
            while let Some(msg) = r.read_message().unwrap() {
                assert_eq!(msg, Message::Fetch { oid: ObjectId(got) });
                got += 1;
            }
            assert_eq!(got, 5, "seed {seed} lost messages");
        }
    }

    /// Short writes likewise: `write_all` on the other side of the wrapper
    /// must still deliver byte-identical frames.
    #[test]
    fn short_writes_never_corrupt_the_stream() {
        for seed in 0..32u64 {
            let mut fs = FaultStream::new(
                Vec::new(),
                StreamFaultPlan {
                    fault: StreamFault::Short,
                    at_op: 0,
                    seed,
                },
            );
            {
                let mut w = FrameWriter::new(&mut fs, counters());
                for i in 0..4u64 {
                    w.write_message(&Message::Fetch { oid: ObjectId(i) })
                        .unwrap();
                }
            }
            let written = fs.into_inner();
            assert_eq!(written, framed(4), "seed {seed} corrupted the bytes");
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let bytes = framed(3);
        let plan = StreamFaultPlan {
            fault: StreamFault::BitFlip,
            at_op: 1,
            seed: 2009,
        };
        let outcome = |plan| {
            let mut r = reader_over(&bytes, plan);
            let mut log = Vec::new();
            loop {
                match r.read_message() {
                    Ok(Some(m)) => log.push(format!("{m:?}")),
                    Ok(None) => break log.push("eof".into()),
                    Err(e) => break log.push(format!("err:{e}")),
                }
            }
            log
        };
        assert_eq!(outcome(plan), outcome(plan));
    }
}
