//! # tep-net — provenance exchange over TCP
//!
//! The paper's threat model (§2.2) is about provenance *in motion*: "data
//! and its provenance are passed from participant to participant", and a
//! malicious participant — or anyone on the path — may alter, truncate, or
//! forge the history before it reaches the recipient. This crate is the
//! transport for that hand-off:
//!
//! * [`wire`] — a deterministic, length-prefixed binary frame format that
//!   reuses the storage layer's CRC framing and the model's canonical value
//!   encoding, hardened against hostile input (allocation caps, strict
//!   decoding).
//! * [`server`] — a std-only readiness-driven event-loop server
//!   (nonblocking sockets multiplexed over raw `poll(2)` via [`sys`],
//!   per-connection state machine, vectored writes, bounded concurrency,
//!   graceful shutdown) serving objects out of a
//!   [`tep_storage::ProvenanceDb`] + data forest.
//! * [`client`] — a retrying client (decorrelated-jitter backoff) that
//!   performs **streaming verify-on-receive**: every provenance record is
//!   checked the moment its frame arrives, the object hash is recomputed
//!   from the delivered data, and the transfer is rejected at the first
//!   bad frame — with the frame number in the report.
//! * [`proxy`] — a man-in-the-middle harness that tampers with frames *in
//!   flight* (recomputing the CRC, as a real attacker would) so tests can
//!   demonstrate the R1–R5 guarantees hold on the wire.
//! * [`replica`] — primary→replica replication: a replica tails the
//!   primary's record log with verify-on-receive (resuming crash-safe
//!   from durable sealed-verifier checkpoints), runs periodic Merkle
//!   anti-entropy over the object-id space to locate divergence in
//!   O(log n) round trips, and fans verified reads out across replicas.
//! * [`fault`] — deterministic seeded fault injection (the network twin of
//!   `tep_storage::vfs::FaultVfs`): [`fault::FaultStream`] crashes the
//!   codec at any byte, [`fault::FaultListener`] crashes a live TCP path
//!   at any frame — resets, torn frames, bit flips, stalls.
//!
//! Beyond full transfers, QUERY/QRESULT frames serve *verifiable query
//! answers*: the server runs a `tep_query::QueryEngine` over its record
//! log and ships each answer as a `SliceProof`; `Client::query` re-runs
//! the verification over just that slice (`Verifier::verify_slice`) and
//! recomputes the answer before accepting it — a tampered or incomplete
//! slice is rejected with attributed evidence, never retried.
//!
//! Transfers are *resumable*: a client cut after k verified records
//! reconnects with a RESUME frame proving its position via a rolling
//! record-stream digest, and continues verify-on-receive from k+1. A
//! server that cannot (or will not honestly) confirm the position is
//! rejected as `ResumeMismatch` tamper evidence.
//!
//! Per-connection traffic and verification counters come from
//! [`tep_core::metrics::TransferCounters`].

#![warn(missing_docs)]
// Unsafe is denied crate-wide; the single exception is the `sys` module,
// which wraps the raw `poll(2)` syscall behind a safe API and opts in with
// a scoped `#![allow(unsafe_code)]` + SAFETY comment.
#![deny(unsafe_code)]

pub mod client;
pub mod fault;
pub mod proxy;
pub mod replica;
pub mod server;
pub mod sys;
pub mod wire;

pub use client::{
    scaled_read_timeout, Client, ClientConfig, FetchReport, NetError, QueryReport, RangeReport,
    RetryPolicy,
};
pub use fault::{FaultKind, FaultListener, FaultPlan, FaultStream, StreamFault, StreamFaultPlan};
pub use proxy::{ProxyAction, TamperProxy};
pub use replica::{AeReport, AeStatus, CatchUpReport, FanoutFetcher, Replica, ReplicaConfig};
pub use server::{
    serve, serve_tenants, serve_with_registry, Catalog, ServerConfig, ServerHandle, TenantSpec,
};
pub use wire::{DataEntry, ErrorCode, Message, OfferEntry, WireError, MAX_FRAME, WIRE_VERSION};
