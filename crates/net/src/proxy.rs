//! A man-in-the-middle proxy for wire-attack testing.
//!
//! [`TamperProxy`] sits between a client and a server, forwards the
//! client→server direction verbatim, and *decodes* every server→client
//! message, hands it to a mutator, and re-encodes the (possibly replaced)
//! message **with a valid frame CRC**. This models the paper's §2.2 threat:
//! the CRC is accidental-corruption protection, so a deliberate attacker
//! simply recomputes it — only the cryptographic provenance checksums stand
//! between a tampered transfer and acceptance. Tests use this to assert
//! that every [`tep_core::attack::Tamper`] applied *in flight* is caught by
//! the client's streaming verifier.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use tep_core::metrics::TransferCounters;

use crate::wire::{FrameReader, FrameWriter, Message};

/// What the mutator wants done with one server→client message.
pub enum ProxyAction {
    /// Pass the message through unchanged.
    Forward,
    /// Substitute a different message (re-framed with a valid CRC).
    Replace(Message),
    /// Silently drop the message (models record removal / truncation).
    Drop,
}

/// The mutator: called with the server→client frame index (0-based,
/// counting every message including HELLO/OFFER) and the decoded message.
pub type Mutator = Box<dyn FnMut(u64, &Message) -> ProxyAction + Send>;

/// A running man-in-the-middle proxy; dropping it stops the listener.
pub struct TamperProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TamperProxy {
    /// Spawns a proxy on an ephemeral localhost port relaying to
    /// `upstream`. Connections are handled one at a time (attack tests are
    /// sequential by nature).
    pub fn spawn(upstream: SocketAddr, mut mutator: Mutator) -> io::Result<TamperProxy> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        if let Err(e) = relay(client, upstream, &mut mutator) {
                            // Relay errors (peer hangups, timeouts) are part
                            // of normal attack-test operation.
                            let _ = e;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(2)),
                }
            }
        });
        Ok(TamperProxy {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TamperProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Relays one client connection through the mutator.
fn relay(client: TcpStream, upstream: SocketAddr, mutator: &mut Mutator) -> io::Result<()> {
    let server = TcpStream::connect(upstream)?;
    client.set_read_timeout(Some(Duration::from_secs(10)))?;
    server.set_read_timeout(Some(Duration::from_secs(10)))?;

    // Client→server: verbatim byte copy on its own thread.
    let mut c2s_src = client.try_clone()?;
    let mut c2s_dst = server.try_clone()?;
    let uplink = thread::spawn(move || {
        let mut buf = [0u8; 4096];
        loop {
            match c2s_src.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if c2s_dst.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        }
        let _ = c2s_dst.shutdown(std::net::Shutdown::Write);
    });

    // Server→client: decode, mutate, re-frame (fresh, valid CRC).
    let scratch = Arc::new(TransferCounters::new());
    let mut reader = FrameReader::new(server, Arc::clone(&scratch));
    let mut writer = FrameWriter::new(client.try_clone()?, scratch);
    let mut frame = 0u64;
    while let Ok(Some(msg)) = reader.read_message() {
        let action = mutator(frame, &msg);
        frame += 1;
        let result = match action {
            ProxyAction::Forward => writer.write_message(&msg),
            ProxyAction::Replace(replacement) => writer.write_message(&replacement),
            ProxyAction::Drop => continue,
        };
        if result.is_err() {
            break;
        }
    }
    let _ = client.shutdown(std::net::Shutdown::Write);
    let _ = uplink.join();
    Ok(())
}
