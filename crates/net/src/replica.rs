//! Primary→replica replication: verified log tailing plus Merkle
//! anti-entropy.
//!
//! A replica is a *recipient* in the paper's threat model (§2.2) that
//! happens to keep what it receives: it tails the primary's record log
//! over the ordinary FETCH/RESUME wire protocol, verifying every record
//! on receipt exactly as [`Client::fetch_verified`](crate::Client) does,
//! and persists what it verified into its own durable
//! [`ProvenanceDb`]. Nothing the primary says is trusted:
//!
//! * **Catch-up** ([`Replica::catch_up`]) streams each offered object,
//!   resuming from a sealed [`StreamingVerifier`] checkpoint persisted
//!   through the storage [`Vfs`] seam ([`CheckpointStore`]) — a power
//!   cycle mid-catch-up resumes from the last *durable, verified* offset
//!   with a RESUME proof-of-position, never re-trusting records it
//!   already checked and never claiming records it cannot prove.
//! * **Reconcile-by-content**: an arriving record that is byte-identical
//!   to a local one is re-verified and skipped; one that *differs* from
//!   verified local state is [`TamperEvidence::ReplicaDivergence`] — the
//!   replica never overwrites verified history to "converge".
//! * **Anti-entropy** ([`Replica::anti_entropy`]) exchanges Merkle roots
//!   over the object-id space ([`tep_core::merkle`]) and descends only
//!   into mismatching subtrees, locating a divergent object in O(log n)
//!   round trips. Missing history is repaired by a fresh verified fetch;
//!   conflicting history yields the same attributed evidence pipeline as
//!   a wire attacker; a peer whose tree nodes fail self-authentication
//!   is [`TamperEvidence::ForgedRoot`].
//!
//! Read scaling rides on the same machinery: [`FanoutFetcher`] spreads
//! `fetch_verified` calls round-robin across replicas, failing over on
//! *retryable* errors only — tamper evidence from any replica is
//! terminal and is never masked by trying a different one.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use tep_core::denial::SignedRoot;
use tep_core::merkle::{
    locate_divergence, shard_tree_of, AeError, AeNodeInfo, AeOracle, AeOutcome, AeSummary,
};
use tep_core::metrics::TransferCounters;
use tep_core::provenance::collect;
use tep_core::streaming::{DepthStreamHasher, RecordStreamDigest};
use tep_core::verify::{EvidenceCounters, EvidenceKind, StreamingVerifier, TamperEvidence};
use tep_core::ProvenanceRecord;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::KeyDirectory;
use tep_model::{ObjectId, TenantId};
use tep_obs::{names, Counter, Histogram, Registry};
use tep_storage::{CheckpointStore, ProvenanceDb, Vfs};

use crate::client::{remote_error, resume_mismatch, scaled_read_timeout, NetError};
use crate::wire::{
    ErrorCode, FrameReader, FrameWriter, Message, OfferEntry, WireError, AE_SUMMARY_LEVEL,
    WIRE_VERSION,
};
use crate::{Client, ClientConfig};

/// Tuning for one replica.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaConfig {
    /// Hash algorithm (must match the primary's HELLO).
    pub alg: HashAlgorithm,
    /// Per-read socket timeout (rescaled per transfer like the client's).
    pub read_timeout: Duration,
    /// Records per durability batch: after this many *new* records the
    /// replica fsyncs its log and seals a fresh verifier checkpoint, so a
    /// crash loses at most one batch of (already verified) progress.
    pub batch: u64,
    /// Upper bound on anti-entropy locate/repair passes before
    /// [`Replica::anti_entropy`] gives up (defends against a primary that
    /// manufactures endless fresh divergence).
    pub max_ae_passes: u64,
}

impl ReplicaConfig {
    /// Defaults for `alg`.
    pub fn new(alg: HashAlgorithm) -> Self {
        ReplicaConfig {
            alg,
            read_timeout: Duration::from_secs(5),
            batch: 32,
            max_ae_passes: 64,
        }
    }
}

/// What one [`Replica::catch_up`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatchUpReport {
    /// Offered objects synchronized.
    pub objects: u64,
    /// Records newly verified, appended, and fsynced.
    pub new_records: u64,
    /// Records re-verified but already present byte-identical (skipped).
    pub reverified: u64,
    /// Objects whose transfer resumed from a durable checkpoint.
    pub resumed: u64,
}

impl CatchUpReport {
    fn absorb(&mut self, other: CatchUpReport) {
        self.objects += other.objects;
        self.new_records += other.new_records;
        self.reverified += other.reverified;
        self.resumed += other.resumed;
    }
}

/// Terminal state of one [`Replica::anti_entropy`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AeStatus {
    /// Local and remote shard roots agree: record-digest identical.
    Converged,
    /// The replica holds *more* objects than the primary — benign from
    /// the replica's side (it never discards verified state), so the run
    /// stops without evidence and without "repair".
    PrimaryBehind {
        /// Local object count.
        local: u64,
        /// Remote object count.
        remote: u64,
    },
}

/// What one [`Replica::anti_entropy`] run found and fixed.
#[derive(Clone, Debug)]
pub struct AeReport {
    /// How the run ended.
    pub status: AeStatus,
    /// Locate/repair passes (1 for an already-converged pair).
    pub passes: u64,
    /// Total anti-entropy round trips across all passes.
    pub rounds: u64,
    /// Objects whose missing history was repaired by a verified re-fetch.
    pub repaired: Vec<ObjectId>,
}

/// Replication metric handles (`tep_net_repl_*`).
struct ReplObs {
    catchup_records: Counter,
    checkpoint_resumes: Counter,
    ae_rounds: Counter,
    converged: Counter,
    divergence_depth: Histogram,
}

impl ReplObs {
    fn new(registry: &Registry) -> Self {
        registry.gauge(names::NET_REPL_ROLE).set(1);
        ReplObs {
            catchup_records: registry.counter(names::NET_REPL_CATCHUP_RECORDS),
            checkpoint_resumes: registry.counter(names::NET_REPL_CHECKPOINT_RESUMES),
            ae_rounds: registry.counter(names::NET_REPL_ANTI_ENTROPY_ROUNDS),
            converged: registry.counter(names::NET_REPL_CONVERGED),
            divergence_depth: registry
                .histogram(names::NET_REPL_DIVERGENCE_DEPTH, &[0, 1, 2, 4, 8, 16, 32]),
        }
    }
}

/// A tamper-evident replica of one primary.
pub struct Replica {
    primary: SocketAddr,
    cfg: ReplicaConfig,
    /// The replica's own record store (durable through the same `vfs` in
    /// crash tests).
    db: Arc<ProvenanceDb>,
    /// Filesystem seam for checkpoint durability.
    vfs: Arc<dyn Vfs>,
    /// Directory holding one sealed checkpoint file per object.
    ckpt_dir: PathBuf,
    counters: Arc<TransferCounters>,
    registry: Option<Registry>,
    obs: Option<ReplObs>,
    /// Highest `log_records` attested by a verified signed shard root from
    /// the primary. Monotonic: a later root claiming *fewer* cumulative
    /// log records means the primary rolled back to a pre-compaction
    /// state — [`TamperEvidence::CheckpointMismatch`].
    root_highwater: Mutex<u64>,
}

impl Replica {
    /// A replica of the primary at `primary`, persisting records into
    /// `db` and catch-up checkpoints under `ckpt_dir` through `vfs`.
    pub fn new(
        primary: SocketAddr,
        cfg: ReplicaConfig,
        db: Arc<ProvenanceDb>,
        vfs: Arc<dyn Vfs>,
        ckpt_dir: PathBuf,
    ) -> Self {
        Replica {
            primary,
            cfg,
            db,
            vfs,
            ckpt_dir,
            counters: Arc::new(TransferCounters::new()),
            registry: None,
            obs: None,
            root_highwater: Mutex::new(0),
        }
    }

    /// The highest cumulative `log_records` a verified signed root from
    /// the primary has attested so far (0 before any signed summary).
    pub fn pinned_log_records(&self) -> u64 {
        *self
            .root_highwater
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Attaches metric instrumentation: traffic mirrors under `tep_net_*`,
    /// replication progress under `tep_net_repl_*` (and the role gauge is
    /// set to 1 = replica), evidence under `tep_core_evidence_*`.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.counters = Arc::new(TransferCounters::observed(registry));
        self.obs = Some(ReplObs::new(registry));
        self.registry = Some(registry.clone());
    }

    /// The replica's record store.
    pub fn db(&self) -> &Arc<ProvenanceDb> {
        &self.db
    }

    /// Transfer counters accumulated so far.
    pub fn counters(&self) -> tep_core::metrics::TransferSnapshot {
        self.counters.snapshot()
    }

    /// Tails the primary: streams every offered object with
    /// verify-on-receive, resuming each from its durable checkpoint.
    /// New records are appended and fsynced *before* the checkpoint that
    /// covers them is sealed, so the persisted verified offset never
    /// exceeds the durable record count. Evidence aborts immediately with
    /// the same attributed [`NetError::TamperDetected`] a wire attacker
    /// would earn; local verified state is left untouched.
    pub fn catch_up(&self, keys: &KeyDirectory) -> Result<CatchUpReport, NetError> {
        let mut conn = self.dial()?;
        let offer = conn.offer.clone();
        let mut local = self.local_index();
        let mut report = CatchUpReport::default();
        for entry in &offer {
            let one = self.sync_object(&mut conn, entry, keys, &mut local)?;
            report.absorb(one);
            report.objects += 1;
        }
        Ok(report)
    }

    /// One anti-entropy run: exchange shard summaries, descend into
    /// mismatching subtrees, and repair (by verified re-fetch) or attribute
    /// (as evidence) every located divergence, looping until the trees
    /// converge or the primary is found to be behind. A node that fails
    /// self-authentication, or conflicting verified history, is terminal
    /// tamper evidence — never "repaired".
    pub fn anti_entropy(&self, keys: &KeyDirectory) -> Result<AeReport, NetError> {
        let mut report = AeReport {
            status: AeStatus::Converged,
            passes: 0,
            rounds: 0,
            repaired: Vec::new(),
        };
        loop {
            report.passes += 1;
            if report.passes > self.cfg.max_ae_passes {
                return Err(NetError::Protocol("anti-entropy failed to converge"));
            }
            let local = shard_tree_of(self.cfg.alg, &self.db);
            let mut conn = self.dial()?;
            let mut oracle = WireOracle {
                conn: &mut conn,
                summary_root: None,
            };
            let outcome = match locate_divergence(&local, &mut oracle) {
                Ok(o) => o,
                Err(AeError::Transport(_)) => return Err(NetError::Interrupted),
                Err(AeError::Protocol(_)) => {
                    return Err(NetError::Protocol("anti-entropy protocol violation"))
                }
            };
            // Validate and pin the signed root before acting on the
            // outcome: a stale or forged root poisons everything the
            // descent concluded.
            if let Some((bytes, hash, leaf_count)) = oracle.summary_root.take() {
                self.pin_signed_root(keys, &bytes, &hash, leaf_count)?;
            }
            match outcome {
                AeOutcome::Converged { rounds } => {
                    report.rounds += rounds;
                    if let Some(obs) = &self.obs {
                        obs.ae_rounds.add(rounds);
                        obs.converged.inc();
                    }
                    report.status = AeStatus::Converged;
                    return Ok(report);
                }
                AeOutcome::CountMismatch {
                    local: l,
                    remote: r,
                    rounds,
                } => {
                    report.rounds += rounds;
                    if let Some(obs) = &self.obs {
                        obs.ae_rounds.add(rounds);
                    }
                    if l < r {
                        // Benign lag: whole objects are missing locally.
                        drop(conn);
                        self.catch_up(keys)?;
                    } else {
                        report.status = AeStatus::PrimaryBehind {
                            local: l,
                            remote: r,
                        };
                        return Ok(report);
                    }
                }
                AeOutcome::Diverged {
                    oid,
                    remote_oid,
                    rounds,
                    depth,
                    ..
                } => {
                    report.rounds += rounds;
                    if let Some(obs) = &self.obs {
                        obs.ae_rounds.add(rounds);
                        obs.divergence_depth.observe(u64::from(depth));
                    }
                    drop(conn);
                    // Equal counts but different object sets: the leaf pair
                    // names two objects; repair whichever the primary
                    // offers, and let the next pass re-compare.
                    let target = remote_oid.unwrap_or(oid);
                    self.repair_object(target, keys, depth)?;
                    report.repaired.push(target);
                }
                AeOutcome::Forged {
                    level,
                    index,
                    rounds,
                } => {
                    report.rounds += rounds;
                    if let Some(obs) = &self.obs {
                        obs.ae_rounds.add(rounds);
                    }
                    self.record_evidence(EvidenceKind::ForgedRoot);
                    return Err(NetError::TamperDetected {
                        frame: None,
                        issues: vec![TamperEvidence::ForgedRoot { level, index }],
                    });
                }
            }
        }
    }

    /// Validates a signed shard root received on an anti-entropy summary
    /// and advances the monotonic `log_records` high-water mark.
    ///
    /// Terminal evidence on failure: a root whose signature, hash, or
    /// leaf count does not authenticate the summary it rode on is
    /// [`TamperEvidence::ForgedRoot`]; a *verified* root attesting fewer
    /// cumulative log records than an earlier one is
    /// [`TamperEvidence::CheckpointMismatch`] — the primary is replaying
    /// a pre-compaction state to resurrect excised history.
    fn pin_signed_root(
        &self,
        keys: &KeyDirectory,
        bytes: &[u8],
        summary_hash: &[u8],
        summary_leaves: u64,
    ) -> Result<(), NetError> {
        let forged = |self_: &Self| {
            self_.record_evidence(EvidenceKind::ForgedRoot);
            Err(NetError::TamperDetected {
                frame: None,
                issues: vec![TamperEvidence::ForgedRoot {
                    level: AE_SUMMARY_LEVEL,
                    index: 0,
                }],
            })
        };
        let Ok(root) = SignedRoot::from_bytes(bytes) else {
            return forged(self);
        };
        if !root.verify(keys) || root.root != summary_hash || root.leaf_count != summary_leaves {
            return forged(self);
        }
        let mut highwater = self
            .root_highwater
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if root.log_records < *highwater {
            self.record_evidence(EvidenceKind::CheckpointMismatch);
            return Err(NetError::TamperDetected {
                frame: None,
                issues: vec![TamperEvidence::CheckpointMismatch {
                    oid: ObjectId(0),
                    seq: root.log_records,
                }],
            });
        }
        *highwater = root.log_records;
        Ok(())
    }

    /// Re-fetches one divergent object from scratch (the stale checkpoint
    /// is cleared first — its resume proof no longer describes the stream
    /// the primary would send). Missing records are verified and appended;
    /// a record that *conflicts* with verified local state is
    /// [`TamperEvidence::ReplicaDivergence`], attributed at the depth the
    /// anti-entropy descent located it.
    fn repair_object(
        &self,
        oid: ObjectId,
        keys: &KeyDirectory,
        depth: u32,
    ) -> Result<CatchUpReport, NetError> {
        self.checkpoint_store(oid).clear()?;
        let mut conn = self.dial()?;
        let entry = conn
            .offer
            .iter()
            .find(|e| e.oid == oid)
            .cloned()
            .ok_or(NetError::Protocol("divergent object is not offered"))?;
        let mut local = self.local_index();
        match self.sync_object(&mut conn, &entry, keys, &mut local) {
            Ok(r) => Ok(r),
            Err(NetError::TamperDetected { frame, mut issues }) => {
                // Attribute the located depth on divergence evidence.
                for issue in &mut issues {
                    if let TamperEvidence::ReplicaDivergence { depth: d, .. } = issue {
                        *d = depth;
                    }
                }
                Err(NetError::TamperDetected { frame, issues })
            }
            Err(e) => Err(e),
        }
    }

    /// Streams one offered object through verify-on-receive with
    /// reconcile-by-content, batching durability as configured.
    fn sync_object(
        &self,
        conn: &mut ReplicaConn,
        entry: &OfferEntry,
        keys: &KeyDirectory,
        local: &mut HashMap<(ObjectId, u64), Vec<u8>>,
    ) -> Result<CatchUpReport, NetError> {
        let oid = entry.oid;
        conn.stream.set_read_timeout(Some(scaled_read_timeout(
            self.cfg.read_timeout,
            entry.records,
        )))?;
        let ckpt = self.checkpoint_store(oid);
        let mut report = CatchUpReport::default();

        // Open: RESUME from a durable checkpoint when one restores AND
        // still describes locally durable history, FETCH from zero
        // otherwise. A checkpoint that fails to load or open is local
        // damage, honestly treated as "start over" — never evidence. The
        // local-history check matters after storage damage: a quarantined
        // record leaves a hole the (still cryptographically valid)
        // checkpoint would otherwise hide behind its resume proof forever.
        let mut verifier: StreamingVerifier<'_>;
        let mut streamed: u64;
        let restored = ckpt
            .load()?
            .and_then(|blob| StreamingVerifier::restore(keys, &blob).ok())
            .filter(|v| self.checkpoint_covers_local(oid, v));
        match restored {
            Some(v) => {
                let claimed = v.records_checked() as u64;
                let digest = v.stream_digest().to_vec();
                conn.writer.write_message(&Message::Resume {
                    oid,
                    records: claimed,
                    digest: digest.clone(),
                })?;
                let frame = conn.reader.frames();
                match conn.reader.read_message()? {
                    Some(Message::ResumeOk {
                        records: confirmed,
                        digest: theirs,
                    }) => {
                        if confirmed != claimed || theirs != digest {
                            return Err(resume_mismatch(
                                oid,
                                claimed,
                                confirmed,
                                frame,
                                &self.counters,
                                self.registry.as_ref(),
                            ));
                        }
                        report.resumed += 1;
                        if let Some(obs) = &self.obs {
                            obs.checkpoint_resumes.inc();
                        }
                        verifier = v;
                        streamed = claimed;
                    }
                    Some(Message::Error {
                        code: ErrorCode::ResumeMismatch,
                        ..
                    }) => {
                        return Err(resume_mismatch(
                            oid,
                            claimed,
                            0,
                            frame,
                            &self.counters,
                            self.registry.as_ref(),
                        ));
                    }
                    Some(Message::Error {
                        code,
                        retry_after_ms,
                        detail,
                    }) => return Err(remote_error(code, retry_after_ms, detail)),
                    Some(_) => return Err(NetError::Protocol("expected RESUME_OK")),
                    None => return Err(NetError::Interrupted),
                }
            }
            None => {
                conn.writer.write_message(&Message::Fetch { oid })?;
                verifier = StreamingVerifier::new(keys, self.cfg.alg, oid);
                if let Some(reg) = &self.registry {
                    verifier.attach_obs(reg);
                }
                streamed = 0;
            }
        }

        let mut hasher = DepthStreamHasher::new(self.cfg.alg);
        let mut pending: u64 = 0;
        loop {
            let frame = conn.reader.frames();
            let msg = match conn.reader.read_message() {
                Ok(Some(m)) => m,
                Ok(None) => return Err(NetError::Interrupted),
                Err(e) => return Err(NetError::Wire(e)),
            };
            match msg {
                Message::Prov { record } => {
                    let rec = ProvenanceRecord::from_stored(&record)
                        .map_err(|e| NetError::Wire(WireError::Decode(e)))?;
                    streamed += 1;
                    let key = (record.oid, record.seq_id);
                    let bytes = record.to_bytes();
                    match local.get(&key) {
                        Some(mine) if *mine == bytes => {
                            // Already durable and byte-identical: re-verify
                            // into the rolling state, skip the append.
                            if verifier.push_record(&rec) > 0 {
                                self.counters.verify_failure();
                                return Err(NetError::TamperDetected {
                                    frame: Some(frame),
                                    issues: verifier.issues().to_vec(),
                                });
                            }
                            report.reverified += 1;
                        }
                        Some(_) => {
                            // The primary's history conflicts with verified
                            // local state. Never overwritten.
                            self.record_evidence(EvidenceKind::ReplicaDivergence);
                            return Err(NetError::TamperDetected {
                                frame: Some(frame),
                                issues: vec![TamperEvidence::ReplicaDivergence {
                                    oid: key.0,
                                    depth: 0,
                                }],
                            });
                        }
                        None => {
                            if verifier.push_record(&rec) > 0 {
                                self.counters.verify_failure();
                                return Err(NetError::TamperDetected {
                                    frame: Some(frame),
                                    issues: verifier.issues().to_vec(),
                                });
                            }
                            self.db.append(record).map_err(store_error)?;
                            local.insert(key, bytes);
                            report.new_records += 1;
                            pending += 1;
                            if pending >= self.cfg.batch {
                                self.flush(&ckpt, &verifier, &mut pending)?;
                            }
                        }
                    }
                }
                Message::Data { entries } => {
                    for e in &entries {
                        if hasher.push(e.depth as usize, e.id, &e.value).is_err() {
                            self.counters.verify_failure();
                            self.record_evidence(EvidenceKind::MalformedStream);
                            return Err(NetError::Protocol("malformed replica data stream"));
                        }
                    }
                }
                Message::Done {
                    records: sent_records,
                    nodes: sent_nodes,
                } => {
                    let nodes = hasher.node_count();
                    let Ok((object_hash, _)) = hasher.finish() else {
                        self.counters.verify_failure();
                        self.record_evidence(EvidenceKind::MalformedStream);
                        return Err(NetError::Protocol("malformed replica data stream"));
                    };
                    // Durability *before* the final verdict: everything
                    // appended was individually verified, and the sealed
                    // checkpoint must never outrun the fsynced log.
                    self.flush(&ckpt, &verifier, &mut pending)?;
                    let verification = verifier.finish(&object_hash);
                    if !verification.verified() {
                        self.counters.verify_failure();
                        return Err(NetError::TamperDetected {
                            frame: None,
                            issues: verification.issues,
                        });
                    }
                    if sent_records != streamed || sent_nodes != nodes {
                        return Err(NetError::Protocol("DONE totals disagree with transfer"));
                    }
                    return Ok(report);
                }
                Message::Error {
                    code,
                    retry_after_ms,
                    detail,
                } => return Err(remote_error(code, retry_after_ms, detail)),
                _ => return Err(NetError::Protocol("unexpected message during transfer")),
            }
        }
    }

    /// Fsyncs the record log, then seals and persists the verifier state
    /// that covers it. Crash between the two steps leaves the checkpoint
    /// *behind* the log — the safe direction, reconciled by content on the
    /// next catch-up.
    fn flush(
        &self,
        ckpt: &CheckpointStore,
        verifier: &StreamingVerifier<'_>,
        pending: &mut u64,
    ) -> Result<(), NetError> {
        self.db.sync().map_err(store_error)?;
        if let Some(blob) = verifier.checkpoint() {
            ckpt.save(&blob)?;
        }
        if let Some(obs) = &self.obs {
            obs.catchup_records.add(*pending);
        }
        *pending = 0;
        Ok(())
    }

    /// `true` when the sealed checkpoint's verified prefix is still
    /// locally reconstructible: the rolling stream digest over the first
    /// `records_checked` records of the *local* provenance of `oid`
    /// (collected and ordered exactly as the primary orders its stream)
    /// equals the checkpoint's digest. A replica whose log lost records —
    /// torn tail, quarantined corruption — fails this and falls back to a
    /// full reconciling fetch, which repairs the hole.
    fn checkpoint_covers_local(&self, oid: ObjectId, v: &StreamingVerifier<'_>) -> bool {
        let claimed = v.records_checked();
        if claimed == 0 {
            return true;
        }
        let Ok(prov) = collect(&self.db, oid) else {
            return false;
        };
        if prov.records.len() < claimed {
            return false;
        }
        let mut d = RecordStreamDigest::new(self.cfg.alg, oid);
        for rec in &prov.records[..claimed] {
            d.push(&rec.to_stored().to_bytes());
        }
        d.current() == v.stream_digest()
    }

    /// Byte index of everything locally durable, keyed by record slot.
    fn local_index(&self) -> HashMap<(ObjectId, u64), Vec<u8>> {
        self.db
            .all_records()
            .into_iter()
            .map(|r| ((r.oid, r.seq_id), r.to_bytes()))
            .collect()
    }

    fn checkpoint_store(&self, oid: ObjectId) -> CheckpointStore {
        CheckpointStore::new(
            Arc::clone(&self.vfs),
            self.ckpt_dir.join(format!("ckpt-{}", oid.0)),
        )
    }

    fn record_evidence(&self, kind: EvidenceKind) {
        self.counters.verify_failure();
        if let Some(reg) = &self.registry {
            EvidenceCounters::new(reg).record(kind);
        }
    }

    /// Dials the primary and completes the HELLO/OFFER exchange.
    fn dial(&self) -> Result<ReplicaConn, NetError> {
        let stream = TcpStream::connect(self.primary)?;
        stream.set_read_timeout(Some(self.cfg.read_timeout))?;
        stream.set_nodelay(true)?;
        let control = stream.try_clone().map_err(WireError::Io)?;
        let mut reader = FrameReader::new(
            stream.try_clone().map_err(WireError::Io)?,
            Arc::clone(&self.counters),
        );
        let mut writer = FrameWriter::new(stream, Arc::clone(&self.counters));
        writer.write_message(&Message::Hello {
            version: WIRE_VERSION,
            alg: self.cfg.alg,
            tenant: TenantId::DEFAULT.raw(),
        })?;
        match reader.read_message()? {
            Some(Message::Hello { version, alg, .. })
                if version == WIRE_VERSION && alg == self.cfg.alg => {}
            Some(Message::Error {
                code,
                retry_after_ms,
                detail,
            }) => return Err(remote_error(code, retry_after_ms, detail)),
            Some(_) => return Err(NetError::Protocol("expected HELLO")),
            None => return Err(NetError::Interrupted),
        }
        let offer = match reader.read_message()? {
            Some(Message::Offer { entries }) => entries,
            Some(Message::Error {
                code,
                retry_after_ms,
                detail,
            }) => return Err(remote_error(code, retry_after_ms, detail)),
            Some(_) => return Err(NetError::Protocol("expected OFFER")),
            None => return Err(NetError::Interrupted),
        };
        Ok(ReplicaConn {
            reader,
            writer,
            offer,
            stream: control,
        })
    }
}

/// An established replica→primary connection.
struct ReplicaConn {
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
    offer: Vec<OfferEntry>,
    /// Control handle for per-transfer read-timeout rescaling.
    stream: TcpStream,
}

/// [`AeOracle`] over the wire: each summary/node request is one
/// AE_REQ/AE_RESP round trip on an established connection.
struct WireOracle<'a> {
    conn: &'a mut ReplicaConn,
    /// Signed-root bytes from the latest summary reply that carried one,
    /// with the `(hash, leaf_count)` of that reply — validated by
    /// [`Replica::pin_signed_root`] after the descent.
    summary_root: Option<(Vec<u8>, Vec<u8>, u64)>,
}

impl WireOracle<'_> {
    fn exchange(&mut self, level: u32, index: u64) -> Result<(u64, u32, AeNodeInfo), AeError> {
        self.conn
            .writer
            .write_message(&Message::AeReq { level, index })
            .map_err(|e| AeError::Transport(e.to_string()))?;
        match self
            .conn
            .reader
            .read_message()
            .map_err(|e| AeError::Transport(e.to_string()))?
        {
            Some(Message::AeResp {
                leaf_count,
                depth,
                hash,
                children,
                oid,
                signed_root,
            }) => {
                if let Some(bytes) = signed_root {
                    self.summary_root = Some((bytes, hash.clone(), leaf_count));
                }
                Ok((
                    leaf_count,
                    depth,
                    AeNodeInfo {
                        hash,
                        children,
                        oid,
                    },
                ))
            }
            Some(Message::Error { code, detail, .. }) => Err(AeError::Protocol(format!(
                "peer refused AE_REQ ({code}): {detail}"
            ))),
            Some(_) => Err(AeError::Protocol("expected AE_RESP".into())),
            None => Err(AeError::Transport("connection closed".into())),
        }
    }
}

impl AeOracle for WireOracle<'_> {
    fn summary(&mut self) -> Result<AeSummary, AeError> {
        let (leaf_count, depth, info) = self.exchange(AE_SUMMARY_LEVEL, 0)?;
        Ok(AeSummary {
            leaf_count,
            depth,
            root: info.hash,
        })
    }

    fn node(&mut self, level: u32, index: u64) -> Result<AeNodeInfo, AeError> {
        let (_, _, info) = self.exchange(level, index)?;
        Ok(info)
    }
}

fn store_error(e: tep_storage::StoreError) -> NetError {
    NetError::Wire(WireError::Io(std::io::Error::other(e.to_string())))
}

/// Round-robin fan-out of verified fetches across replica endpoints.
///
/// Failover happens on *retryable* errors only: a replica that returns
/// tamper evidence (or any other terminal verdict) terminates the fetch —
/// rotating to a "cleaner" peer would mask the evidence.
pub struct FanoutFetcher {
    clients: Vec<Client>,
    next: usize,
}

impl FanoutFetcher {
    /// A fetcher over `addrs`, one client per endpoint.
    pub fn new(addrs: &[SocketAddr], cfg: ClientConfig) -> Self {
        FanoutFetcher {
            clients: addrs.iter().map(|&a| Client::new(a, cfg)).collect(),
            next: 0,
        }
    }

    /// Attaches one shared registry to every underlying client.
    pub fn attach_obs(&mut self, registry: &Registry) {
        for c in &mut self.clients {
            c.attach_obs(registry);
        }
    }

    /// Endpoints in rotation.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// `true` when constructed over zero endpoints (every fetch fails).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Fetches `oid` from the next endpoint in rotation, failing over to
    /// the remaining endpoints on retryable errors. The first terminal
    /// error — tamper evidence above all — is returned immediately.
    pub fn fetch_verified(
        &mut self,
        oid: ObjectId,
        keys: &KeyDirectory,
    ) -> Result<crate::FetchReport, NetError> {
        if self.clients.is_empty() {
            return Err(NetError::Protocol("no replica endpoints configured"));
        }
        let n = self.clients.len();
        let start = self.next;
        self.next = (self.next + 1) % n;
        let mut last: Option<NetError> = None;
        for i in 0..n {
            let idx = (start + i) % n;
            match self.clients[idx].fetch_verified(oid, keys) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(NetError::Protocol("no replica endpoints configured")))
    }
}
