//! Deterministic binary wire format for provenance exchange.
//!
//! Every message travels in one **frame**:
//!
//! ```text
//! frame   := len:u32be  crc:u32be  payload[len]
//! payload := type:u8    body
//! ```
//!
//! where `crc` is [`tep_storage::crc::frame_crc`] — CRC-32 over the
//! big-endian length prefix followed by the payload — exactly the framing
//! the durable log uses on disk. Covering the length prefix means a run of
//! zero bytes can never parse as a valid empty frame, and a frame whose
//! length field was damaged in flight fails the checksum instead of
//! desynchronizing the stream. The CRC protects against *accidental*
//! corruption only; deliberate tampering is caught by the cryptographic
//! provenance checksums the payloads carry (see `tep-core::verify`).
//!
//! Message bodies reuse the canonical encodings already defined elsewhere:
//! provenance records travel as [`StoredRecord`] bytes (the storage wire
//! format), data values as `tep_model::encode` canonical values. All
//! integers are big-endian; all variable-length fields are length-prefixed.
//! There is exactly one encoding for every message — the format is
//! deterministic so byte streams can be compared, replayed, and hashed.
//!
//! Decoding is hardened against untrusted input: the frame length is
//! capped at [`MAX_FRAME`] *before* any allocation, vector pre-allocation
//! never trusts wire-supplied counts, and every body decoder must consume
//! its payload exactly.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

use tep_core::metrics::TransferCounters;
use tep_core::slice::QuerySpec;
use tep_crypto::digest::HashAlgorithm;
use tep_model::encode::{decode_value, encode_value, DecodeError, Reader};
use tep_model::{ObjectId, Value};
use tep_storage::crc::frame_crc;
use tep_storage::StoredRecord;

/// Magic bytes opening every HELLO body (protocol family + format version).
pub const WIRE_MAGIC: [u8; 8] = *b"TEPNET\x00\x01";

/// Protocol version negotiated in HELLO. v2 added RESUME/RESUME_OK and the
/// ERR `retry_after_ms` hint; v3 added DENIAL, RANGE_REQ/RANGE_RESP and
/// the optional signed root on AE summary responses (authenticated
/// denial); v4 added the tenant scope to HELLO (every subsequent frame on
/// the connection is scoped to that tenant) and the non-retryable
/// `unknown tenant` error.
pub const WIRE_VERSION: u16 = 4;

/// Hard cap on a frame's payload length. Enforced before allocating, so a
/// hostile 4 GiB length prefix costs the decoder nothing.
pub const MAX_FRAME: usize = 1 << 20;

/// Soft target for DATA frame payload size; the server flushes a chunk
/// once it crosses this many encoded bytes.
pub const DATA_CHUNK_BYTES: usize = 32 * 1024;

const TYPE_HELLO: u8 = 0x01;
const TYPE_OFFER: u8 = 0x02;
const TYPE_FETCH: u8 = 0x03;
const TYPE_PROV: u8 = 0x04;
const TYPE_DATA: u8 = 0x05;
const TYPE_DONE: u8 = 0x06;
const TYPE_ERROR: u8 = 0x07;
const TYPE_STATS_REQ: u8 = 0x08;
const TYPE_STATS: u8 = 0x09;
const TYPE_RESUME: u8 = 0x0A;
const TYPE_RESUME_OK: u8 = 0x0B;
const TYPE_QUERY: u8 = 0x0C;
const TYPE_QRESULT: u8 = 0x0D;
const TYPE_AE_REQ: u8 = 0x0E;
const TYPE_AE_RESP: u8 = 0x0F;
const TYPE_DENIAL: u8 = 0x10;
const TYPE_RANGE_REQ: u8 = 0x11;
const TYPE_RANGE_RESP: u8 = 0x12;

/// `AeReq.level` value that asks for the tree summary (root exchange)
/// instead of a specific node — a replica cannot know the primary's tree
/// depth before the first exchange.
pub const AE_SUMMARY_LEVEL: u32 = u32::MAX;

/// Why a peer refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// HELLO version or hash algorithm did not match.
    VersionMismatch,
    /// The requested object is not offered here.
    UnknownObject,
    /// The server's accept queue is full; try again later.
    Busy,
    /// The peer sent a message the protocol state does not allow.
    BadRequest,
    /// A RESUME offset/digest does not match the server's history — the
    /// claimed prefix is not byte-identical to what the server would send.
    ResumeMismatch,
    /// The connection exceeded the server's per-connection deadline and
    /// was closed; reconnect (and resume) to continue.
    Deadline,
    /// The tenant named in HELLO is unknown to (or disabled at) this
    /// server. **Non-retryable**, unlike `Busy`: no amount of backoff
    /// makes an unprovisioned tenant exist, so clients surface it
    /// immediately instead of burning retry budget.
    UnknownTenant,
}

impl ErrorCode {
    fn wire_id(self) -> u8 {
        match self {
            ErrorCode::VersionMismatch => 1,
            ErrorCode::UnknownObject => 2,
            ErrorCode::Busy => 3,
            ErrorCode::BadRequest => 4,
            ErrorCode::ResumeMismatch => 5,
            ErrorCode::Deadline => 6,
            ErrorCode::UnknownTenant => 7,
        }
    }

    fn from_wire_id(id: u8) -> Option<Self> {
        match id {
            1 => Some(ErrorCode::VersionMismatch),
            2 => Some(ErrorCode::UnknownObject),
            3 => Some(ErrorCode::Busy),
            4 => Some(ErrorCode::BadRequest),
            5 => Some(ErrorCode::ResumeMismatch),
            6 => Some(ErrorCode::Deadline),
            7 => Some(ErrorCode::UnknownTenant),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::VersionMismatch => "version mismatch",
            ErrorCode::UnknownObject => "unknown object",
            ErrorCode::Busy => "server busy",
            ErrorCode::BadRequest => "bad request",
            ErrorCode::ResumeMismatch => "resume mismatch",
            ErrorCode::Deadline => "connection deadline exceeded",
            ErrorCode::UnknownTenant => "unknown or disabled tenant",
        };
        f.write_str(s)
    }
}

/// One entry of the server's OFFER manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OfferEntry {
    /// The offered object.
    pub oid: ObjectId,
    /// Records in the object's own chain (the full DAG a FETCH delivers
    /// may be larger).
    pub records: u64,
    /// Nodes in the object's data subtree.
    pub nodes: u64,
}

/// One depth-tagged DFS-preorder node of a DATA frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataEntry {
    /// Depth below the transfer's root object (root = 0).
    pub depth: u16,
    /// The node's object id.
    pub id: ObjectId,
    /// The node's value, canonically encoded on the wire.
    pub value: Value,
}

/// A protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Connection opener, sent by both sides: magic, version, algorithm,
    /// tenant scope.
    Hello {
        /// Protocol version ([`WIRE_VERSION`]).
        version: u16,
        /// Hash algorithm all hashes on this connection use.
        alg: HashAlgorithm,
        /// The tenant this connection operates in. Stated by the client,
        /// checked against the server's tenant directory at admission,
        /// and echoed back; every OFFER/FETCH/QUERY/DENIAL/AE frame that
        /// follows is implicitly scoped to it. Single-tenant deployments
        /// use [`tep_model::TenantId::DEFAULT`] (0).
        tenant: u64,
    },
    /// Manifest of objects the server serves.
    Offer {
        /// One entry per offered object, in `ObjectId` order.
        entries: Vec<OfferEntry>,
    },
    /// Client requests one object's provenance + data.
    Fetch {
        /// The requested object.
        oid: ObjectId,
    },
    /// One provenance record, in `(output_oid, seq_id)` order.
    Prov {
        /// The record in storage wire format.
        record: StoredRecord,
    },
    /// A chunk of the object's data subtree in depth-tagged DFS preorder.
    Data {
        /// The entries of this chunk.
        entries: Vec<DataEntry>,
    },
    /// End of a transfer, with totals for cross-checking.
    Done {
        /// PROV frames sent.
        records: u64,
        /// Data entries sent.
        nodes: u64,
    },
    /// Refusal. Fatal codes close the connection.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Backoff hint in milliseconds (0 = none): how long the peer
        /// suggests waiting before retrying. Sent with `Busy`/`Deadline`
        /// when the server is load-shedding.
        retry_after_ms: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// Client asks the server for its metric registry.
    StatsRequest,
    /// The server's metrics in text exposition format
    /// ([`tep_obs::Registry::render_text`]).
    Stats {
        /// The rendered exposition (UTF-8).
        text: String,
    },
    /// Client reopens a transfer that was cut after `records` records,
    /// proving where it stopped with its verifier's rolling stream digest.
    Resume {
        /// The object being transferred.
        oid: ObjectId,
        /// Records already received **and verified** by the client.
        records: u64,
        /// The client's [`RecordStreamDigest`] state after those records
        /// ([`tep_core::streaming::RecordStreamDigest`]).
        digest: Vec<u8>,
    },
    /// Server accepts a RESUME: it echoes the offset and its **own**
    /// recomputed digest over the first `records` records it would have
    /// sent, then continues the transfer from `records + 1`. A client
    /// whose digest disagrees rejects the transfer as `ResumeMismatch`
    /// evidence.
    ResumeOk {
        /// The resume offset being honored.
        records: u64,
        /// The server's recomputed stream digest over its own first
        /// `records` records.
        digest: Vec<u8>,
    },
    /// Client asks the server to run a provenance query.
    Query {
        /// What to compute, over which object, under which bounds.
        spec: QuerySpec,
    },
    /// The server's answer: an encoded `tep_core::slice::SliceProof` the
    /// client decodes and re-verifies with `Verifier::verify_slice`. The
    /// bytes travel opaquely — the wire layer never vouches for them.
    QResult {
        /// The proof in its canonical slice encoding.
        proof: Vec<u8>,
    },
    /// Replica asks for one node of the primary's per-shard Merkle tree
    /// over the object-ID space ([`tep_core::merkle::ShardTree`]) during
    /// an anti-entropy pass. `level == `[`AE_SUMMARY_LEVEL`] requests the
    /// root exchange (tree summary); otherwise `(level, index)` addresses
    /// a specific node, leaves at level 0.
    AeReq {
        /// Tree level (leaves = 0), or [`AE_SUMMARY_LEVEL`] for the
        /// summary.
        level: u32,
        /// Node index within the level (0 for the summary).
        index: u64,
    },
    /// One node of the responder's shard tree. Every response carries the
    /// shard's leaf count and depth (they are cheap and let the requester
    /// cross-check shape claims); `children` are the node's 1–2 child
    /// hashes (empty at leaf level), and `oid` names the leaf's object at
    /// leaf level. The requester authenticates each response structurally:
    /// the children must hash to the parent hash claimed one round
    /// earlier, so a forged node or root surfaces as
    /// `TamperEvidence::ForgedRoot` rather than steering the descent.
    AeResp {
        /// Leaves (objects) in the responder's shard.
        leaf_count: u64,
        /// Levels above the leaves.
        depth: u32,
        /// The addressed node's hash (the root hash for a summary).
        hash: Vec<u8>,
        /// The node's child hashes, in order; empty at leaf level and in
        /// summaries.
        children: Vec<Vec<u8>>,
        /// At leaf level, the leaf's object id.
        oid: Option<ObjectId>,
        /// On summary responses from a signing server, the encoded
        /// [`tep_core::denial::SignedRoot`] over the shard — replicas
        /// refresh their non-membership root (and its monotonic
        /// `log_records` high-water mark) from it each anti-entropy
        /// round. The bytes travel opaquely; the receiver verifies the
        /// signature itself.
        signed_root: Option<Vec<u8>>,
    },
    /// Authenticated NOT_FOUND: the server's answer to a FETCH or QUERY
    /// for an object it does not hold. Carries an encoded
    /// [`tep_core::denial::SignedDenial`] — a signed non-membership proof
    /// the client verifies before accepting the denial as honest; a
    /// denial that fails verification is `ForgedDenial` evidence and is
    /// never retried.
    Denial {
        /// The proof in its canonical [`SignedDenial`] encoding
        /// ([`tep_core::denial::SignedDenial::to_bytes`]), opaque to the
        /// wire layer.
        proof: Vec<u8>,
    },
    /// Client asks which offered objects fall in an inclusive object-ID
    /// range — with proof that the answer is complete.
    RangeReq {
        /// Inclusive lower bound.
        lo: ObjectId,
        /// Inclusive upper bound.
        hi: ObjectId,
    },
    /// The server's range answer: the member object-IDs plus an encoded
    /// [`tep_core::denial::SignedRange`] completeness proof. The client
    /// cross-checks the served members against the proof's proven set —
    /// an answer missing a proven member is `IncompleteResponse`
    /// evidence.
    RangeResp {
        /// The members served, in ascending order.
        oids: Vec<ObjectId>,
        /// The completeness proof in its canonical [`SignedRange`]
        /// encoding ([`tep_core::denial::SignedRange::to_bytes`]), opaque
        /// to the wire layer.
        proof: Vec<u8>,
    },
}

/// Wire-layer failure.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file error (includes read timeouts).
    Io(io::Error),
    /// A frame's length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The stream ended inside a frame.
    Truncated,
    /// Frame checksum mismatch: the bytes were damaged in flight.
    BadCrc,
    /// HELLO magic bytes are wrong — not a tep-net peer.
    BadMagic,
    /// Unknown message type byte.
    BadType(u8),
    /// A message body failed to decode.
    Decode(DecodeError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME}")
            }
            WireError::Truncated => write!(f, "stream ended inside a frame"),
            WireError::BadCrc => write!(f, "frame checksum mismatch"),
            WireError::BadMagic => write!(f, "bad protocol magic"),
            WireError::BadType(t) => write!(f, "unknown message type 0x{t:02x}"),
            WireError::Decode(e) => write!(f, "malformed message body: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

/// Encodes `msg` into a payload (type byte + body), without framing.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_message_into(msg, &mut out);
    out
}

/// Appends `msg`'s payload (type byte + body) to `out` without clearing
/// it — the allocation-free twin of [`encode_message`]. Callers that frame
/// messages reserve header space in `out` first and patch it afterwards
/// (see [`FrameWriter::write_message`]), so a warm buffer encodes and
/// frames with zero allocations.
pub fn encode_message_into(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Hello {
            version,
            alg,
            tenant,
        } => {
            out.push(TYPE_HELLO);
            out.extend_from_slice(&WIRE_MAGIC);
            out.extend_from_slice(&version.to_be_bytes());
            out.push(alg.wire_id());
            out.extend_from_slice(&tenant.to_be_bytes());
        }
        Message::Offer { entries } => {
            out.push(TYPE_OFFER);
            out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
            for e in entries {
                out.extend_from_slice(&e.oid.raw().to_be_bytes());
                out.extend_from_slice(&e.records.to_be_bytes());
                out.extend_from_slice(&e.nodes.to_be_bytes());
            }
        }
        Message::Fetch { oid } => {
            out.push(TYPE_FETCH);
            out.extend_from_slice(&oid.raw().to_be_bytes());
        }
        Message::Prov { record } => {
            out.push(TYPE_PROV);
            record.encode_into(out);
        }
        Message::Data { entries } => {
            out.push(TYPE_DATA);
            out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
            for e in entries {
                out.extend_from_slice(&e.depth.to_be_bytes());
                out.extend_from_slice(&e.id.raw().to_be_bytes());
                encode_value(&e.value, out);
            }
        }
        Message::Done { records, nodes } => {
            out.push(TYPE_DONE);
            out.extend_from_slice(&records.to_be_bytes());
            out.extend_from_slice(&nodes.to_be_bytes());
        }
        Message::Error {
            code,
            retry_after_ms,
            detail,
        } => {
            out.push(TYPE_ERROR);
            out.push(code.wire_id());
            out.extend_from_slice(&retry_after_ms.to_be_bytes());
            out.extend_from_slice(&(detail.len() as u64).to_be_bytes());
            out.extend_from_slice(detail.as_bytes());
        }
        Message::StatsRequest => {
            out.push(TYPE_STATS_REQ);
        }
        Message::Stats { text } => {
            out.push(TYPE_STATS);
            out.extend_from_slice(&(text.len() as u64).to_be_bytes());
            out.extend_from_slice(text.as_bytes());
        }
        Message::Resume {
            oid,
            records,
            digest,
        } => {
            out.push(TYPE_RESUME);
            out.extend_from_slice(&oid.raw().to_be_bytes());
            out.extend_from_slice(&records.to_be_bytes());
            out.extend_from_slice(&(digest.len() as u64).to_be_bytes());
            out.extend_from_slice(digest);
        }
        Message::ResumeOk { records, digest } => {
            out.push(TYPE_RESUME_OK);
            out.extend_from_slice(&records.to_be_bytes());
            out.extend_from_slice(&(digest.len() as u64).to_be_bytes());
            out.extend_from_slice(digest);
        }
        Message::Query { spec } => {
            out.push(TYPE_QUERY);
            spec.encode_into(out);
        }
        Message::QResult { proof } => {
            out.push(TYPE_QRESULT);
            out.extend_from_slice(proof);
        }
        Message::AeReq { level, index } => {
            out.push(TYPE_AE_REQ);
            out.extend_from_slice(&level.to_be_bytes());
            out.extend_from_slice(&index.to_be_bytes());
        }
        Message::AeResp {
            leaf_count,
            depth,
            hash,
            children,
            oid,
            signed_root,
        } => {
            out.push(TYPE_AE_RESP);
            out.extend_from_slice(&leaf_count.to_be_bytes());
            out.extend_from_slice(&depth.to_be_bytes());
            out.extend_from_slice(&(hash.len() as u64).to_be_bytes());
            out.extend_from_slice(hash);
            out.push(children.len() as u8);
            for c in children {
                out.extend_from_slice(&(c.len() as u64).to_be_bytes());
                out.extend_from_slice(c);
            }
            match oid {
                Some(oid) => {
                    out.push(1);
                    out.extend_from_slice(&oid.raw().to_be_bytes());
                }
                None => out.push(0),
            }
            match signed_root {
                Some(root) => {
                    out.push(1);
                    out.extend_from_slice(&(root.len() as u64).to_be_bytes());
                    out.extend_from_slice(root);
                }
                None => out.push(0),
            }
        }
        Message::Denial { proof } => {
            out.push(TYPE_DENIAL);
            out.extend_from_slice(proof);
        }
        Message::RangeReq { lo, hi } => {
            out.push(TYPE_RANGE_REQ);
            out.extend_from_slice(&lo.raw().to_be_bytes());
            out.extend_from_slice(&hi.raw().to_be_bytes());
        }
        Message::RangeResp { oids, proof } => {
            out.push(TYPE_RANGE_RESP);
            out.extend_from_slice(&(oids.len() as u32).to_be_bytes());
            for oid in oids {
                out.extend_from_slice(&oid.raw().to_be_bytes());
            }
            out.extend_from_slice(&(proof.len() as u64).to_be_bytes());
            out.extend_from_slice(proof);
        }
    }
}

/// Decodes one message from a complete frame payload.
pub fn decode_message(payload: &[u8]) -> Result<Message, WireError> {
    let mut r = Reader::new(payload);
    let msg = match r.u8()? {
        TYPE_HELLO => {
            let magic: [u8; 8] = r.array()?;
            if magic != WIRE_MAGIC {
                return Err(WireError::BadMagic);
            }
            let version = u16::from_be_bytes(r.array()?);
            let alg_id = r.u8()?;
            let alg = HashAlgorithm::from_wire_id(alg_id)
                .ok_or(WireError::Decode(DecodeError::BadTag(alg_id)))?;
            let tenant = r.u64()?;
            Message::Hello {
                version,
                alg,
                tenant,
            }
        }
        TYPE_OFFER => {
            let count = r.u32()? as usize;
            // Never trust the count for allocation; each entry is 24 bytes.
            let mut entries = Vec::with_capacity(count.min(r.remaining() / 24 + 1));
            for _ in 0..count {
                entries.push(OfferEntry {
                    oid: ObjectId(r.u64()?),
                    records: r.u64()?,
                    nodes: r.u64()?,
                });
            }
            Message::Offer { entries }
        }
        TYPE_FETCH => Message::Fetch {
            oid: ObjectId(r.u64()?),
        },
        TYPE_PROV => {
            let record = StoredRecord::from_bytes(&payload[1..])?;
            return Ok(Message::Prov { record });
        }
        TYPE_DATA => {
            let count = r.u32()? as usize;
            // Each entry is at least 11 bytes (depth + id + 1-byte value).
            let mut entries = Vec::with_capacity(count.min(r.remaining() / 11 + 1));
            for _ in 0..count {
                let depth = u16::from_be_bytes(r.array()?);
                let id = ObjectId(r.u64()?);
                let value = decode_value(&mut r)?;
                entries.push(DataEntry { depth, id, value });
            }
            Message::Data { entries }
        }
        TYPE_DONE => Message::Done {
            records: r.u64()?,
            nodes: r.u64()?,
        },
        TYPE_ERROR => {
            let code_id = r.u8()?;
            let code = ErrorCode::from_wire_id(code_id)
                .ok_or(WireError::Decode(DecodeError::BadTag(code_id)))?;
            let retry_after_ms = r.u64()?;
            let detail = String::from_utf8(r.len_prefixed()?.to_vec())
                .map_err(|_| WireError::Decode(DecodeError::BadUtf8))?;
            Message::Error {
                code,
                retry_after_ms,
                detail,
            }
        }
        TYPE_STATS_REQ => Message::StatsRequest,
        TYPE_STATS => {
            let text = String::from_utf8(r.len_prefixed()?.to_vec())
                .map_err(|_| WireError::Decode(DecodeError::BadUtf8))?;
            Message::Stats { text }
        }
        TYPE_RESUME => Message::Resume {
            oid: ObjectId(r.u64()?),
            records: r.u64()?,
            digest: r.len_prefixed()?.to_vec(),
        },
        TYPE_RESUME_OK => Message::ResumeOk {
            records: r.u64()?,
            digest: r.len_prefixed()?.to_vec(),
        },
        TYPE_QUERY => Message::Query {
            spec: QuerySpec::decode(&mut r)?,
        },
        TYPE_QRESULT => {
            // The proof body is the rest of the payload, verbatim; its own
            // magic/length discipline lives in `SliceProof::from_bytes`.
            return Ok(Message::QResult {
                proof: payload[1..].to_vec(),
            });
        }
        TYPE_AE_REQ => Message::AeReq {
            level: r.u32()?,
            index: r.u64()?,
        },
        TYPE_AE_RESP => {
            let leaf_count = r.u64()?;
            let depth = r.u32()?;
            let hash = r.len_prefixed()?.to_vec();
            let count = r.u8()? as usize;
            // Never trust the count for allocation; each child costs at
            // least its 8-byte length prefix.
            let mut children = Vec::with_capacity(count.min(r.remaining() / 8 + 1));
            for _ in 0..count {
                children.push(r.len_prefixed()?.to_vec());
            }
            let oid = match r.u8()? {
                0 => None,
                1 => Some(ObjectId(r.u64()?)),
                t => return Err(WireError::Decode(DecodeError::BadTag(t))),
            };
            let signed_root = match r.u8()? {
                0 => None,
                1 => Some(r.len_prefixed()?.to_vec()),
                t => return Err(WireError::Decode(DecodeError::BadTag(t))),
            };
            Message::AeResp {
                leaf_count,
                depth,
                hash,
                children,
                oid,
                signed_root,
            }
        }
        TYPE_DENIAL => {
            // The proof body is the rest of the payload, verbatim; its own
            // structure lives in `SignedDenial::from_bytes`.
            return Ok(Message::Denial {
                proof: payload[1..].to_vec(),
            });
        }
        TYPE_RANGE_REQ => Message::RangeReq {
            lo: ObjectId(r.u64()?),
            hi: ObjectId(r.u64()?),
        },
        TYPE_RANGE_RESP => {
            let count = r.u32()? as usize;
            // Never trust the count for allocation; each oid is 8 bytes.
            let mut oids = Vec::with_capacity(count.min(r.remaining() / 8 + 1));
            for _ in 0..count {
                oids.push(ObjectId(r.u64()?));
            }
            let proof = r.len_prefixed()?.to_vec();
            Message::RangeResp { oids, proof }
        }
        t => return Err(WireError::BadType(t)),
    };
    r.expect_end()?;
    Ok(msg)
}

/// Reads frames off a byte stream, verifying checksums and enforcing the
/// [`MAX_FRAME`] allocation cap, and counts them into [`TransferCounters`].
pub struct FrameReader<R> {
    inner: R,
    counters: Arc<TransferCounters>,
    frames: u64,
    /// Reusable payload buffer: resized (within the [`MAX_FRAME`]-bounded
    /// capacity it converges to) instead of freshly allocated per frame.
    payload: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner`; received frames/bytes are tallied into `counters`.
    pub fn new(inner: R, counters: Arc<TransferCounters>) -> Self {
        FrameReader {
            inner,
            counters,
            frames: 0,
            payload: Vec::new(),
        }
    }

    /// Frames read so far on this stream.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Current capacity of the reusable payload buffer (pinned by the
    /// no-alloc regression test: it must stop growing once warm).
    pub fn payload_capacity(&self) -> usize {
        self.payload.capacity()
    }

    /// Reads the next message. `Ok(None)` means the peer closed the stream
    /// cleanly *between* frames; EOF inside a frame is [`WireError::Truncated`].
    pub fn read_message(&mut self) -> Result<Option<Message>, WireError> {
        let mut header = [0u8; 8];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Full => {}
        }
        let len = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as usize > MAX_FRAME {
            return Err(WireError::Oversized { len });
        }
        // The length is capped, so the buffer's capacity is bounded; resize
        // reuses it across frames instead of allocating anew.
        self.payload.clear();
        self.payload.resize(len as usize, 0);
        self.inner.read_exact(&mut self.payload)?;
        if frame_crc(len, &self.payload) != crc {
            return Err(WireError::BadCrc);
        }
        self.frames += 1;
        self.counters.frame_received(8 + len as u64);
        decode_message(&self.payload).map(Some)
    }
}

enum ReadOutcome {
    Full,
    Eof,
}

/// Like `read_exact`, but a clean EOF before the *first* byte is reported
/// as [`ReadOutcome::Eof`] instead of an error.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Writes framed messages onto a byte stream, counting them into
/// [`TransferCounters`].
pub struct FrameWriter<W> {
    inner: W,
    counters: Arc<TransferCounters>,
    /// Reusable frame buffer: header placeholder + payload encoded in
    /// place, CRC patched over the placeholder — one buffer, zero fresh
    /// allocations per frame once warm.
    scratch: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps `inner`; sent frames/bytes are tallied into `counters`.
    pub fn new(inner: W, counters: Arc<TransferCounters>) -> Self {
        FrameWriter {
            inner,
            counters,
            scratch: Vec::new(),
        }
    }

    /// Consumes the writer, returning the underlying sink (useful for
    /// in-memory streams in tests and benches).
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Current capacity of the reusable frame buffer (pinned by the
    /// no-alloc regression test: it must stop growing once warm).
    pub fn scratch_capacity(&self) -> usize {
        self.scratch.capacity()
    }

    /// Frames and sends one message.
    pub fn write_message(&mut self, msg: &Message) -> Result<(), WireError> {
        frame_message_into(msg, &mut self.scratch);
        self.inner.write_all(&self.scratch)?;
        self.inner.flush()?;
        self.counters.frame_sent(self.scratch.len() as u64);
        Ok(())
    }
}

/// Replaces `frame` with the complete wire frame (header + payload) for
/// `msg`, reusing the buffer's capacity: the 8-byte header is reserved up
/// front, the payload encoded directly behind it, and the length/CRC
/// patched into the reservation — no intermediate payload `Vec`.
pub fn frame_message_into(msg: &Message, frame: &mut Vec<u8>) {
    frame.clear();
    frame.extend_from_slice(&[0u8; 8]);
    encode_message_into(msg, frame);
    let len = (frame.len() - 8) as u32;
    debug_assert!(len as usize <= MAX_FRAME, "oversized outbound frame");
    let crc = frame_crc(len, &frame[8..]);
    frame[0..4].copy_from_slice(&len.to_be_bytes());
    frame[4..8].copy_from_slice(&crc.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use tep_crypto::pki::ParticipantId;

    fn counters() -> Arc<TransferCounters> {
        Arc::new(TransferCounters::new())
    }

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                version: WIRE_VERSION,
                alg: HashAlgorithm::Sha256,
                tenant: 3,
            },
            Message::Error {
                code: ErrorCode::UnknownTenant,
                retry_after_ms: 0,
                detail: "tenant t9 is not provisioned here".into(),
            },
            Message::Offer {
                entries: vec![
                    OfferEntry {
                        oid: ObjectId(1),
                        records: 3,
                        nodes: 9,
                    },
                    OfferEntry {
                        oid: ObjectId(7),
                        records: 1,
                        nodes: 1,
                    },
                ],
            },
            Message::Fetch { oid: ObjectId(7) },
            Message::Prov {
                record: StoredRecord {
                    seq_id: 4,
                    participant: ParticipantId(2),
                    oid: ObjectId(7),
                    checksum: vec![0xAB; 64],
                    payload: vec![0xCD; 33],
                },
            },
            Message::Data {
                entries: vec![
                    DataEntry {
                        depth: 0,
                        id: ObjectId(7),
                        value: Value::text("root"),
                    },
                    DataEntry {
                        depth: 1,
                        id: ObjectId(8),
                        value: Value::Int(-5),
                    },
                ],
            },
            Message::Done {
                records: 4,
                nodes: 2,
            },
            Message::Error {
                code: ErrorCode::UnknownObject,
                retry_after_ms: 0,
                detail: "object 99 is not offered".into(),
            },
            Message::Error {
                code: ErrorCode::Busy,
                retry_after_ms: 250,
                detail: "queue full".into(),
            },
            Message::StatsRequest,
            Message::Stats {
                text: "# TYPE tep_net_frames_sent_total counter\n\
                       tep_net_frames_sent_total 7\n"
                    .into(),
            },
            Message::Resume {
                oid: ObjectId(7),
                records: 3,
                digest: vec![0x5A; 32],
            },
            Message::ResumeOk {
                records: 3,
                digest: vec![0x5A; 32],
            },
            Message::Query {
                spec: QuerySpec {
                    op: tep_core::slice::QueryOp::Ancestors,
                    target: ObjectId(7),
                    participant: Some(ParticipantId(2)),
                    bounds: tep_core::slice::QueryBounds {
                        max_depth: Some(3),
                        seq_range: Some((1, 9)),
                    },
                },
            },
            Message::QResult {
                proof: b"TEPSLICE\x01 opaque proof bytes".to_vec(),
            },
            Message::AeReq {
                level: AE_SUMMARY_LEVEL,
                index: 0,
            },
            Message::AeReq { level: 3, index: 5 },
            Message::AeResp {
                leaf_count: 12,
                depth: 4,
                hash: vec![0x6B; 32],
                children: vec![vec![0x11; 32], vec![0x22; 32]],
                oid: None,
                signed_root: None,
            },
            Message::AeResp {
                leaf_count: 12,
                depth: 4,
                hash: vec![0x6C; 32],
                children: vec![],
                oid: Some(ObjectId(9)),
                signed_root: None,
            },
            Message::AeResp {
                leaf_count: 12,
                depth: 4,
                hash: vec![0x6D; 32],
                children: vec![],
                oid: None,
                signed_root: Some(vec![0x7E; 96]),
            },
            Message::Denial {
                proof: b"opaque signed-denial bytes".to_vec(),
            },
            Message::RangeReq {
                lo: ObjectId(3),
                hi: ObjectId(9),
            },
            Message::RangeResp {
                oids: vec![ObjectId(4), ObjectId(7)],
                proof: b"opaque signed-range bytes".to_vec(),
            },
            Message::RangeResp {
                oids: vec![],
                proof: b"empty range still proves completeness".to_vec(),
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in sample_messages() {
            let payload = encode_message(&msg);
            let back = decode_message(&payload).unwrap();
            assert_eq!(back, msg, "roundtrip failed for {msg:?}");
        }
    }

    #[test]
    fn framed_stream_roundtrips_and_counts() {
        let msgs = sample_messages();
        let mut buf = Vec::new();
        let send = counters();
        {
            let mut w = FrameWriter::new(&mut buf, Arc::clone(&send));
            for m in &msgs {
                w.write_message(m).unwrap();
            }
        }
        let recv = counters();
        let mut r = FrameReader::new(buf.as_slice(), Arc::clone(&recv));
        let mut back = Vec::new();
        while let Some(m) = r.read_message().unwrap() {
            back.push(m);
        }
        assert_eq!(back, msgs);
        let s = send.snapshot();
        let g = recv.snapshot();
        assert_eq!(s.frames_sent, msgs.len() as u64);
        assert_eq!(g.frames_received, msgs.len() as u64);
        assert_eq!(s.bytes_sent, g.bytes_received);
        assert_eq!(s.bytes_sent, buf.len() as u64);
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = Vec::new();
        let len = (MAX_FRAME as u32) + 1;
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&frame_crc(len, &[]).to_be_bytes());
        // No payload at all: the reader must refuse on the length alone.
        let mut r = FrameReader::new(frame.as_slice(), counters());
        assert!(matches!(
            r.read_message(),
            Err(WireError::Oversized { len: l }) if l == len
        ));
    }

    #[test]
    fn corrupted_frame_fails_crc() {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf, counters())
            .write_message(&Message::Fetch { oid: ObjectId(3) })
            .unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            let mut r = FrameReader::new(bad.as_slice(), counters());
            let res = r.read_message();
            assert!(
                !matches!(res, Ok(Some(Message::Fetch { oid })) if oid == ObjectId(3)),
                "flipped bit at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        {
            let mut w = FrameWriter::new(&mut buf, counters());
            for m in sample_messages() {
                w.write_message(&m).unwrap();
            }
        }
        for cut in 0..buf.len() {
            let mut r = FrameReader::new(buf[..cut].as_ref(), counters());
            loop {
                match r.read_message() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break, // clean EOF at a frame boundary
                    Err(WireError::Truncated) => break,
                    Err(e) => panic!("unexpected error at cut {cut}: {e}"),
                }
            }
        }
    }

    #[test]
    fn hello_magic_is_checked() {
        let msg = Message::Hello {
            version: WIRE_VERSION,
            alg: HashAlgorithm::Sha1,
            tenant: 0,
        };
        let mut payload = encode_message(&msg);
        payload[1] ^= 0xFF; // first magic byte
        assert!(matches!(decode_message(&payload), Err(WireError::BadMagic)));
    }

    #[test]
    fn unknown_type_and_trailing_bytes_rejected() {
        assert!(matches!(
            decode_message(&[0x7F]),
            Err(WireError::BadType(0x7F))
        ));
        let mut payload = encode_message(&Message::Fetch { oid: ObjectId(1) });
        payload.push(0x00);
        assert!(matches!(
            decode_message(&payload),
            Err(WireError::Decode(DecodeError::TrailingBytes(1)))
        ));
    }

    /// Pins the hot path's allocation behavior: once a [`FrameWriter`]'s
    /// scratch and a [`FrameReader`]'s payload buffer have seen the
    /// largest frame of a stream, re-sending the same traffic must not
    /// grow either buffer again — capacity stability is the observable
    /// proxy for "no per-frame allocation".
    #[test]
    fn warm_codec_buffers_stop_allocating() {
        let msgs = sample_messages();
        let mut warm = Vec::new();
        let mut w = FrameWriter::new(&mut warm, counters());
        // Warm-up pass: buffers grow to the high-water mark.
        for m in &msgs {
            w.write_message(m).unwrap();
        }
        let warm_cap = w.scratch_capacity();
        assert!(warm_cap > 0);
        // Steady state: 100 more rounds of identical traffic, zero growth.
        for _ in 0..100 {
            for m in &msgs {
                w.write_message(m).unwrap();
            }
            assert_eq!(
                w.scratch_capacity(),
                warm_cap,
                "encode scratch grew after warm-up — a per-frame allocation crept back in"
            );
        }
        let stream = w.into_inner().clone();

        let mut r = FrameReader::new(stream.as_slice(), counters());
        // Warm-up: one full pass of the stream's frames.
        for _ in 0..msgs.len() {
            r.read_message().unwrap().unwrap();
        }
        let warm_cap = r.payload_capacity();
        assert!(warm_cap > 0);
        while let Some(_m) = r.read_message().unwrap() {
            assert_eq!(
                r.payload_capacity(),
                warm_cap,
                "decode payload buffer grew after warm-up"
            );
        }
    }

    /// The in-place framing helper produces byte-identical frames to the
    /// historical encode-then-copy path (len ‖ crc ‖ payload).
    #[test]
    fn frame_message_into_matches_reference_framing() {
        let mut frame = Vec::new();
        for msg in sample_messages() {
            frame_message_into(&msg, &mut frame);
            let payload = encode_message(&msg);
            let len = payload.len() as u32;
            let mut reference = Vec::new();
            reference.extend_from_slice(&len.to_be_bytes());
            reference.extend_from_slice(&frame_crc(len, &payload).to_be_bytes());
            reference.extend_from_slice(&payload);
            assert_eq!(frame, reference, "framing diverged for {msg:?}");
        }
    }

    #[test]
    fn data_count_cannot_force_allocation() {
        // Claims u32::MAX entries but carries none.
        let mut payload = vec![TYPE_DATA];
        payload.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_message(&payload),
            Err(WireError::Decode(DecodeError::UnexpectedEof))
        ));
    }
}
