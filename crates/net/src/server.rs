//! Readiness-driven event-loop TCP server for provenance exchange.
//!
//! std-only: a single thread multiplexes the listener and every live
//! connection over raw `poll(2)` (see [`crate::sys`] — no mio/tokio).
//! Each connection is a nonblocking socket owned by a [`Conn`] state
//! machine (`Handshake → Ready → Streaming → Draining`) with its own read
//! and write buffers; outbound frames are scatter-gathered onto the socket
//! with vectored writes (pending backlog + freshly encoded frame in one
//! syscall) so the hot path never copies a frame into the backlog buffer
//! unless the socket is actually full.
//!
//! Graceful degradation under load is unchanged from the worker-pool
//! predecessor: connections arriving while the server already owns
//! `min(shed_watermark, queue_depth)` active connections are refused with
//! `ERR busy` *plus* a `Retry-After` hint scaled to the backlog, every
//! connection is bounded by a wall-clock deadline (`ERR deadline` + close,
//! resumable), and a peer that vanishes mid-transfer is counted in
//! `tep_net_write_aborts_total` rather than folded into generic i/o noise.
//!
//! Fairness: per readiness wakeup each connection ingests a bounded number
//! of bytes and each streaming job queues frames only until its write
//! buffer reaches a high watermark — a slow-reading peer parks its
//! connection on `POLLOUT` instead of starving the loop, and a fast one
//! cannot monopolize a wakeup.
//!
//! Per connection the server speaks the `wire` protocol:
//!
//! ```text
//! client  HELLO ───────────▶
//!         ◀─────────── HELLO   (version/alg must match; else ERR + close)
//!         ◀─────────── OFFER   (manifest of served objects)
//! client  FETCH oid ───────▶
//!         ◀─ PROV × N         (records of the full provenance DAG,
//!                              sorted by (output_oid, seq_id))
//!         ◀─ DATA × M         (data subtree, depth-tagged DFS preorder)
//!         ◀─ DONE             (totals)
//!         … more FETCHes, or client closes …
//! ```
//!
//! A client resuming a cut transfer sends `RESUME oid k digest` instead of
//! `FETCH`; the server recomputes the record-stream digest over the first
//! `k` records it would have sent and answers `RESUME_OK` + the tail of
//! the stream only if the prefix is byte-identical — otherwise
//! `ERR resume-mismatch` (see `tep_core::streaming::RecordStreamDigest`).

use std::collections::BTreeMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tep_core::denial::{DenialProof, RangeProof, SignedDenial, SignedRange, SignedRoot};
use tep_core::merkle::{shard_tree_of, ShardTree};
use tep_core::metrics::{TransferCounters, TransferSnapshot};
use tep_core::provenance::{collect, ProvenanceObject};
use tep_core::streaming::RecordStreamDigest;
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::Participant;
use tep_model::{Forest, ObjectId, TenantId};
use tep_obs::{names, Counter, Gauge, Histogram, Registry};
use tep_query::{QueryEngine, QueryError};
use tep_storage::crc::frame_crc;
use tep_storage::ProvenanceDb;

use crate::sys;
use crate::wire::{
    decode_message, frame_message_into, DataEntry, ErrorCode, Message, OfferEntry, WireError,
    DATA_CHUNK_BYTES, MAX_FRAME, WIRE_VERSION,
};

/// What a server serves: a snapshot of the data forest, the provenance
/// store, and the set of objects offered to clients.
pub struct Catalog {
    forest: Forest,
    db: Arc<ProvenanceDb>,
    alg: HashAlgorithm,
    offered: Vec<ObjectId>,
    /// When set, misses are answered with signed non-membership proofs
    /// (DENIAL frames) and RANGE_REQ is served with completeness proofs;
    /// without it the server falls back to plain `ERR unknown-object`.
    signer: Option<Arc<Participant>>,
}

impl Catalog {
    /// Builds a catalog offering `offered` (deduplicated, sorted).
    pub fn new(
        forest: Forest,
        db: Arc<ProvenanceDb>,
        alg: HashAlgorithm,
        mut offered: Vec<ObjectId>,
    ) -> Self {
        offered.sort();
        offered.dedup();
        Catalog {
            forest,
            db,
            alg,
            offered,
            signer: None,
        }
    }

    /// Equips the catalog with a signing identity: misses become signed
    /// DENIAL proofs, range requests carry completeness proofs, and
    /// anti-entropy summary replies attach the signed shard root.
    pub fn with_signer(mut self, signer: Arc<Participant>) -> Self {
        self.signer = Some(signer);
        self
    }

    /// The hash algorithm this catalog's hashes use.
    pub fn alg(&self) -> HashAlgorithm {
        self.alg
    }

    /// The OFFER manifest.
    pub fn offer_entries(&self) -> Vec<OfferEntry> {
        self.offered
            .iter()
            .map(|&oid| OfferEntry {
                oid,
                records: self.db.records_for(oid).len() as u64,
                nodes: if self.forest.contains(oid) {
                    self.forest.subtree_ids(oid).len() as u64
                } else {
                    0
                },
            })
            .collect()
    }

    fn is_offered(&self, oid: ObjectId) -> bool {
        self.offered.binary_search(&oid).is_ok()
    }

    /// The depth-tagged DFS preorder walk of `root`'s data subtree.
    fn data_entries(&self, root: ObjectId) -> Vec<DataEntry> {
        let mut out = Vec::new();
        let mut work = vec![(0u16, root)];
        while let Some((depth, id)) = work.pop() {
            let Some(node) = self.forest.node(id) else {
                continue;
            };
            out.push(DataEntry {
                depth,
                id,
                value: node.value().clone(),
            });
            let kids: Vec<ObjectId> = node.children().collect();
            for &c in kids.iter().rev() {
                work.push((depth + 1, c));
            }
        }
        out
    }
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Retained for configuration compatibility with the worker-pool
    /// server this event loop replaced. The loop is single-threaded (one
    /// thread multiplexes every connection), so the value is ignored.
    pub workers: usize,
    /// Maximum connections the event loop serves concurrently; beyond
    /// this, new connections are refused with `ERR busy`.
    pub queue_depth: usize,
    /// How long a connection may sit idle (no request bytes arriving)
    /// before it is closed.
    pub read_timeout: Duration,
    /// How long an outbound backlog may make zero progress (peer not
    /// reading) before the connection is closed.
    pub write_timeout: Duration,
    /// Load-shedding watermark: connections arriving while the server
    /// already owns this many (or more) active connections are refused
    /// with `ERR busy` and a `Retry-After` hint, *before* the hard
    /// `queue_depth` cap is hit. Defaults to `usize::MAX`, i.e. shed only
    /// at the hard cap; the effective threshold is always
    /// `min(shed_watermark, queue_depth)`.
    pub shed_watermark: usize,
    /// Wall-clock budget for one connection, covering every request served
    /// on it. Exceeding it mid-stream sends `ERR deadline` and closes —
    /// the client can reconnect and RESUME — so a slow-reading peer holds
    /// a connection slot for a bounded time no matter how many frames
    /// remain.
    pub connection_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            shed_watermark: usize::MAX,
            connection_deadline: Duration::from_secs(30),
        }
    }
}

impl ServerConfig {
    /// The active-connection count at which new connections are refused.
    fn effective_watermark(&self) -> usize {
        self.shed_watermark.min(self.queue_depth)
    }
}

/// The `Retry-After` hint sent with a shed connection, scaled to the
/// backlog the refused client would have waited behind (deterministic, so
/// tests can pin it).
fn shed_retry_after_ms(backlog: usize) -> u64 {
    ((backlog as u64).saturating_add(1))
        .saturating_mul(25)
        .min(1_000)
}

/// The poll timeout: bounds how stale the loop's view of the shutdown
/// flag, connection deadlines, and idle timers can get.
const POLL_TICK: Duration = Duration::from_millis(10);

/// Bytes read into a connection's buffer per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// `read` calls per connection per wakeup — bounds how much one chatty
/// peer can ingest before the loop moves on (fairness).
const READ_ROUND_LIMIT: usize = 4;

/// A streaming job stops queueing frames once this much outbound data is
/// pending; it resumes when `POLLOUT` drains the backlog. Bounds per-
/// connection memory against a slow reader and bounds the work one
/// connection does per wakeup (fairness).
const WBUF_HIGH: usize = 256 * 1024;

/// Accepted connections per wakeup — bounds accept work so a connect
/// storm cannot starve established connections.
const ACCEPT_BURST: usize = 128;

/// Backlog offset at which a partially-drained write buffer is compacted
/// (consumed prefix memmoved away) instead of growing forever.
const WBUF_COMPACT: usize = 32 * 1024;

/// On shutdown, connections get at most this long (and never more than
/// `write_timeout`) to flush queued frames before being force-closed.
const SHUTDOWN_GRACE_CAP: Duration = Duration::from_millis(500);

/// Locks `m`, recovering from poison. A thread that panicked while
/// holding a server lock must not wedge shutdown — the protected data's
/// invariants (a list of joinable threads) hold at every await point, so
/// the contents are safe to reuse.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs one dispatch with panic isolation: a panicking connection handler
/// is counted in [`TransferCounters::worker_panics`] and the event loop
/// lives on to serve every other connection. Per-connection state is
/// owned by the closure and the connection is closed afterwards, so no
/// broken invariants escape (hence `AssertUnwindSafe`).
fn run_isolated(counters: &TransferCounters, f: impl FnOnce()) {
    if panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
        counters.worker_panic();
    }
}

struct Shared {
    shutdown: AtomicBool,
}

/// Server-level counters in the metric registry (frame/byte traffic is
/// mirrored separately by the observed [`TransferCounters`]). Names come
/// from [`tep_obs::names`] so the harnesses asserting on them cannot
/// drift.
#[derive(Clone)]
struct ServerObs {
    connections: Counter,
    busy_rejections: Counter,
    fetches: Counter,
    resumes: Counter,
    stats_requests: Counter,
    queries: Counter,
    ae_requests: Counter,
    denials: Counter,
    range_requests: Counter,
    shed: Counter,
    deadline_closes: Counter,
    write_aborts: Counter,
    /// HELLOs naming an unprovisioned (or disabled) tenant. Deliberately
    /// *unlabeled*: the tenant id in a rejected HELLO is attacker-chosen,
    /// so labeling by it would hand peers unbounded metric cardinality.
    tenant_rejections: Counter,
    /// HELLOs refused because the named tenant was over its connection
    /// quota (also counted per tenant via a labeled counter).
    tenant_quota_sheds: Counter,
}

impl ServerObs {
    fn new(registry: &Registry) -> Self {
        ServerObs {
            connections: registry.counter(names::NET_CONNECTIONS),
            busy_rejections: registry.counter(names::NET_BUSY_REJECTIONS),
            fetches: registry.counter(names::NET_FETCHES),
            resumes: registry.counter(names::NET_RESUMES),
            stats_requests: registry.counter(names::NET_STATS_REQUESTS),
            queries: registry.counter(names::NET_QUERIES),
            ae_requests: registry.counter(names::NET_AE_REQUESTS),
            denials: registry.counter(names::NET_DENIALS),
            range_requests: registry.counter(names::NET_RANGE_REQUESTS),
            shed: registry.counter(names::NET_SHED),
            deadline_closes: registry.counter(names::NET_DEADLINE_CLOSES),
            write_aborts: registry.counter(names::NET_WRITE_ABORTS),
            tenant_rejections: registry.counter(names::NET_TENANT_REJECTIONS),
            tenant_quota_sheds: registry.counter(names::NET_TENANT_QUOTA_SHEDS),
        }
    }
}

/// Event-loop instrumentation: wakeup counter, connection-state gauges,
/// and the request-frame turnaround histogram.
#[derive(Clone)]
struct LoopObs {
    wakeups: Counter,
    open: Gauge,
    handshake: Gauge,
    ready: Gauge,
    streaming: Gauge,
    draining: Gauge,
    turnaround: Histogram,
}

impl LoopObs {
    fn new(registry: &Registry) -> Self {
        LoopObs {
            wakeups: registry.counter(names::NET_EPOLL_WAKEUPS),
            open: registry.gauge(names::NET_OPEN_CONNECTIONS),
            handshake: registry.gauge(names::NET_CONNS_HANDSHAKE),
            ready: registry.gauge(names::NET_CONNS_READY),
            streaming: registry.gauge(names::NET_CONNS_STREAMING),
            draining: registry.gauge(names::NET_CONNS_DRAINING),
            turnaround: registry.latency_histogram(names::NET_FRAME_TURNAROUND),
        }
    }
}

/// One tenant's serving surface plus its admission-control knobs, handed
/// to [`serve_tenants`]. Each tenant gets its own catalog (typically over
/// its own shard of a [`tep_storage::TenantShards`] root) so a fault or
/// quarantine in one tenant's log never touches another's.
pub struct TenantSpec {
    /// The tenant scope this catalog serves.
    pub tenant: TenantId,
    /// What this tenant's connections can fetch/query.
    pub catalog: Arc<Catalog>,
    /// A disabled tenant is rejected at HELLO with `ERR unknown-tenant`,
    /// deliberately indistinguishable from an unprovisioned one.
    pub enabled: bool,
    /// Max concurrently admitted connections for this tenant. Beyond it,
    /// HELLO answers retryable `ERR busy` with a `Retry-After` scaled to
    /// *this tenant's* backlog — one tenant's connect storm cannot eat
    /// another tenant's slots.
    pub max_connections: usize,
    /// Per-tenant wall-clock budget per connection; the effective
    /// deadline is the tighter of this and the server-wide
    /// [`ServerConfig::connection_deadline`].
    pub deadline: Option<Duration>,
}

impl TenantSpec {
    /// A spec with no quota and no extra deadline budget: enabled,
    /// unlimited connections, server-wide deadline only.
    pub fn new(tenant: TenantId, catalog: Arc<Catalog>) -> Self {
        TenantSpec {
            tenant,
            catalog,
            enabled: true,
            max_connections: usize::MAX,
            deadline: None,
        }
    }

    /// Marks the tenant provisioned-but-disabled (rejected at HELLO).
    pub fn disabled(mut self) -> Self {
        self.enabled = false;
        self
    }

    /// Caps concurrently admitted connections for this tenant.
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Sets a per-tenant connection deadline budget.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Per-tenant serving state: the catalog, query engine, anti-entropy
/// caches, admission knobs, and tenant-labeled counters. Everything a
/// dispatch touches after admission lives here, so request handling for
/// tenant A can never read (or poison) tenant B's state.
struct TenantEnv {
    catalog: Arc<Catalog>,
    enabled: bool,
    max_connections: usize,
    deadline: Option<Duration>,
    /// Connections currently admitted under this tenant's scope; the
    /// quota check compares against this, the event loop decrements it
    /// when an admitted connection closes.
    active: AtomicUsize,
    /// Serves QUERY frames over this tenant's record log; its secondary
    /// indexes tail the log lazily on each request.
    query: QueryEngine,
    /// Anti-entropy shard tree over this tenant's record log, cached
    /// behind a record-count watermark: rebuilt only when the log has
    /// grown since the cached build (the log is append-only, so equal
    /// length ⇒ identical tree).
    ae_cache: Mutex<Option<(usize, Arc<ShardTree>)>>,
    /// Signed shard root, cached behind the same record-count watermark
    /// as `ae_cache` (signing is an RSA operation — far too expensive to
    /// redo per miss). `None` until first use or when the catalog has no
    /// signer.
    root_cache: Mutex<Option<(usize, Arc<SignedRoot>)>>,
    /// Tenant-labeled mirrors of the admission counters (the unlabeled
    /// aggregates stay in [`ServerObs`]).
    connections: Counter,
    shed: Counter,
    quota_sheds: Counter,
}

impl TenantEnv {
    fn new(spec: TenantSpec, registry: &Registry) -> (u64, Self) {
        let t = spec.tenant.raw();
        let mut query = QueryEngine::new(Arc::clone(&spec.catalog.db), spec.catalog.alg);
        query.attach_obs(registry);
        let env = TenantEnv {
            catalog: spec.catalog,
            enabled: spec.enabled,
            max_connections: spec.max_connections,
            deadline: spec.deadline,
            active: AtomicUsize::new(0),
            query,
            ae_cache: Mutex::new(None),
            root_cache: Mutex::new(None),
            connections: registry.counter(&names::with_tenant(names::NET_CONNECTIONS, t)),
            shed: registry.counter(&names::with_tenant(names::NET_SHED, t)),
            quota_sheds: registry.counter(&names::with_tenant(names::NET_TENANT_QUOTA_SHEDS, t)),
        };
        (t, env)
    }

    /// The current shard tree, rebuilding on record-log growth.
    fn shard_tree(&self) -> Arc<ShardTree> {
        let mut cache = self.ae_cache.lock().unwrap_or_else(PoisonError::into_inner);
        let len = self.catalog.db.len();
        match cache.as_ref() {
            Some((watermark, tree)) if *watermark == len => Arc::clone(tree),
            _ => {
                let tree = Arc::new(shard_tree_of(self.catalog.alg, &self.catalog.db));
                *cache = Some((len, Arc::clone(&tree)));
                tree
            }
        }
    }

    /// The signed shard root over `tree`, re-signed only on record-log
    /// growth. `None` when the catalog has no signing identity (or the
    /// signer's key refuses, which 512-bit test keys never do).
    ///
    /// `log_records` is the *cumulative* log high-water mark — frames
    /// excised by compaction still count — so a replica holding an older
    /// root can detect a server rolled back to a pre-compaction state.
    fn signed_root(&self, tree: &ShardTree) -> Option<Arc<SignedRoot>> {
        let signer = self.catalog.signer.as_ref()?;
        let mut cache = self
            .root_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let len = self.catalog.db.len();
        if let Some((watermark, root)) = cache.as_ref() {
            if *watermark == len {
                return Some(Arc::clone(root));
            }
        }
        let excised = self
            .catalog
            .db
            .recovery()
            .compaction
            .map(|s| s.excised_frames)
            .unwrap_or(0);
        let root = Arc::new(SignedRoot::sign(tree, excised + len as u64, signer).ok()?);
        *cache = Some((len, Arc::clone(&root)));
        Some(root)
    }
}

/// Everything a connection's dispatch path needs, bundled so the event
/// loop can hand out `&Env` alongside a `&mut Conn` (disjoint fields).
/// Per-tenant state hangs off `tenants`; a connection resolves its
/// [`TenantEnv`] once admitted and never touches another tenant's.
struct Env {
    tenants: BTreeMap<u64, TenantEnv>,
    counters: Arc<TransferCounters>,
    obs: ServerObs,
    loop_obs: LoopObs,
    registry: Registry,
}

/// Connection state-machine phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Accepted; waiting for the client's HELLO.
    Handshake,
    /// Handshake done; waiting for FETCH/RESUME/STATS.
    Ready,
    /// A transfer job is emitting PROV/DATA/DONE frames.
    Streaming,
    /// A terminal reply is queued; close once it flushes.
    Draining,
}

/// An in-flight transfer: the collected provenance, the data subtree, and
/// cursors marking how much of each has been queued. DONE totals always
/// cover the *whole* object (a RESUME skips sending the verified prefix
/// but the totals the client checks are unchanged).
struct StreamJob {
    prov: ProvenanceObject,
    data: Vec<DataEntry>,
    next_record: usize,
    data_pos: usize,
    done_queued: bool,
}

/// The next frame a streaming job wants queued (computed under a short
/// borrow of the job, queued after the borrow ends).
enum StreamStep {
    Prov(Box<Message>),
    Data(Vec<DataEntry>),
    Done { records: u64, nodes: u64 },
    Finished,
}

/// What a round of reads produced.
enum FillOutcome {
    /// Bytes arrived (or the socket simply had nothing more).
    Open,
    /// The peer closed its write side cleanly.
    Eof,
    /// The socket errored.
    Error,
}

/// One connection owned by the event loop: nonblocking stream, state
/// machine phase, and read/write buffers. Generic over the stream so the
/// state machine is unit-testable against scripted fakes; the event loop
/// itself uses `Conn<TcpStream>`.
struct Conn<S> {
    stream: S,
    state: ConnState,
    /// Refused at accept time (`ERR busy` queued); excluded from the
    /// backlog count that scales other clients' `Retry-After` hints.
    refused: bool,
    closed: bool,
    /// An abortable reply (PROV/DATA/DONE/ResumeOk/retryable ERR) has
    /// bytes not yet handed to the kernel; losing the connection now is a
    /// *write abort*, not a clean close.
    abort_owed: bool,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Frame-encode scratch, reused across frames (no per-frame allocs).
    scratch: Vec<u8>,
    /// The tenant scope this connection was admitted under (set by a
    /// successful HELLO); every subsequent request resolves state through
    /// it. `None` until the handshake completes.
    tenant: Option<u64>,
    job: Option<StreamJob>,
    /// `None` only for deadlines so large the Instant would overflow —
    /// which means "effectively unbounded" anyway.
    deadline: Option<Instant>,
    read_activity: Instant,
    write_activity: Instant,
}

impl<S: Read + Write> Conn<S> {
    fn new(stream: S, deadline: Option<Instant>, now: Instant) -> Self {
        Conn {
            stream,
            state: ConnState::Handshake,
            refused: false,
            closed: false,
            abort_owed: false,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            scratch: Vec::new(),
            tenant: None,
            job: None,
            deadline,
            read_activity: now,
            write_activity: now,
        }
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Frames are only parsed before and between requests — never while a
    /// reply is streaming or draining (pipelined requests wait in `rbuf`).
    fn wants_read(&self) -> bool {
        !self.closed && matches!(self.state, ConnState::Handshake | ConnState::Ready)
    }

    fn wanted_events(&self) -> i16 {
        let mut ev = 0;
        if self.wants_read() {
            ev |= sys::POLLIN;
        }
        if self.pending_write() > 0 {
            ev |= sys::POLLOUT;
        }
        ev
    }

    fn close_now(&mut self) {
        self.closed = true;
    }

    /// Closes a connection that still owed abortable reply bytes: the
    /// peer vanished (or stalled past its budget) mid-transfer.
    fn close_aborting(&mut self, obs: &ServerObs) {
        if self.abort_owed {
            self.abort_owed = false;
            obs.write_aborts.inc();
        }
        self.closed = true;
    }

    /// Terminal reply queued: close as soon as the backlog flushes.
    fn drain_then_close(&mut self) {
        self.job = None;
        if self.pending_write() == 0 {
            self.closed = true;
        } else {
            self.state = ConnState::Draining;
        }
    }

    fn compact_wbuf(&mut self) {
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos >= WBUF_COMPACT {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }

    /// Encodes `msg` into the scratch buffer and pushes it toward the
    /// socket: pending backlog and fresh frame go out in one vectored
    /// write (scatter-gather — the frame is only *copied* into the
    /// backlog if the socket cannot take it right now).
    fn queue_frame(&mut self, msg: &Message, abortable: bool, env: &Env, now: Instant) {
        if self.closed {
            return;
        }
        frame_message_into(msg, &mut self.scratch);
        env.counters.frame_sent(self.scratch.len() as u64);
        if abortable {
            self.abort_owed = true;
        }
        let mut sent = 0usize;
        loop {
            let pending = &self.wbuf[self.wpos..];
            let fresh = &self.scratch[sent..];
            if pending.is_empty() && fresh.is_empty() {
                break;
            }
            let slices = [IoSlice::new(pending), IoSlice::new(fresh)];
            match self.stream.write_vectored(&slices) {
                Ok(0) => break,
                Ok(n) => {
                    self.write_activity = now;
                    let from_pending = n.min(pending.len());
                    self.wpos += from_pending;
                    sent += n - from_pending;
                    if self.wpos == self.wbuf.len() {
                        self.wbuf.clear();
                        self.wpos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_aborting(&env.obs);
                    return;
                }
            }
        }
        if sent == self.scratch.len() && self.pending_write() == 0 {
            // Fully on the wire: nothing is owed.
            self.abort_owed = false;
        } else {
            self.compact_wbuf();
            let rest_start = sent;
            // Split borrow: scratch is a different field than wbuf.
            let (wbuf, scratch) = (&mut self.wbuf, &self.scratch);
            wbuf.extend_from_slice(&scratch[rest_start..]);
        }
    }

    /// Drains the write backlog as far as the socket allows.
    fn flush(&mut self, obs: &ServerObs, now: Instant) {
        while !self.closed && self.pending_write() > 0 {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => break,
                Ok(n) => {
                    self.wpos += n;
                    self.write_activity = now;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_aborting(obs);
                    return;
                }
            }
        }
        if self.pending_write() == 0 {
            self.wbuf.clear();
            self.wpos = 0;
            self.abort_owed = false;
            if self.state == ConnState::Draining {
                self.closed = true;
            }
        } else {
            self.compact_wbuf();
        }
    }

    /// Reads a bounded amount into `rbuf` (nonblocking).
    fn fill(&mut self, now: Instant) -> FillOutcome {
        let mut tmp = [0u8; READ_CHUNK];
        let mut rounds = 0;
        while rounds < READ_ROUND_LIMIT {
            match self.stream.read(&mut tmp) {
                Ok(0) => return FillOutcome::Eof,
                Ok(n) => {
                    self.rbuf.extend_from_slice(&tmp[..n]);
                    self.read_activity = now;
                    rounds += 1;
                    if n < tmp.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FillOutcome::Error,
            }
        }
        FillOutcome::Open
    }

    fn compact_rbuf(&mut self) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        } else if self.rpos > 0 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }

    /// Tries to parse one complete frame out of `rbuf`. `Ok(None)` means
    /// "need more bytes"; errors (oversized, bad CRC, malformed body)
    /// close the connection — same as the blocking reader treating the
    /// stream as poisoned.
    fn try_parse(&mut self, counters: &TransferCounters) -> Result<Option<Message>, WireError> {
        let avail = self.rbuf.len() - self.rpos;
        if avail < 8 {
            self.compact_rbuf();
            return Ok(None);
        }
        let header = &self.rbuf[self.rpos..self.rpos + 8];
        let len = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_be_bytes(header[4..8].try_into().expect("4 bytes"));
        if len as usize > MAX_FRAME {
            return Err(WireError::Oversized { len });
        }
        if avail < 8 + len as usize {
            self.compact_rbuf();
            return Ok(None);
        }
        let payload = &self.rbuf[self.rpos + 8..self.rpos + 8 + len as usize];
        if frame_crc(len, payload) != crc {
            return Err(WireError::BadCrc);
        }
        let msg = decode_message(payload)?;
        self.rpos += 8 + len as usize;
        counters.frame_received(8 + len as u64);
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        }
        Ok(Some(msg))
    }
}

fn past_deadline(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Tells the peer its connection ran out of wall-clock budget. The error
/// is retryable client-side (reconnect + RESUME picks up where the stream
/// stopped), so the hint is small and flat.
fn refuse_deadline<S: Read + Write>(conn: &mut Conn<S>, env: &Env, now: Instant) {
    env.obs.deadline_closes.inc();
    conn.queue_frame(
        &Message::Error {
            code: ErrorCode::Deadline,
            retry_after_ms: 10,
            detail: "connection deadline exceeded; reconnect and RESUME".into(),
        },
        true,
        env,
        now,
    );
    conn.drain_then_close();
}

/// Routes one parsed frame through the connection's state machine.
fn dispatch<S: Read + Write>(conn: &mut Conn<S>, msg: Message, env: &Env, now: Instant) {
    match conn.state {
        ConnState::Handshake => on_hello(conn, msg, env, now),
        ConnState::Ready => {
            // An admitted connection always has a tenant; losing the
            // mapping mid-session (cannot happen under the current API,
            // which takes the tenant set at serve time) is unrecoverable.
            let Some(ten) = conn.tenant.and_then(|t| env.tenants.get(&t)) else {
                conn.close_now();
                return;
            };
            on_request(conn, msg, env, ten, now)
        }
        // Frames are never parsed in these states (`wants_read` is false).
        ConnState::Streaming | ConnState::Draining => {}
    }
}

/// The tighter of two optional deadlines (`None` = unbounded).
fn tighter_deadline(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

/// HELLO admission: wire version → tenant provisioning → algorithm →
/// tenant connection quota, in that order.
///
/// An unknown *or disabled* tenant gets a typed, non-retryable
/// `ERR unknown-tenant` — distinct from `busy`, so a misconfigured client
/// fails fast instead of burning its retry budget against a scope that
/// will never admit it. A known tenant over its connection quota gets
/// retryable `ERR busy` with a `Retry-After` hint scaled to *that
/// tenant's* backlog, leaving other tenants' admission untouched.
fn on_hello<S: Read + Write>(conn: &mut Conn<S>, msg: Message, env: &Env, now: Instant) {
    let Message::Hello {
        version,
        alg,
        tenant,
    } = msg
    else {
        conn.queue_frame(
            &Message::Error {
                code: ErrorCode::BadRequest,
                retry_after_ms: 0,
                detail: "expected HELLO".into(),
            },
            false,
            env,
            now,
        );
        conn.drain_then_close();
        return;
    };
    if version != WIRE_VERSION {
        conn.queue_frame(
            &Message::Error {
                code: ErrorCode::VersionMismatch,
                retry_after_ms: 0,
                detail: format!("server speaks v{WIRE_VERSION}, client sent v{version}"),
            },
            false,
            env,
            now,
        );
        conn.drain_then_close();
        return;
    }
    let ten = match env.tenants.get(&tenant) {
        Some(ten) if ten.enabled => ten,
        _ => {
            // Unprovisioned and disabled are deliberately the same answer:
            // a probe cannot distinguish "never existed" from "suspended".
            env.obs.tenant_rejections.inc();
            conn.queue_frame(
                &Message::Error {
                    code: ErrorCode::UnknownTenant,
                    retry_after_ms: 0,
                    detail: format!("tenant t{tenant} is not provisioned here"),
                },
                false,
                env,
                now,
            );
            conn.drain_then_close();
            return;
        }
    };
    if alg != ten.catalog.alg() {
        conn.queue_frame(
            &Message::Error {
                code: ErrorCode::VersionMismatch,
                retry_after_ms: 0,
                detail: format!(
                    "tenant t{tenant} serves {:?}, client sent {alg:?}",
                    ten.catalog.alg()
                ),
            },
            false,
            env,
            now,
        );
        conn.drain_then_close();
        return;
    }
    let active = ten.active.load(Ordering::SeqCst);
    if active >= ten.max_connections {
        env.obs.shed.inc();
        env.obs.tenant_quota_sheds.inc();
        ten.shed.inc();
        ten.quota_sheds.inc();
        conn.queue_frame(
            &Message::Error {
                code: ErrorCode::Busy,
                retry_after_ms: shed_retry_after_ms(active),
                detail: format!("tenant t{tenant} connection quota reached"),
            },
            false,
            env,
            now,
        );
        conn.drain_then_close();
        return;
    }
    ten.active.fetch_add(1, Ordering::SeqCst);
    ten.connections.inc();
    conn.tenant = Some(tenant);
    conn.deadline = tighter_deadline(conn.deadline, ten.deadline.and_then(|d| now.checked_add(d)));
    conn.queue_frame(
        &Message::Hello {
            version: WIRE_VERSION,
            alg: ten.catalog.alg(),
            tenant,
        },
        false,
        env,
        now,
    );
    conn.queue_frame(
        &Message::Offer {
            entries: ten.catalog.offer_entries(),
        },
        false,
        env,
        now,
    );
    conn.state = ConnState::Ready;
}

/// One request frame in the `Ready` state. The connection deadline is
/// checked here — *after* the handshake, before dispatch — so even a
/// zero-budget connection completes HELLO/OFFER and gets a protocol-level
/// `ERR deadline` instead of a hang.
fn on_request<S: Read + Write>(
    conn: &mut Conn<S>,
    msg: Message,
    env: &Env,
    ten: &TenantEnv,
    now: Instant,
) {
    if past_deadline(conn.deadline) {
        refuse_deadline(conn, env, now);
        return;
    }
    match msg {
        Message::Fetch { oid } => {
            env.obs.fetches.inc();
            if let Some(prov) = lookup(conn, oid, env, ten, now) {
                start_stream(conn, oid, prov, 0, env, ten, now);
            }
        }
        Message::Resume {
            oid,
            records,
            digest,
        } => {
            env.obs.resumes.inc();
            let Some(prov) = lookup(conn, oid, env, ten, now) else {
                return;
            };
            let total = prov.records.len() as u64;
            if records > total {
                conn.queue_frame(
                    &Message::Error {
                        code: ErrorCode::ResumeMismatch,
                        retry_after_ms: 0,
                        detail: format!("resume offset {records} beyond end of stream ({total})"),
                    },
                    true,
                    env,
                    now,
                );
                return;
            }
            let mut ours = RecordStreamDigest::new(ten.catalog.alg, oid);
            for record in &prov.records[..records as usize] {
                ours.push(&record.to_stored().to_bytes());
            }
            if ours.current() != digest.as_slice() {
                conn.queue_frame(
                    &Message::Error {
                        code: ErrorCode::ResumeMismatch,
                        retry_after_ms: 0,
                        detail: format!("record-stream digest disagrees at offset {records}"),
                    },
                    true,
                    env,
                    now,
                );
                return;
            }
            conn.queue_frame(
                &Message::ResumeOk {
                    records,
                    digest: ours.current().to_vec(),
                },
                true,
                env,
                now,
            );
            start_stream(conn, oid, prov, records as usize, env, ten, now);
        }
        Message::StatsRequest => {
            env.obs.stats_requests.inc();
            conn.queue_frame(
                &Message::Stats {
                    text: env.registry.render_text(),
                },
                false,
                env,
                now,
            );
        }
        Message::Query { spec } => {
            env.obs.queries.inc();
            match ten.query.execute(&spec) {
                Ok(proof) => {
                    let bytes = proof.to_bytes();
                    // The whole proof must travel as one frame (payload =
                    // type byte + proof) so the client verifies an atomic
                    // unit; an answer past the cap is refused, not split.
                    if bytes.len() + 1 > MAX_FRAME {
                        conn.queue_frame(
                            &Message::Error {
                                code: ErrorCode::BadRequest,
                                retry_after_ms: 0,
                                detail: "slice proof exceeds frame cap; tighten the query bounds"
                                    .into(),
                            },
                            true,
                            env,
                            now,
                        );
                    } else {
                        conn.queue_frame(&Message::QResult { proof: bytes }, true, env, now);
                    }
                }
                Err(e) => {
                    let code = match e {
                        QueryError::UnknownObject(oid) => {
                            if deny(conn, oid, env, ten, now) {
                                return;
                            }
                            ErrorCode::UnknownObject
                        }
                        QueryError::MissingParticipant | QueryError::SliceTooLarge { .. } => {
                            ErrorCode::BadRequest
                        }
                    };
                    conn.queue_frame(
                        &Message::Error {
                            code,
                            retry_after_ms: 0,
                            detail: e.to_string(),
                        },
                        true,
                        env,
                        now,
                    );
                }
            }
        }
        Message::AeReq { level, index } => {
            env.obs.ae_requests.inc();
            let tree = ten.shard_tree();
            let reply = if level == crate::wire::AE_SUMMARY_LEVEL {
                let s = tree.summary();
                // Summary replies from a signing server carry the signed
                // root so replicas can pin a monotonic high-water mark;
                // node replies stay lean (the summary already vouched).
                let signed_root = ten.signed_root(&tree).map(|r| r.to_bytes());
                Some(Message::AeResp {
                    leaf_count: s.leaf_count,
                    depth: s.depth,
                    hash: s.root,
                    children: Vec::new(),
                    oid: None,
                    signed_root,
                })
            } else {
                tree.node_info(level, index).map(|info| Message::AeResp {
                    leaf_count: tree.leaf_count(),
                    depth: tree.depth(),
                    hash: info.hash,
                    children: info.children,
                    oid: info.oid,
                    signed_root: None,
                })
            };
            match reply {
                Some(resp) => conn.queue_frame(&resp, true, env, now),
                None => conn.queue_frame(
                    &Message::Error {
                        code: ErrorCode::BadRequest,
                        retry_after_ms: 0,
                        detail: format!("no anti-entropy node at level {level} index {index}"),
                    },
                    true,
                    env,
                    now,
                ),
            }
        }
        Message::RangeReq { lo, hi } => {
            if lo > hi {
                conn.queue_frame(
                    &Message::Error {
                        code: ErrorCode::BadRequest,
                        retry_after_ms: 0,
                        detail: format!("range lower bound {lo} exceeds upper bound {hi}"),
                    },
                    true,
                    env,
                    now,
                );
                return;
            }
            if ten.catalog.signer.is_none() {
                conn.queue_frame(
                    &Message::Error {
                        code: ErrorCode::BadRequest,
                        retry_after_ms: 0,
                        detail: "server has no signing identity; completeness proofs unavailable"
                            .into(),
                    },
                    true,
                    env,
                    now,
                );
                return;
            }
            let tree = ten.shard_tree();
            let Some(root) = ten.signed_root(&tree) else {
                conn.queue_frame(
                    &Message::Error {
                        code: ErrorCode::BadRequest,
                        retry_after_ms: 0,
                        detail: "signing the shard root failed".into(),
                    },
                    true,
                    env,
                    now,
                );
                return;
            };
            let range = SignedRange {
                root: (*root).clone(),
                proof: RangeProof::prove(&tree, lo, hi),
            };
            let oids: Vec<ObjectId> = range.proof.members.iter().map(|m| m.oid).collect();
            let bytes = range.to_bytes();
            if bytes.len() + oids.len() * 8 + 16 > MAX_FRAME {
                conn.queue_frame(
                    &Message::Error {
                        code: ErrorCode::BadRequest,
                        retry_after_ms: 0,
                        detail: "range proof exceeds frame cap; tighten the bounds".into(),
                    },
                    true,
                    env,
                    now,
                );
                return;
            }
            env.obs.range_requests.inc();
            conn.queue_frame(&Message::RangeResp { oids, proof: bytes }, true, env, now);
        }
        _ => {
            conn.queue_frame(
                &Message::Error {
                    code: ErrorCode::BadRequest,
                    retry_after_ms: 0,
                    detail: "expected FETCH, RESUME, QUERY, RANGE, AE, or STATS".into(),
                },
                false,
                env,
                now,
            );
            conn.drain_then_close();
        }
    }
}

/// Tries to answer a miss on `oid` with a signed non-membership proof.
///
/// Returns `false` (caller falls back to `ERR unknown-object`) when the
/// catalog has no signing identity — or when `oid` actually has records
/// in the shard tree, since a present ID admits no honest gap proof: an
/// offered-list miss on a present object stays a plain error rather than
/// a forged denial.
fn deny<S: Read + Write>(
    conn: &mut Conn<S>,
    oid: ObjectId,
    env: &Env,
    ten: &TenantEnv,
    now: Instant,
) -> bool {
    if ten.catalog.signer.is_none() {
        return false;
    }
    let tree = ten.shard_tree();
    let Some(proof) = DenialProof::prove(&tree, oid) else {
        return false;
    };
    let Some(root) = ten.signed_root(&tree) else {
        return false;
    };
    let denial = SignedDenial {
        root: (*root).clone(),
        proof,
    };
    env.obs.denials.inc();
    conn.queue_frame(
        &Message::Denial {
            proof: denial.to_bytes(),
        },
        true,
        env,
        now,
    );
    true
}

/// Looks up `oid`'s provenance, answering misses with a signed DENIAL
/// proof when the catalog can produce one, else `ERR unknown-object`
/// (the connection stays usable either way).
fn lookup<S: Read + Write>(
    conn: &mut Conn<S>,
    oid: ObjectId,
    env: &Env,
    ten: &TenantEnv,
    now: Instant,
) -> Option<ProvenanceObject> {
    if !ten.catalog.is_offered(oid) || !ten.catalog.forest.contains(oid) {
        if !deny(conn, oid, env, ten, now) {
            conn.queue_frame(
                &Message::Error {
                    code: ErrorCode::UnknownObject,
                    retry_after_ms: 0,
                    detail: format!("object {oid} is not offered"),
                },
                true,
                env,
                now,
            );
        }
        return None;
    }
    match collect(&ten.catalog.db, oid) {
        Ok(p) => Some(p),
        Err(_) => {
            if !deny(conn, oid, env, ten, now) {
                conn.queue_frame(
                    &Message::Error {
                        code: ErrorCode::UnknownObject,
                        retry_after_ms: 0,
                        detail: format!("object {oid} has no provenance"),
                    },
                    true,
                    env,
                    now,
                );
            }
            None
        }
    }
}

/// Begins streaming `prov` (records from `skip` onward — records are
/// already sorted by `(output_oid, seq_id)`, the topological order the
/// client's streaming verifier requires) followed by the full data
/// subtree and DONE with whole-object totals.
fn start_stream<S: Read + Write>(
    conn: &mut Conn<S>,
    oid: ObjectId,
    prov: ProvenanceObject,
    skip: usize,
    env: &Env,
    ten: &TenantEnv,
    now: Instant,
) {
    conn.job = Some(StreamJob {
        data: ten.catalog.data_entries(oid),
        prov,
        next_record: skip,
        data_pos: 0,
        done_queued: false,
    });
    conn.state = ConnState::Streaming;
    pump(conn, env, now);
}

/// The next `DATA` chunk: entries greedily packed by actual encoded size
/// so no frame exceeds the chunk target by more than one entry (identical
/// grouping to the worker-pool server, so resumed transfers stay
/// byte-identical).
fn next_data_chunk(job: &mut StreamJob) -> Vec<DataEntry> {
    let mut chunk = Vec::new();
    let mut chunk_bytes = 0usize;
    while job.data_pos < job.data.len() {
        let entry = &job.data[job.data_pos];
        let entry_bytes = 10 + tep_model::encode::value_bytes(&entry.value).len();
        if !chunk.is_empty() && chunk_bytes + entry_bytes > DATA_CHUNK_BYTES {
            break;
        }
        chunk_bytes += entry_bytes;
        chunk.push(entry.clone());
        job.data_pos += 1;
    }
    chunk
}

/// Advances a streaming job: queues PROV/DATA/DONE frames until the job
/// finishes or the write buffer reaches its high watermark (fairness —
/// `POLLOUT` resumes it later). The connection deadline is checked
/// between frames; exceeding it sends `ERR deadline` and closes, which a
/// resuming client treats as a retryable cut.
fn pump<S: Read + Write>(conn: &mut Conn<S>, env: &Env, now: Instant) {
    while !conn.closed && conn.state == ConnState::Streaming && conn.pending_write() < WBUF_HIGH {
        let Some(done_queued) = conn.job.as_ref().map(|j| j.done_queued) else {
            conn.state = ConnState::Ready;
            return;
        };
        if !done_queued && past_deadline(conn.deadline) {
            refuse_deadline(conn, env, now);
            return;
        }
        let step = {
            let job = conn.job.as_mut().expect("streaming connection owns a job");
            if job.next_record < job.prov.records.len() {
                let record = job.prov.records[job.next_record].to_stored();
                job.next_record += 1;
                StreamStep::Prov(Box::new(Message::Prov { record }))
            } else if job.data_pos < job.data.len() {
                StreamStep::Data(next_data_chunk(job))
            } else if !job.done_queued {
                job.done_queued = true;
                StreamStep::Done {
                    records: job.prov.records.len() as u64,
                    nodes: job.data.len() as u64,
                }
            } else {
                StreamStep::Finished
            }
        };
        match step {
            StreamStep::Prov(msg) => conn.queue_frame(&msg, true, env, now),
            StreamStep::Data(entries) => {
                conn.queue_frame(&Message::Data { entries }, true, env, now)
            }
            StreamStep::Done { records, nodes } => {
                conn.queue_frame(&Message::Done { records, nodes }, true, env, now)
            }
            StreamStep::Finished => {
                conn.job = None;
                conn.state = ConnState::Ready;
                return;
            }
        }
    }
}

/// Fills the read buffer and parses/dispatches every complete frame
/// buffered so far. Returns after the connection stops wanting reads
/// (streaming, draining, closed) or the buffer runs dry; pipelined
/// requests left in `rbuf` are picked up when the state returns to
/// `Ready`.
fn service_readable<S: Read + Write>(conn: &mut Conn<S>, env: &Env, now: Instant) {
    let outcome = conn.fill(now);
    if matches!(outcome, FillOutcome::Error) {
        conn.close_aborting(&env.obs);
        return;
    }
    drain_parsed_frames(conn, env, now);
    if matches!(outcome, FillOutcome::Eof)
        && !conn.closed
        && matches!(conn.state, ConnState::Handshake | ConnState::Ready)
    {
        // Clean close from the peer: flush whatever is queued, then close.
        conn.drain_then_close();
    }
}

/// Parses and dispatches buffered frames while the connection is in a
/// frame-accepting state.
fn drain_parsed_frames<S: Read + Write>(conn: &mut Conn<S>, env: &Env, now: Instant) {
    while conn.wants_read() {
        match conn.try_parse(&env.counters) {
            Ok(Some(msg)) => {
                let started = Instant::now();
                let in_ready = conn.state == ConnState::Ready;
                let mut completed = false;
                run_isolated(&env.counters, || {
                    dispatch(conn, msg, env, now);
                    completed = true;
                });
                if !completed {
                    // The dispatch panicked mid-flight; its state is gone
                    // (unwound), so the connection cannot continue.
                    conn.close_now();
                }
                if in_ready {
                    env.loop_obs.turnaround.observe_duration(started.elapsed());
                }
            }
            Ok(None) => return,
            Err(_) => {
                // Oversized/corrupt/malformed frame: the stream is
                // poisoned — drop it (no protocol answer is trustworthy).
                conn.close_now();
                return;
            }
        }
    }
}

/// Per-tick timer sweep for one connection: idle requests and stalled
/// writers are bounded even when no readiness event ever fires.
fn check_timers<S: Read + Write>(
    conn: &mut Conn<S>,
    cfg: &ServerConfig,
    obs: &ServerObs,
    now: Instant,
) {
    if conn.closed {
        return;
    }
    if conn.pending_write() > 0 {
        if now.duration_since(conn.write_activity) >= cfg.write_timeout {
            conn.close_aborting(obs);
        }
    } else if matches!(conn.state, ConnState::Handshake | ConnState::Ready)
        && now.duration_since(conn.read_activity) >= cfg.read_timeout
    {
        conn.close_now();
    }
}

/// The single-threaded event loop: owns the listener and every
/// connection, multiplexed over `poll(2)`.
struct EventLoop {
    env: Env,
    cfg: ServerConfig,
    shared: Arc<Shared>,
    conns: Vec<Conn<TcpStream>>,
}

impl EventLoop {
    fn run(mut self, listener: TcpListener) {
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let mut shutdown_since: Option<Instant> = None;
        loop {
            let now = Instant::now();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                let since = *shutdown_since.get_or_insert(now);
                let grace = self.cfg.write_timeout.min(SHUTDOWN_GRACE_CAP);
                let grace_over = now.duration_since(since) >= grace;
                for c in &mut self.conns {
                    if (c.pending_write() == 0 && c.job.is_none()) || grace_over {
                        c.close_aborting(&self.env.obs);
                    }
                }
            }
            // Closed connections release their tenant's admission slot
            // exactly once: decremented here, then dropped by the retain.
            for c in &self.conns {
                if c.closed {
                    if let Some(te) = c.tenant.and_then(|t| self.env.tenants.get(&t)) {
                        te.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            self.conns.retain(|c| !c.closed);
            if shutdown_since.is_some() && self.conns.is_empty() {
                break;
            }

            let poll_listener = shutdown_since.is_none();
            fds.clear();
            if poll_listener {
                fds.push(sys::PollFd::new(listener.as_raw_fd(), sys::POLLIN));
            }
            for c in &self.conns {
                fds.push(sys::PollFd::new(c.stream.as_raw_fd(), c.wanted_events()));
            }
            let _ = sys::poll_fds(&mut fds, POLL_TICK);
            self.env.loop_obs.wakeups.inc();

            let base = usize::from(poll_listener);
            let n_existing = self.conns.len();
            if poll_listener && fds[0].readable() {
                self.accept_burst(&listener, now);
            }
            // New conns were appended past `n_existing`; indices of the
            // polled ones are unchanged.
            for i in 0..n_existing {
                self.handle_events(i, fds[base + i], now);
            }

            let now = Instant::now();
            for c in &mut self.conns {
                check_timers(c, &self.cfg, &self.env.obs, now);
            }
            self.publish_gauges();
        }
        self.conns.clear();
        self.publish_gauges();
    }

    fn accept_burst(&mut self, listener: &TcpListener, now: Instant) {
        for _ in 0..ACCEPT_BURST {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.env.obs.connections.inc();
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let deadline = Instant::now().checked_add(self.cfg.connection_deadline);
                    let active = self.conns.iter().filter(|c| !c.refused).count();
                    let mut conn = Conn::new(stream, deadline, now);
                    if active >= self.cfg.effective_watermark() {
                        // Best-effort `ERR busy` + `Retry-After` so the
                        // refused client sees a protocol answer (and a
                        // backoff hint scaled to the backlog) rather than
                        // a bare RST.
                        self.env.obs.busy_rejections.inc();
                        self.env.obs.shed.inc();
                        conn.refused = true;
                        conn.queue_frame(
                            &Message::Error {
                                code: ErrorCode::Busy,
                                retry_after_ms: shed_retry_after_ms(active),
                                detail: "accept queue full".into(),
                            },
                            false,
                            &self.env,
                            now,
                        );
                        conn.drain_then_close();
                    }
                    if !conn.closed {
                        self.conns.push(conn);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn handle_events(&mut self, i: usize, pfd: sys::PollFd, now: Instant) {
        let conn = &mut self.conns[i];
        if conn.closed {
            return;
        }
        if pfd.error() {
            conn.close_aborting(&self.env.obs);
            return;
        }
        if pfd.writable() && conn.pending_write() > 0 {
            conn.flush(&self.env.obs, now);
        }
        if !conn.closed && conn.state == ConnState::Streaming && conn.pending_write() < WBUF_HIGH {
            let env = &self.env;
            run_isolated(&env.counters, || pump(conn, env, now));
        }
        let conn = &mut self.conns[i];
        if !conn.closed && pfd.readable() && conn.wants_read() {
            service_readable(conn, &self.env, now);
        }
        let conn = &mut self.conns[i];
        if !conn.closed && pfd.hangup() && !pfd.readable() {
            // Peer fully closed while we were not reading (streaming or
            // draining): any bytes still owed are lost.
            conn.close_aborting(&self.env.obs);
        }
    }

    /// Single-writer gauge refresh: absolute counts per state, published
    /// once per wakeup.
    fn publish_gauges(&self) {
        let mut handshake = 0i64;
        let mut ready = 0i64;
        let mut streaming = 0i64;
        let mut draining = 0i64;
        for c in &self.conns {
            match c.state {
                ConnState::Handshake => handshake += 1,
                ConnState::Ready => ready += 1,
                ConnState::Streaming => streaming += 1,
                ConnState::Draining => draining += 1,
            }
        }
        let lo = &self.env.loop_obs;
        lo.open.set(self.conns.len() as i64);
        lo.handshake.set(handshake);
        lo.ready.set(ready);
        lo.streaming.set(streaming);
        lo.draining.set(draining);
    }
}

/// A running server; dropping (or calling [`Self::shutdown`]) stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    counters: Arc<TransferCounters>,
    registry: Registry,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregated transfer counters across all connections so far.
    pub fn counters(&self) -> TransferSnapshot {
        self.counters.snapshot()
    }

    /// The server's metric registry: `tep_net_*` counters plus whatever the
    /// caller pre-registered. This is the registry STATS frames expose.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Stops accepting, drains in-flight connections (bounded grace), and
    /// joins the event-loop thread.
    pub fn shutdown(self) {
        self.stop();
    }

    fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for t in lock_recover(&self.threads).drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves `catalog`
/// until the returned handle is shut down or dropped. The server records
/// its `tep_net_*` metrics into a private registry, readable via
/// [`ServerHandle::registry`] or a STATS frame.
pub fn serve(
    catalog: Arc<Catalog>,
    addr: SocketAddr,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_with_registry(catalog, addr, cfg, Registry::new())
}

/// Like [`serve`], but records metrics into the caller's `registry` — so a
/// process embedding the server can expose net traffic next to its other
/// metrics (and a STATS frame shows them all). Single-tenant: the catalog
/// is provisioned under [`TenantId::DEFAULT`] with no quota, so existing
/// clients (which state tenant 0) are admitted unchanged.
pub fn serve_with_registry(
    catalog: Arc<Catalog>,
    addr: SocketAddr,
    cfg: ServerConfig,
    registry: Registry,
) -> io::Result<ServerHandle> {
    serve_tenants(
        vec![TenantSpec::new(TenantId::DEFAULT, catalog)],
        addr,
        cfg,
        registry,
    )
}

/// Serves a set of tenants from one listener, each under its own scope:
/// independent catalog (and thus shard/caches/query engine), its own
/// connection quota and deadline budget, and tenant-labeled admission
/// counters. Connections pick their tenant in HELLO; an unknown or
/// disabled tenant is refused with non-retryable `ERR unknown-tenant`.
pub fn serve_tenants(
    tenants: Vec<TenantSpec>,
    addr: SocketAddr,
    cfg: ServerConfig,
    registry: Registry,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
    });
    let counters = Arc::new(TransferCounters::observed(&registry));
    let env = Env {
        tenants: tenants
            .into_iter()
            .map(|spec| TenantEnv::new(spec, &registry))
            .collect(),
        counters: Arc::clone(&counters),
        obs: ServerObs::new(&registry),
        loop_obs: LoopObs::new(&registry),
        registry: registry.clone(),
    };
    let ev = EventLoop {
        env,
        cfg,
        shared: Arc::clone(&shared),
        conns: Vec::new(),
    };
    let thread = std::thread::Builder::new()
        .name("tep-net-loop".into())
        .spawn(move || ev.run(listener))?;

    Ok(ServerHandle {
        addr: local,
        shared,
        threads: Mutex::new(vec![thread]),
        counters,
        registry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::thread;

    #[test]
    fn run_isolated_catches_and_counts_panics() {
        let counters = TransferCounters::new();
        run_isolated(&counters, || {});
        assert_eq!(counters.snapshot().worker_panics, 0);
        run_isolated(&counters, || panic!("connection handler exploded"));
        run_isolated(&counters, || panic!("again"));
        assert_eq!(counters.snapshot().worker_panics, 2);
        // The thread is still alive to run more work.
        run_isolated(&counters, || {});
        assert_eq!(counters.snapshot().worker_panics, 2);
    }

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(VecDeque::from([1, 2, 3])));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        // Queue contents are still intact and usable.
        let mut q = lock_recover(&m);
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn wait_timeout_recovers_from_poison() {
        let m = Arc::new((Mutex::new(0u32), std::sync::Condvar::new()));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.0.lock().unwrap();
            panic!("poison");
        })
        .join();
        let guard = lock_recover(&m.0);
        let (guard, timeout) =
            m.1.wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
        assert!(timeout.timed_out());
        assert_eq!(*guard, 0);
    }

    #[test]
    fn shed_hint_scales_with_backlog_and_saturates() {
        assert_eq!(shed_retry_after_ms(0), 25);
        assert_eq!(shed_retry_after_ms(3), 100);
        assert_eq!(shed_retry_after_ms(1_000_000), 1_000);
        assert_eq!(shed_retry_after_ms(usize::MAX), 1_000);
    }

    #[test]
    fn effective_watermark_never_exceeds_the_hard_cap() {
        let mut cfg = ServerConfig::default();
        assert_eq!(cfg.effective_watermark(), cfg.queue_depth);
        cfg.shed_watermark = 4;
        assert_eq!(cfg.effective_watermark(), 4);
        cfg.queue_depth = 2;
        assert_eq!(cfg.effective_watermark(), 2);
    }

    // ── Connection state machine against scripted streams ──────────────
    //
    // Every state (Handshake/Ready/Streaming/Draining) crossed with the
    // readiness events the loop can deliver (readable, writable, error,
    // EOF) and the I/O shapes a nonblocking socket produces (short reads,
    // short writes, WouldBlock, hard errors).

    use std::io::Cursor;
    use std::sync::OnceLock;

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tep_core::hashing::HashingStrategy;
    use tep_core::{ProvenanceTracker, TrackerConfig};
    use tep_crypto::pki::{CertificateAuthority, ParticipantId};
    use tep_model::Value;

    use crate::wire::FrameReader;

    const ALG: HashAlgorithm = HashAlgorithm::Sha256;

    /// A scripted nonblocking stream: reads pop chunks off a queue (an
    /// empty chunk is EOF, an empty queue is WouldBlock), writes collect
    /// into a buffer and can be capped short, blocked, or broken.
    #[derive(Default)]
    struct FakeStream {
        to_read: VecDeque<Vec<u8>>,
        written: Vec<u8>,
        /// Max bytes accepted per write call (short writes).
        write_cap: Option<usize>,
        /// All writes return WouldBlock.
        blocked: bool,
        /// All writes return BrokenPipe.
        broken: bool,
    }

    impl Read for FakeStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.to_read.pop_front() {
                None => Err(io::ErrorKind::WouldBlock.into()),
                Some(chunk) if chunk.is_empty() => Ok(0),
                Some(chunk) => {
                    let n = chunk.len().min(buf.len());
                    buf[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.to_read.push_front(chunk[n..].to_vec());
                    }
                    Ok(n)
                }
            }
        }
    }

    impl Write for FakeStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.broken {
                return Err(io::ErrorKind::BrokenPipe.into());
            }
            if self.blocked {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = self.write_cap.map_or(buf.len(), |cap| cap.min(buf.len()));
            self.written.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// The expensive world parts (RSA keygen), built once per process:
    /// a catalog offering one compound object (root + one child node,
    /// three provenance records).
    fn shared_world() -> &'static (Arc<Catalog>, ObjectId) {
        static WORLD: OnceLock<(Arc<Catalog>, ObjectId)> = OnceLock::new();
        WORLD.get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(0xE7E7);
            let ca = CertificateAuthority::new(512, ALG, &mut rng);
            let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
            let db = Arc::new(ProvenanceDb::in_memory());
            let mut tracker = ProvenanceTracker::new(
                TrackerConfig {
                    alg: ALG,
                    strategy: HashingStrategy::Economical,
                },
                Arc::clone(&db),
            );
            let (root, _) = tracker
                .insert(&alice, Value::Text("root".into()), None)
                .unwrap();
            tracker.insert(&alice, Value::Int(7), Some(root)).unwrap();
            tracker
                .update(&alice, root, Value::Text("root2".into()))
                .unwrap();
            let catalog = Arc::new(Catalog::new(tracker.forest().clone(), db, ALG, vec![root]));
            (catalog, root)
        })
    }

    fn test_env() -> (Env, ObjectId) {
        let (catalog, root) = shared_world();
        test_env_with(
            vec![TenantSpec::new(TenantId::DEFAULT, Arc::clone(catalog))],
            *root,
        )
    }

    fn test_env_with(tenants: Vec<TenantSpec>, root: ObjectId) -> (Env, ObjectId) {
        let registry = Registry::new();
        let env = Env {
            tenants: tenants
                .into_iter()
                .map(|spec| TenantEnv::new(spec, &registry))
                .collect(),
            counters: Arc::new(TransferCounters::new()),
            obs: ServerObs::new(&registry),
            loop_obs: LoopObs::new(&registry),
            registry: registry.clone(),
        };
        (env, root)
    }

    fn frame(msg: &Message) -> Vec<u8> {
        let mut f = Vec::new();
        frame_message_into(msg, &mut f);
        f
    }

    fn hello() -> Message {
        Message::Hello {
            version: WIRE_VERSION,
            alg: ALG,
            tenant: TenantId::DEFAULT.raw(),
        }
    }

    /// Decodes every frame the connection has written so far.
    fn written_messages(conn: &Conn<FakeStream>) -> Vec<Message> {
        let mut r = FrameReader::new(
            Cursor::new(conn.stream.written.clone()),
            Arc::new(TransferCounters::new()),
        );
        let mut out = Vec::new();
        while let Some(m) = r.read_message().expect("clean reply stream") {
            out.push(m);
        }
        out
    }

    /// Pumps the read path until the script runs dry or the conn closes.
    fn drive(conn: &mut Conn<FakeStream>, env: &Env) {
        for _ in 0..200 {
            if conn.closed || conn.stream.to_read.is_empty() {
                break;
            }
            service_readable(conn, env, Instant::now());
        }
        if !conn.closed {
            service_readable(conn, env, Instant::now());
        }
    }

    fn handshaken(env: &Env) -> Conn<FakeStream> {
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream.to_read.push_back(frame(&hello()));
        drive(&mut conn, env);
        assert_eq!(conn.state, ConnState::Ready);
        conn
    }

    #[test]
    fn handshake_completes_across_byte_sized_reads() {
        let (env, _) = test_env();
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        for b in frame(&hello()) {
            conn.stream.to_read.push_back(vec![b]);
        }
        drive(&mut conn, &env);
        assert_eq!(conn.state, ConnState::Ready);
        let replies = written_messages(&conn);
        assert!(matches!(replies[0], Message::Hello { .. }));
        assert!(matches!(replies[1], Message::Offer { .. }));
        assert_eq!(replies.len(), 2);
    }

    #[test]
    fn handshake_version_mismatch_answers_and_closes() {
        let (env, _) = test_env();
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream.to_read.push_back(frame(&Message::Hello {
            version: WIRE_VERSION + 1,
            alg: ALG,
            tenant: TenantId::DEFAULT.raw(),
        }));
        drive(&mut conn, &env);
        assert!(conn.closed);
        let replies = written_messages(&conn);
        assert!(matches!(
            &replies[..],
            [Message::Error {
                code: ErrorCode::VersionMismatch,
                ..
            }]
        ));
    }

    #[test]
    fn handshake_non_hello_is_a_bad_request() {
        let (env, root) = test_env();
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        assert!(conn.closed);
        match &written_messages(&conn)[..] {
            [Message::Error { code, detail, .. }] => {
                assert_eq!(*code, ErrorCode::BadRequest);
                assert_eq!(detail, "expected HELLO");
            }
            other => panic!("unexpected replies: {other:?}"),
        }
    }

    #[test]
    fn hello_unknown_tenant_is_a_typed_nonretryable_error() {
        let (env, _) = test_env();
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream.to_read.push_back(frame(&Message::Hello {
            version: WIRE_VERSION,
            alg: ALG,
            tenant: 9,
        }));
        drive(&mut conn, &env);
        assert!(conn.closed);
        assert_eq!(env.obs.tenant_rejections.value(), 1);
        // Distinct from busy: no Retry-After, non-retryable error code.
        match &written_messages(&conn)[..] {
            [Message::Error {
                code: ErrorCode::UnknownTenant,
                retry_after_ms: 0,
                detail,
            }] => assert!(detail.contains("t9"), "detail names the tenant: {detail}"),
            other => panic!("unexpected replies: {other:?}"),
        }
    }

    #[test]
    fn hello_disabled_tenant_is_indistinguishable_from_unknown() {
        let (catalog, root) = shared_world();
        let (env, _) = test_env_with(
            vec![TenantSpec::new(TenantId::DEFAULT, Arc::clone(catalog)).disabled()],
            *root,
        );
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream.to_read.push_back(frame(&hello()));
        drive(&mut conn, &env);
        assert!(conn.closed);
        assert_eq!(env.obs.tenant_rejections.value(), 1);
        assert!(matches!(
            &written_messages(&conn)[..],
            [Message::Error {
                code: ErrorCode::UnknownTenant,
                ..
            }]
        ));
    }

    #[test]
    fn tenant_quota_sheds_with_tenant_scaled_hint() {
        let (catalog, root) = shared_world();
        let (env, _) = test_env_with(
            vec![TenantSpec::new(TenantId::DEFAULT, Arc::clone(catalog)).with_max_connections(2)],
            *root,
        );
        let _a = handshaken(&env);
        let _b = handshaken(&env);
        let ten = env.tenants.get(&TenantId::DEFAULT.raw()).unwrap();
        assert_eq!(ten.active.load(Ordering::SeqCst), 2);

        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream.to_read.push_back(frame(&hello()));
        drive(&mut conn, &env);
        assert!(conn.closed);
        match written_messages(&conn).last() {
            Some(Message::Error {
                code: ErrorCode::Busy,
                retry_after_ms,
                ..
            }) => assert_eq!(*retry_after_ms, shed_retry_after_ms(2)),
            other => panic!("expected ERR busy, got {other:?}"),
        }
        // Exact accounting, aggregate and tenant-labeled.
        assert_eq!(env.obs.tenant_quota_sheds.value(), 1);
        assert_eq!(env.obs.shed.value(), 1);
        assert_eq!(ten.quota_sheds.value(), 1);
        assert_eq!(ten.shed.value(), 1);
        assert_eq!(ten.connections.value(), 2);
        // The refused HELLO admitted nothing.
        assert_eq!(ten.active.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn tenant_deadline_budget_tightens_the_connection_deadline() {
        let (catalog, root) = shared_world();
        let (env, root) = test_env_with(
            vec![TenantSpec::new(TenantId::DEFAULT, Arc::clone(catalog))
                .with_deadline(Duration::from_millis(0))],
            *root,
        );
        // No accept-time deadline at all: the tenant budget alone binds.
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream.to_read.push_back(frame(&hello()));
        drive(&mut conn, &env);
        assert_eq!(conn.state, ConnState::Ready, "handshake still completes");
        assert!(
            conn.deadline.is_some(),
            "tenant budget installed a deadline"
        );
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        assert!(conn.closed);
        assert_eq!(env.obs.deadline_closes.value(), 1);
        assert!(matches!(
            written_messages(&conn).last(),
            Some(Message::Error {
                code: ErrorCode::Deadline,
                ..
            })
        ));
    }

    #[test]
    fn tenants_are_routed_to_their_own_catalogs() {
        // Two tenants, two disjoint catalogs: an oid offered to tenant 1
        // must not resolve for tenant 2, and vice versa.
        let (catalog, root) = shared_world();
        let empty = Arc::new(Catalog::new(
            Forest::new(),
            Arc::new(ProvenanceDb::in_memory()),
            ALG,
            Vec::new(),
        ));
        let (env, root) = test_env_with(
            vec![
                TenantSpec::new(TenantId(1), Arc::clone(catalog)),
                TenantSpec::new(TenantId(2), empty),
            ],
            *root,
        );
        let hello_t = |t: u64| Message::Hello {
            version: WIRE_VERSION,
            alg: ALG,
            tenant: t,
        };

        let mut one = Conn::new(FakeStream::default(), None, Instant::now());
        one.stream.to_read.push_back(frame(&hello_t(1)));
        one.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut one, &env);
        assert!(matches!(
            written_messages(&one).last(),
            Some(Message::Done { .. })
        ));

        let mut two = Conn::new(FakeStream::default(), None, Instant::now());
        two.stream.to_read.push_back(frame(&hello_t(2)));
        two.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut two, &env);
        assert!(
            written_messages(&two).iter().any(|m| matches!(
                m,
                Message::Error {
                    code: ErrorCode::UnknownObject,
                    ..
                }
            )),
            "tenant 2 must not see tenant 1's object"
        );
        // Per-tenant OFFER manifests differ too.
        let offer_of = |msgs: &[Message]| {
            msgs.iter()
                .find_map(|m| match m {
                    Message::Offer { entries } => Some(entries.len()),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(offer_of(&written_messages(&one)), 1);
        assert_eq!(offer_of(&written_messages(&two)), 0);
    }

    #[test]
    fn fetch_streams_prov_data_done_and_returns_to_ready() {
        let (env, root) = test_env();
        let mut conn = handshaken(&env);
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        assert_eq!(conn.state, ConnState::Ready);
        assert!(conn.job.is_none());
        assert_eq!(env.obs.fetches.value(), 1);
        let prov = collect(&shared_world().0.db, root).unwrap();
        let replies = written_messages(&conn);
        let provs = replies
            .iter()
            .filter(|m| matches!(m, Message::Prov { .. }))
            .count();
        assert_eq!(provs, prov.records.len());
        match replies.last() {
            Some(Message::Done { records, nodes }) => {
                assert_eq!(*records, prov.records.len() as u64);
                assert_eq!(*nodes, 2); // root + one child
            }
            other => panic!("expected DONE, got {other:?}"),
        }
    }

    #[test]
    fn short_writes_still_deliver_the_whole_stream() {
        let (env, root) = test_env();
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream.write_cap = Some(3);
        conn.stream.to_read.push_back(frame(&hello()));
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        assert_eq!(conn.state, ConnState::Ready);
        assert_eq!(conn.pending_write(), 0);
        assert!(matches!(
            written_messages(&conn).last(),
            Some(Message::Done { .. })
        ));
    }

    #[test]
    fn blocked_socket_buffers_frames_until_writable() {
        let (env, root) = test_env();
        let mut conn = handshaken(&env);
        let before = conn.stream.written.len();
        conn.stream.blocked = true;
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        // Nothing reached the socket; the frames wait in the backlog and
        // an abortable reply is owed.
        assert_eq!(conn.stream.written.len(), before);
        assert!(conn.pending_write() > 0);
        assert!(conn.abort_owed);
        assert!(!conn.closed);
        // POLLOUT: the backlog drains and the stream completes.
        conn.stream.blocked = false;
        conn.flush(&env.obs, Instant::now());
        assert_eq!(conn.pending_write(), 0);
        assert!(!conn.abort_owed);
        assert!(matches!(
            written_messages(&conn).last(),
            Some(Message::Done { .. })
        ));
    }

    #[test]
    fn streaming_pauses_at_the_write_high_watermark() {
        let (env, root) = test_env();
        let mut conn = handshaken(&env);
        conn.stream.blocked = true;
        // A synthetic job big enough to out-run the watermark.
        let big = vec![
            DataEntry {
                depth: 0,
                id: ObjectId(1),
                value: Value::Text("x".repeat(1024)),
            };
            600
        ];
        conn.job = Some(StreamJob {
            prov: ProvenanceObject {
                target: root,
                records: Vec::new(),
            },
            data: big,
            next_record: 0,
            data_pos: 0,
            done_queued: false,
        });
        conn.state = ConnState::Streaming;
        pump(&mut conn, &env, Instant::now());
        // Paused: job unfinished, backlog parked just past the watermark.
        assert_eq!(conn.state, ConnState::Streaming);
        assert!(conn.job.is_some());
        assert!(conn.pending_write() >= WBUF_HIGH);
        assert!(conn.pending_write() < WBUF_HIGH + DATA_CHUNK_BYTES + 4096);
        // Writable again: alternating flush/pump finishes the job.
        conn.stream.blocked = false;
        for _ in 0..100 {
            conn.flush(&env.obs, Instant::now());
            pump(&mut conn, &env, Instant::now());
            if conn.state == ConnState::Ready && conn.pending_write() == 0 {
                break;
            }
        }
        assert_eq!(conn.state, ConnState::Ready);
        assert!(matches!(
            written_messages(&conn).last(),
            Some(Message::Done { .. })
        ));
    }

    #[test]
    fn unknown_object_error_keeps_the_connection_usable() {
        let (env, root) = test_env();
        let mut conn = handshaken(&env);
        conn.stream.to_read.push_back(frame(&Message::Fetch {
            oid: ObjectId(0xDEAD),
        }));
        drive(&mut conn, &env);
        assert_eq!(conn.state, ConnState::Ready);
        assert!(!conn.closed);
        assert!(written_messages(&conn).iter().any(|m| matches!(
            m,
            Message::Error {
                code: ErrorCode::UnknownObject,
                ..
            }
        )));
        // The same connection still serves a real fetch.
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        assert!(matches!(
            written_messages(&conn).last(),
            Some(Message::Done { .. })
        ));
    }

    #[test]
    fn resume_at_offset_replays_only_the_tail() {
        let (env, root) = test_env();
        let prov = collect(&shared_world().0.db, root).unwrap();
        let total = prov.records.len();
        assert!(total >= 2, "world must have a resumable prefix");
        let k = 1usize;
        let mut digest = RecordStreamDigest::new(ALG, root);
        for r in &prov.records[..k] {
            digest.push(&r.to_stored().to_bytes());
        }
        let mut conn = handshaken(&env);
        conn.stream.to_read.push_back(frame(&Message::Resume {
            oid: root,
            records: k as u64,
            digest: digest.current().to_vec(),
        }));
        drive(&mut conn, &env);
        assert_eq!(conn.state, ConnState::Ready);
        let replies: Vec<Message> = written_messages(&conn)[2..].to_vec();
        assert!(matches!(
            replies[0],
            Message::ResumeOk { records, .. } if records == k as u64
        ));
        let provs = replies
            .iter()
            .filter(|m| matches!(m, Message::Prov { .. }))
            .count();
        assert_eq!(provs, total - k);
        assert!(matches!(
            replies.last(),
            Some(Message::Done { records, .. }) if *records == total as u64
        ));
    }

    #[test]
    fn resume_digest_mismatch_is_refused_but_conn_survives() {
        let (env, root) = test_env();
        let mut conn = handshaken(&env);
        conn.stream.to_read.push_back(frame(&Message::Resume {
            oid: root,
            records: 1,
            digest: vec![0u8; 32],
        }));
        drive(&mut conn, &env);
        assert_eq!(conn.state, ConnState::Ready);
        assert!(!conn.closed);
        assert_eq!(env.obs.resumes.value(), 1);
        assert!(matches!(
            written_messages(&conn).last(),
            Some(Message::Error {
                code: ErrorCode::ResumeMismatch,
                ..
            })
        ));
    }

    #[test]
    fn requests_after_deadline_get_a_retryable_deadline_error() {
        let (env, root) = test_env();
        // Deadline already spent — but the handshake must still complete
        // so the client gets a protocol-level answer, not a hang.
        let mut conn = Conn::new(FakeStream::default(), Some(Instant::now()), Instant::now());
        conn.stream.to_read.push_back(frame(&hello()));
        drive(&mut conn, &env);
        assert_eq!(conn.state, ConnState::Ready);
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        assert!(conn.closed);
        assert_eq!(env.obs.deadline_closes.value(), 1);
        match written_messages(&conn).last() {
            Some(Message::Error {
                code,
                retry_after_ms,
                ..
            }) => {
                assert_eq!(*code, ErrorCode::Deadline);
                assert_eq!(*retry_after_ms, 10);
            }
            other => panic!("expected ERR deadline, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_frame_closes_without_a_reply() {
        let (env, root) = test_env();
        let mut conn = handshaken(&env);
        let sent_before = conn.stream.written.len();
        let mut bad = frame(&Message::Fetch { oid: root });
        let last = bad.len() - 1;
        bad[last] ^= 0xFF; // CRC no longer matches
        conn.stream.to_read.push_back(bad);
        drive(&mut conn, &env);
        assert!(conn.closed);
        assert_eq!(
            conn.stream.written.len(),
            sent_before,
            "a poisoned stream gets no protocol answer"
        );
    }

    #[test]
    fn peer_eof_flushes_queued_replies_then_closes() {
        let (env, _) = test_env();
        let mut conn = Conn::new(FakeStream::default(), None, Instant::now());
        conn.stream.to_read.push_back(frame(&hello()));
        conn.stream.to_read.push_back(Vec::new()); // EOF
        drive(&mut conn, &env);
        assert!(conn.closed);
        let replies = written_messages(&conn);
        assert_eq!(replies.len(), 2, "HELLO/OFFER still go out before close");
    }

    #[test]
    fn write_error_mid_stream_counts_an_abort() {
        let (env, root) = test_env();
        let mut conn = handshaken(&env);
        conn.stream.broken = true;
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        assert!(conn.closed);
        assert_eq!(env.obs.write_aborts.value(), 1);
    }

    #[test]
    fn idle_connection_times_out_silently() {
        let (env, _) = test_env();
        let cfg = ServerConfig::default();
        let mut conn = handshaken(&env);
        let sent_before = conn.stream.written.len();
        check_timers(&mut conn, &cfg, &env.obs, Instant::now() + cfg.read_timeout);
        assert!(conn.closed);
        assert_eq!(conn.stream.written.len(), sent_before);
        assert_eq!(env.obs.write_aborts.value(), 0);
    }

    #[test]
    fn stalled_writer_times_out_and_counts_the_owed_abort() {
        let (env, root) = test_env();
        let cfg = ServerConfig::default();
        let mut conn = handshaken(&env);
        conn.stream.blocked = true;
        conn.stream
            .to_read
            .push_back(frame(&Message::Fetch { oid: root }));
        drive(&mut conn, &env);
        assert!(conn.pending_write() > 0 && conn.abort_owed);
        // No progress within the write budget: the peer is gone.
        check_timers(
            &mut conn,
            &cfg,
            &env.obs,
            Instant::now() + cfg.write_timeout,
        );
        assert!(conn.closed);
        assert_eq!(env.obs.write_aborts.value(), 1);
    }

    #[test]
    fn dispatch_panic_is_isolated_to_the_connection() {
        let (env, _) = test_env();
        let mut conn = handshaken(&env);
        // Mirror drain_parsed_frames' isolation contract: a panicking
        // dispatch is counted, and the conn (whose mid-flight state is
        // gone) is closed rather than left half-mutated.
        let mut completed = false;
        run_isolated(&env.counters, || {
            conn.state = ConnState::Streaming;
            panic!("handler exploded");
        });
        if !completed {
            conn.close_now();
        }
        completed = true;
        assert!(completed && conn.closed);
        assert_eq!(env.counters.snapshot().worker_panics, 1);
    }
}
