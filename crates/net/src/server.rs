//! Multithreaded TCP server for provenance exchange.
//!
//! std-only: a nonblocking accept loop feeds a **bounded** hand-off queue
//! (overflow connections are refused with `ERR busy` instead of queueing
//! unboundedly), a fixed pool of worker threads drains it, and every
//! connection socket carries read/write timeouts so a stalled peer cannot
//! pin a worker forever. [`ServerHandle::shutdown`] stops the accept loop,
//! wakes the workers, and joins every thread.
//!
//! Graceful degradation under load: connections arriving while the queue
//! is at the shed watermark are refused with `ERR busy` *plus* a
//! `Retry-After` hint scaled to the backlog, every connection is bounded by
//! a wall-clock deadline (`ERR deadline` + close, resumable), and a peer
//! that vanishes mid-transfer is counted in `tep_net_write_aborts_total`
//! rather than folded into generic i/o noise.
//!
//! Per connection the server speaks the `wire` protocol:
//!
//! ```text
//! client  HELLO ───────────▶
//!         ◀─────────── HELLO   (version/alg must match; else ERR + close)
//!         ◀─────────── OFFER   (manifest of served objects)
//! client  FETCH oid ───────▶
//!         ◀─ PROV × N         (records of the full provenance DAG,
//!                              sorted by (output_oid, seq_id))
//!         ◀─ DATA × M         (data subtree, depth-tagged DFS preorder)
//!         ◀─ DONE             (totals)
//!         … more FETCHes, or client closes …
//! ```
//!
//! A client resuming a cut transfer sends `RESUME oid k digest` instead of
//! `FETCH`; the server recomputes the record-stream digest over the first
//! `k` records it would have sent and answers `RESUME_OK` + the tail of
//! the stream only if the prefix is byte-identical — otherwise
//! `ERR resume-mismatch` (see `tep_core::streaming::RecordStreamDigest`).

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tep_core::metrics::{TransferCounters, TransferSnapshot};
use tep_core::provenance::{collect, ProvenanceObject};
use tep_core::streaming::RecordStreamDigest;
use tep_crypto::digest::HashAlgorithm;
use tep_model::{Forest, ObjectId};
use tep_obs::{names, Counter, Registry};
use tep_storage::ProvenanceDb;

use crate::wire::{
    DataEntry, ErrorCode, FrameReader, FrameWriter, Message, OfferEntry, WireError,
    DATA_CHUNK_BYTES, WIRE_VERSION,
};

/// What a server serves: a snapshot of the data forest, the provenance
/// store, and the set of objects offered to clients.
pub struct Catalog {
    forest: Forest,
    db: Arc<ProvenanceDb>,
    alg: HashAlgorithm,
    offered: Vec<ObjectId>,
}

impl Catalog {
    /// Builds a catalog offering `offered` (deduplicated, sorted).
    pub fn new(
        forest: Forest,
        db: Arc<ProvenanceDb>,
        alg: HashAlgorithm,
        mut offered: Vec<ObjectId>,
    ) -> Self {
        offered.sort();
        offered.dedup();
        Catalog {
            forest,
            db,
            alg,
            offered,
        }
    }

    /// The hash algorithm this catalog's hashes use.
    pub fn alg(&self) -> HashAlgorithm {
        self.alg
    }

    /// The OFFER manifest.
    pub fn offer_entries(&self) -> Vec<OfferEntry> {
        self.offered
            .iter()
            .map(|&oid| OfferEntry {
                oid,
                records: self.db.records_for(oid).len() as u64,
                nodes: if self.forest.contains(oid) {
                    self.forest.subtree_ids(oid).len() as u64
                } else {
                    0
                },
            })
            .collect()
    }

    fn is_offered(&self, oid: ObjectId) -> bool {
        self.offered.binary_search(&oid).is_ok()
    }

    /// The depth-tagged DFS preorder walk of `root`'s data subtree.
    fn data_entries(&self, root: ObjectId) -> Vec<DataEntry> {
        let mut out = Vec::new();
        let mut work = vec![(0u16, root)];
        while let Some((depth, id)) = work.pop() {
            let Some(node) = self.forest.node(id) else {
                continue;
            };
            out.push(DataEntry {
                depth,
                id,
                value: node.value().clone(),
            });
            let kids: Vec<ObjectId> = node.children().collect();
            for &c in kids.iter().rev() {
                work.push((depth + 1, c));
            }
        }
        out
    }
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Maximum connections waiting for a worker; beyond this, new
    /// connections are refused with `ERR busy`.
    pub queue_depth: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Load-shedding watermark: connections arriving while the queue holds
    /// this many (or more) waiting sockets are refused with `ERR busy` and
    /// a `Retry-After` hint, *before* the hard `queue_depth` cap is hit.
    /// Defaults to `usize::MAX`, i.e. shed only at the hard cap; the
    /// effective threshold is always `min(shed_watermark, queue_depth)`.
    pub shed_watermark: usize,
    /// Wall-clock budget for one connection, covering every request served
    /// on it. Exceeding it mid-stream sends `ERR deadline` and closes —
    /// the client can reconnect and RESUME — so a slow-reading peer holds
    /// a worker for a bounded time no matter how many frames remain.
    pub connection_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            shed_watermark: usize::MAX,
            connection_deadline: Duration::from_secs(30),
        }
    }
}

impl ServerConfig {
    /// The queue length at which new connections are refused.
    fn effective_watermark(&self) -> usize {
        self.shed_watermark.min(self.queue_depth)
    }
}

/// The `Retry-After` hint sent with a shed connection, scaled to the
/// backlog the refused client would have waited behind (deterministic, so
/// tests can pin it).
fn shed_retry_after_ms(backlog: usize) -> u64 {
    ((backlog as u64).saturating_add(1))
        .saturating_mul(25)
        .min(1_000)
}

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Locks `m`, recovering from poison. A thread that panicked while
/// holding the queue lock must not wedge the accept loop or starve the
/// remaining workers — the queue's invariants (a list of pending sockets)
/// hold at every await point, so the contents are safe to reuse.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs one worker iteration with panic isolation: a panicking connection
/// handler is counted in [`TransferCounters::worker_panics`] and the
/// worker lives on to serve the next connection. Per-connection state is
/// owned by the closure and dropped on unwind, so no broken invariants
/// escape (hence `AssertUnwindSafe`).
fn run_isolated(counters: &TransferCounters, f: impl FnOnce()) {
    if panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
        counters.worker_panic();
    }
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Server-level counters in the metric registry (frame/byte traffic is
/// mirrored separately by the observed [`TransferCounters`]). Names come
/// from [`tep_obs::names`] so the harnesses asserting on them cannot
/// drift.
#[derive(Clone)]
struct ServerObs {
    connections: Counter,
    busy_rejections: Counter,
    fetches: Counter,
    resumes: Counter,
    stats_requests: Counter,
    shed: Counter,
    deadline_closes: Counter,
    write_aborts: Counter,
}

impl ServerObs {
    fn new(registry: &Registry) -> Self {
        ServerObs {
            connections: registry.counter(names::NET_CONNECTIONS),
            busy_rejections: registry.counter(names::NET_BUSY_REJECTIONS),
            fetches: registry.counter(names::NET_FETCHES),
            resumes: registry.counter(names::NET_RESUMES),
            stats_requests: registry.counter(names::NET_STATS_REQUESTS),
            shed: registry.counter(names::NET_SHED),
            deadline_closes: registry.counter(names::NET_DEADLINE_CLOSES),
            write_aborts: registry.counter(names::NET_WRITE_ABORTS),
        }
    }

    /// A transfer write that failed because the peer is gone. Counted
    /// separately from shed/panic so `render_text` can tell them apart.
    fn send<W: io::Write>(
        &self,
        writer: &mut FrameWriter<W>,
        msg: &Message,
    ) -> Result<(), WireError> {
        writer
            .write_message(msg)
            .inspect_err(|_| self.write_aborts.inc())
    }
}

/// A running server; dropping (or calling [`Self::shutdown`]) stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    counters: Arc<TransferCounters>,
    registry: Registry,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregated transfer counters across all connections so far.
    pub fn counters(&self) -> TransferSnapshot {
        self.counters.snapshot()
    }

    /// The server's metric registry: `tep_net_*` counters plus whatever the
    /// caller pre-registered. This is the registry STATS frames expose.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Stops accepting, wakes the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves `catalog`
/// until the returned handle is shut down or dropped. The server records
/// its `tep_net_*` metrics into a private registry, readable via
/// [`ServerHandle::registry`] or a STATS frame.
pub fn serve(
    catalog: Arc<Catalog>,
    addr: SocketAddr,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_with_registry(catalog, addr, cfg, Registry::new())
}

/// Like [`serve`], but records metrics into the caller's `registry` — so a
/// process embedding the server can expose net traffic next to its other
/// metrics (and a STATS frame shows them all).
pub fn serve_with_registry(
    catalog: Arc<Catalog>,
    addr: SocketAddr,
    cfg: ServerConfig,
    registry: Registry,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });
    let counters = Arc::new(TransferCounters::observed(&registry));
    let obs = ServerObs::new(&registry);
    let mut threads = Vec::with_capacity(cfg.workers + 1);

    {
        let shared = Arc::clone(&shared);
        let counters = Arc::clone(&counters);
        let obs = obs.clone();
        threads.push(thread::spawn(move || {
            accept_loop(listener, shared, counters, obs, cfg)
        }));
    }
    for _ in 0..cfg.workers.max(1) {
        let shared = Arc::clone(&shared);
        let catalog = Arc::clone(&catalog);
        let counters = Arc::clone(&counters);
        let obs = obs.clone();
        let registry = registry.clone();
        threads.push(thread::spawn(move || {
            worker_loop(shared, catalog, counters, obs, registry, cfg)
        }));
    }

    Ok(ServerHandle {
        addr: local,
        shared,
        threads,
        counters,
        registry,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    counters: Arc<TransferCounters>,
    obs: ServerObs,
    cfg: ServerConfig,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs.connections.inc();
                let mut queue = lock_recover(&shared.queue);
                let backlog = queue.len();
                if backlog >= cfg.effective_watermark() {
                    drop(queue);
                    obs.busy_rejections.inc();
                    obs.shed.inc();
                    refuse_busy(stream, &counters, cfg, backlog);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    // Unblock any worker still waiting.
    shared.available.notify_all();
}

/// Best-effort `ERR busy` + `Retry-After` so the refused client sees a
/// protocol answer (and a backoff hint scaled to the backlog) rather than
/// a bare RST.
fn refuse_busy(
    stream: TcpStream,
    counters: &Arc<TransferCounters>,
    cfg: ServerConfig,
    backlog: usize,
) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let mut w = FrameWriter::new(stream, Arc::clone(counters));
    let _ = w.write_message(&Message::Error {
        code: ErrorCode::Busy,
        retry_after_ms: shed_retry_after_ms(backlog),
        detail: "accept queue full".into(),
    });
}

fn worker_loop(
    shared: Arc<Shared>,
    catalog: Arc<Catalog>,
    counters: Arc<TransferCounters>,
    obs: ServerObs,
    registry: Registry,
    cfg: ServerConfig,
) {
    loop {
        let stream = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _timeout) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        };
        match stream {
            Some(s) => {
                // A single bad connection must not take the worker down —
                // neither via an I/O error (discarded) nor via a panic
                // (caught, counted, isolated).
                run_isolated(&counters, || {
                    let _ = handle_connection(s, &catalog, &counters, &obs, &registry, cfg);
                });
            }
            None => return,
        }
    }
}

/// Whether the connection may serve another request.
#[derive(PartialEq, Eq)]
enum Flow {
    Continue,
    Close,
}

fn handle_connection(
    stream: TcpStream,
    catalog: &Catalog,
    counters: &Arc<TransferCounters>,
    obs: &ServerObs,
    registry: &Registry,
    cfg: ServerConfig,
) -> Result<(), WireError> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = FrameReader::new(stream.try_clone()?, Arc::clone(counters));
    let mut writer = FrameWriter::new(stream, Arc::clone(counters));
    // `None` only for deadlines so large the Instant would overflow —
    // which means "effectively unbounded" anyway.
    let deadline = Instant::now().checked_add(cfg.connection_deadline);

    // HELLO exchange: version and algorithm must match exactly.
    match reader.read_message()? {
        Some(Message::Hello { version, alg })
            if version == WIRE_VERSION && alg == catalog.alg() =>
        {
            writer.write_message(&Message::Hello {
                version: WIRE_VERSION,
                alg: catalog.alg(),
            })?;
        }
        Some(Message::Hello { version, alg }) => {
            writer.write_message(&Message::Error {
                code: ErrorCode::VersionMismatch,
                retry_after_ms: 0,
                detail: format!(
                    "server speaks v{WIRE_VERSION}/{:?}, client sent v{version}/{alg:?}",
                    catalog.alg()
                ),
            })?;
            return Ok(());
        }
        _ => {
            writer.write_message(&Message::Error {
                code: ErrorCode::BadRequest,
                retry_after_ms: 0,
                detail: "expected HELLO".into(),
            })?;
            return Ok(());
        }
    }

    writer.write_message(&Message::Offer {
        entries: catalog.offer_entries(),
    })?;

    while let Some(msg) = reader.read_message()? {
        if past_deadline(deadline) {
            refuse_deadline(obs, &mut writer)?;
            return Ok(());
        }
        let flow = match msg {
            Message::Fetch { oid } => {
                obs.fetches.inc();
                serve_fetch(catalog, &mut writer, oid, deadline, obs)?
            }
            Message::Resume {
                oid,
                records,
                digest,
            } => {
                obs.resumes.inc();
                serve_resume(catalog, &mut writer, oid, records, &digest, deadline, obs)?
            }
            Message::StatsRequest => {
                obs.stats_requests.inc();
                writer.write_message(&Message::Stats {
                    text: registry.render_text(),
                })?;
                Flow::Continue
            }
            _ => {
                writer.write_message(&Message::Error {
                    code: ErrorCode::BadRequest,
                    retry_after_ms: 0,
                    detail: "expected FETCH or RESUME".into(),
                })?;
                return Ok(());
            }
        };
        if flow == Flow::Close {
            return Ok(());
        }
    }
    Ok(())
}

fn past_deadline(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Tells the peer its connection ran out of wall-clock budget. The error
/// is retryable client-side (reconnect + RESUME picks up where the stream
/// stopped), so the hint is small and flat.
fn refuse_deadline<W: io::Write>(
    obs: &ServerObs,
    writer: &mut FrameWriter<W>,
) -> Result<(), WireError> {
    obs.deadline_closes.inc();
    obs.send(
        writer,
        &Message::Error {
            code: ErrorCode::Deadline,
            retry_after_ms: 10,
            detail: "connection deadline exceeded; reconnect and RESUME".into(),
        },
    )
}

/// Looks up `oid`'s provenance, answering `ERR unknown-object` on misses.
fn lookup<W: io::Write>(
    catalog: &Catalog,
    writer: &mut FrameWriter<W>,
    oid: ObjectId,
    obs: &ServerObs,
) -> Result<Option<ProvenanceObject>, WireError> {
    if !catalog.is_offered(oid) || !catalog.forest.contains(oid) {
        obs.send(
            writer,
            &Message::Error {
                code: ErrorCode::UnknownObject,
                retry_after_ms: 0,
                detail: format!("object {oid} is not offered"),
            },
        )?;
        return Ok(None);
    }
    match collect(&catalog.db, oid) {
        Ok(p) => Ok(Some(p)),
        Err(_) => {
            obs.send(
                writer,
                &Message::Error {
                    code: ErrorCode::UnknownObject,
                    retry_after_ms: 0,
                    detail: format!("object {oid} has no provenance"),
                },
            )?;
            Ok(None)
        }
    }
}

fn serve_fetch(
    catalog: &Catalog,
    writer: &mut FrameWriter<TcpStream>,
    oid: ObjectId,
    deadline: Option<Instant>,
    obs: &ServerObs,
) -> Result<Flow, WireError> {
    let Some(prov) = lookup(catalog, writer, oid, obs)? else {
        return Ok(Flow::Continue);
    };
    stream_object(catalog, writer, oid, &prov, 0, deadline, obs)
}

/// Serves a RESUME: honors the claimed offset only if the client's rolling
/// digest matches the one this server recomputes over the identical prefix
/// — byte-for-byte, in collect order. Anything else (offset beyond the
/// end, digest mismatch, unknown object) is refused without sending a
/// single record, so a malformed resume can never yield a partial
/// verified result.
fn serve_resume(
    catalog: &Catalog,
    writer: &mut FrameWriter<TcpStream>,
    oid: ObjectId,
    claimed: u64,
    digest: &[u8],
    deadline: Option<Instant>,
    obs: &ServerObs,
) -> Result<Flow, WireError> {
    let Some(prov) = lookup(catalog, writer, oid, obs)? else {
        return Ok(Flow::Continue);
    };
    let total = prov.records.len() as u64;
    if claimed > total {
        obs.send(
            writer,
            &Message::Error {
                code: ErrorCode::ResumeMismatch,
                retry_after_ms: 0,
                detail: format!("resume offset {claimed} beyond end of stream ({total})"),
            },
        )?;
        return Ok(Flow::Continue);
    }
    let mut ours = RecordStreamDigest::new(catalog.alg, oid);
    for record in &prov.records[..claimed as usize] {
        ours.push(&record.to_stored().to_bytes());
    }
    if ours.current() != digest {
        obs.send(
            writer,
            &Message::Error {
                code: ErrorCode::ResumeMismatch,
                retry_after_ms: 0,
                detail: format!("record-stream digest disagrees at offset {claimed}"),
            },
        )?;
        return Ok(Flow::Continue);
    }
    obs.send(
        writer,
        &Message::ResumeOk {
            records: claimed,
            digest: ours.current().to_vec(),
        },
    )?;
    stream_object(catalog, writer, oid, &prov, claimed, deadline, obs)
}

/// Streams the transfer body: PROV records from `skip` onward (records are
/// already sorted by `(output_oid, seq_id)` — the topological order the
/// client's streaming verifier requires), then the full data subtree
/// chunked by encoded size, then DONE with whole-transfer totals. The
/// connection deadline is checked between frames; exceeding it sends
/// `ERR deadline` and closes, which a resuming client treats as a
/// retryable cut.
fn stream_object(
    catalog: &Catalog,
    writer: &mut FrameWriter<TcpStream>,
    oid: ObjectId,
    prov: &ProvenanceObject,
    skip: u64,
    deadline: Option<Instant>,
    obs: &ServerObs,
) -> Result<Flow, WireError> {
    let mut records = 0u64;
    for record in &prov.records {
        records += 1;
        if records <= skip {
            continue;
        }
        if past_deadline(deadline) {
            refuse_deadline(obs, writer)?;
            return Ok(Flow::Close);
        }
        obs.send(
            writer,
            &Message::Prov {
                record: record.to_stored(),
            },
        )?;
    }

    // Data subtree, chunked by actual encoded size so no frame exceeds
    // the chunk target by more than one entry.
    let mut nodes = 0u64;
    let mut chunk: Vec<DataEntry> = Vec::new();
    let mut chunk_bytes = 0usize;
    for entry in catalog.data_entries(oid) {
        let entry_bytes = 10 + tep_model::encode::value_bytes(&entry.value).len();
        if !chunk.is_empty() && chunk_bytes + entry_bytes > DATA_CHUNK_BYTES {
            if past_deadline(deadline) {
                refuse_deadline(obs, writer)?;
                return Ok(Flow::Close);
            }
            obs.send(
                writer,
                &Message::Data {
                    entries: std::mem::take(&mut chunk),
                },
            )?;
            chunk_bytes = 0;
        }
        chunk_bytes += entry_bytes;
        nodes += 1;
        chunk.push(entry);
    }
    if !chunk.is_empty() {
        obs.send(writer, &Message::Data { entries: chunk })?;
    }

    obs.send(writer, &Message::Done { records, nodes })?;
    Ok(Flow::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_isolated_catches_and_counts_panics() {
        let counters = TransferCounters::new();
        run_isolated(&counters, || {});
        assert_eq!(counters.snapshot().worker_panics, 0);
        run_isolated(&counters, || panic!("connection handler exploded"));
        run_isolated(&counters, || panic!("again"));
        assert_eq!(counters.snapshot().worker_panics, 2);
        // The thread is still alive to run more work.
        run_isolated(&counters, || {});
        assert_eq!(counters.snapshot().worker_panics, 2);
    }

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(VecDeque::from([1, 2, 3])));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        // Queue contents are still intact and usable.
        let mut q = lock_recover(&m);
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn wait_timeout_recovers_from_poison() {
        let m = Arc::new((Mutex::new(0u32), Condvar::new()));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.0.lock().unwrap();
            panic!("poison");
        })
        .join();
        let guard = lock_recover(&m.0);
        let (guard, timeout) =
            m.1.wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
        assert!(timeout.timed_out());
        assert_eq!(*guard, 0);
    }

    #[test]
    fn shed_hint_scales_with_backlog_and_saturates() {
        assert_eq!(shed_retry_after_ms(0), 25);
        assert_eq!(shed_retry_after_ms(3), 100);
        assert_eq!(shed_retry_after_ms(1_000_000), 1_000);
        assert_eq!(shed_retry_after_ms(usize::MAX), 1_000);
    }

    #[test]
    fn effective_watermark_never_exceeds_the_hard_cap() {
        let mut cfg = ServerConfig::default();
        assert_eq!(cfg.effective_watermark(), cfg.queue_depth);
        cfg.shed_watermark = 4;
        assert_eq!(cfg.effective_watermark(), 4);
        cfg.queue_depth = 2;
        assert_eq!(cfg.effective_watermark(), 2);
    }
}
