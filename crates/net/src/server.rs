//! Multithreaded TCP server for provenance exchange.
//!
//! std-only: a nonblocking accept loop feeds a **bounded** hand-off queue
//! (overflow connections are refused with `ERR busy` instead of queueing
//! unboundedly), a fixed pool of worker threads drains it, and every
//! connection socket carries read/write timeouts so a stalled peer cannot
//! pin a worker forever. [`ServerHandle::shutdown`] stops the accept loop,
//! wakes the workers, and joins every thread.
//!
//! Per connection the server speaks the `wire` protocol:
//!
//! ```text
//! client  HELLO ───────────▶
//!         ◀─────────── HELLO   (version/alg must match; else ERR + close)
//!         ◀─────────── OFFER   (manifest of served objects)
//! client  FETCH oid ───────▶
//!         ◀─ PROV × N         (records of the full provenance DAG,
//!                              sorted by (output_oid, seq_id))
//!         ◀─ DATA × M         (data subtree, depth-tagged DFS preorder)
//!         ◀─ DONE             (totals)
//!         … more FETCHes, or client closes …
//! ```

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use tep_core::metrics::{TransferCounters, TransferSnapshot};
use tep_core::provenance::collect;
use tep_crypto::digest::HashAlgorithm;
use tep_model::{Forest, ObjectId};
use tep_obs::{Counter, Registry};
use tep_storage::ProvenanceDb;

use crate::wire::{
    DataEntry, ErrorCode, FrameReader, FrameWriter, Message, OfferEntry, WireError,
    DATA_CHUNK_BYTES, WIRE_VERSION,
};

/// What a server serves: a snapshot of the data forest, the provenance
/// store, and the set of objects offered to clients.
pub struct Catalog {
    forest: Forest,
    db: Arc<ProvenanceDb>,
    alg: HashAlgorithm,
    offered: Vec<ObjectId>,
}

impl Catalog {
    /// Builds a catalog offering `offered` (deduplicated, sorted).
    pub fn new(
        forest: Forest,
        db: Arc<ProvenanceDb>,
        alg: HashAlgorithm,
        mut offered: Vec<ObjectId>,
    ) -> Self {
        offered.sort();
        offered.dedup();
        Catalog {
            forest,
            db,
            alg,
            offered,
        }
    }

    /// The hash algorithm this catalog's hashes use.
    pub fn alg(&self) -> HashAlgorithm {
        self.alg
    }

    /// The OFFER manifest.
    pub fn offer_entries(&self) -> Vec<OfferEntry> {
        self.offered
            .iter()
            .map(|&oid| OfferEntry {
                oid,
                records: self.db.records_for(oid).len() as u64,
                nodes: if self.forest.contains(oid) {
                    self.forest.subtree_ids(oid).len() as u64
                } else {
                    0
                },
            })
            .collect()
    }

    fn is_offered(&self, oid: ObjectId) -> bool {
        self.offered.binary_search(&oid).is_ok()
    }

    /// The depth-tagged DFS preorder walk of `root`'s data subtree.
    fn data_entries(&self, root: ObjectId) -> Vec<DataEntry> {
        let mut out = Vec::new();
        let mut work = vec![(0u16, root)];
        while let Some((depth, id)) = work.pop() {
            let Some(node) = self.forest.node(id) else {
                continue;
            };
            out.push(DataEntry {
                depth,
                id,
                value: node.value().clone(),
            });
            let kids: Vec<ObjectId> = node.children().collect();
            for &c in kids.iter().rev() {
                work.push((depth + 1, c));
            }
        }
        out
    }
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Maximum connections waiting for a worker; beyond this, new
    /// connections are refused with `ERR busy`.
    pub queue_depth: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Locks `m`, recovering from poison. A thread that panicked while
/// holding the queue lock must not wedge the accept loop or starve the
/// remaining workers — the queue's invariants (a list of pending sockets)
/// hold at every await point, so the contents are safe to reuse.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs one worker iteration with panic isolation: a panicking connection
/// handler is counted in [`TransferCounters::worker_panics`] and the
/// worker lives on to serve the next connection. Per-connection state is
/// owned by the closure and dropped on unwind, so no broken invariants
/// escape (hence `AssertUnwindSafe`).
fn run_isolated(counters: &TransferCounters, f: impl FnOnce()) {
    if panic::catch_unwind(AssertUnwindSafe(f)).is_err() {
        counters.worker_panic();
    }
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// Server-level counters in the metric registry (frame/byte traffic is
/// mirrored separately by the observed [`TransferCounters`]).
#[derive(Clone)]
struct ServerObs {
    connections: Counter,
    busy_rejections: Counter,
    fetches: Counter,
    stats_requests: Counter,
}

impl ServerObs {
    fn new(registry: &Registry) -> Self {
        ServerObs {
            connections: registry.counter("tep_net_connections_total"),
            busy_rejections: registry.counter("tep_net_busy_rejections_total"),
            fetches: registry.counter("tep_net_fetches_total"),
            stats_requests: registry.counter("tep_net_stats_requests_total"),
        }
    }
}

/// A running server; dropping (or calling [`Self::shutdown`]) stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    counters: Arc<TransferCounters>,
    registry: Registry,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregated transfer counters across all connections so far.
    pub fn counters(&self) -> TransferSnapshot {
        self.counters.snapshot()
    }

    /// The server's metric registry: `tep_net_*` counters plus whatever the
    /// caller pre-registered. This is the registry STATS frames expose.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Stops accepting, wakes the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves `catalog`
/// until the returned handle is shut down or dropped. The server records
/// its `tep_net_*` metrics into a private registry, readable via
/// [`ServerHandle::registry`] or a STATS frame.
pub fn serve(
    catalog: Arc<Catalog>,
    addr: SocketAddr,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_with_registry(catalog, addr, cfg, Registry::new())
}

/// Like [`serve`], but records metrics into the caller's `registry` — so a
/// process embedding the server can expose net traffic next to its other
/// metrics (and a STATS frame shows them all).
pub fn serve_with_registry(
    catalog: Arc<Catalog>,
    addr: SocketAddr,
    cfg: ServerConfig,
    registry: Registry,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });
    let counters = Arc::new(TransferCounters::observed(&registry));
    let obs = ServerObs::new(&registry);
    let mut threads = Vec::with_capacity(cfg.workers + 1);

    {
        let shared = Arc::clone(&shared);
        let counters = Arc::clone(&counters);
        let obs = obs.clone();
        threads.push(thread::spawn(move || {
            accept_loop(listener, shared, counters, obs, cfg)
        }));
    }
    for _ in 0..cfg.workers.max(1) {
        let shared = Arc::clone(&shared);
        let catalog = Arc::clone(&catalog);
        let counters = Arc::clone(&counters);
        let obs = obs.clone();
        let registry = registry.clone();
        threads.push(thread::spawn(move || {
            worker_loop(shared, catalog, counters, obs, registry, cfg)
        }));
    }

    Ok(ServerHandle {
        addr: local,
        shared,
        threads,
        counters,
        registry,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    counters: Arc<TransferCounters>,
    obs: ServerObs,
    cfg: ServerConfig,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs.connections.inc();
                let mut queue = lock_recover(&shared.queue);
                if queue.len() >= cfg.queue_depth {
                    drop(queue);
                    obs.busy_rejections.inc();
                    refuse_busy(stream, &counters, cfg);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.available.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    // Unblock any worker still waiting.
    shared.available.notify_all();
}

/// Best-effort `ERR busy` so the refused client sees a protocol answer
/// rather than a bare RST.
fn refuse_busy(stream: TcpStream, counters: &Arc<TransferCounters>, cfg: ServerConfig) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let mut w = FrameWriter::new(stream, Arc::clone(counters));
    let _ = w.write_message(&Message::Error {
        code: ErrorCode::Busy,
        detail: "accept queue full".into(),
    });
}

fn worker_loop(
    shared: Arc<Shared>,
    catalog: Arc<Catalog>,
    counters: Arc<TransferCounters>,
    obs: ServerObs,
    registry: Registry,
    cfg: ServerConfig,
) {
    loop {
        let stream = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _timeout) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        };
        match stream {
            Some(s) => {
                // A single bad connection must not take the worker down —
                // neither via an I/O error (discarded) nor via a panic
                // (caught, counted, isolated).
                run_isolated(&counters, || {
                    let _ = handle_connection(s, &catalog, &counters, &obs, &registry, cfg);
                });
            }
            None => return,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    catalog: &Catalog,
    counters: &Arc<TransferCounters>,
    obs: &ServerObs,
    registry: &Registry,
    cfg: ServerConfig,
) -> Result<(), WireError> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = FrameReader::new(stream.try_clone()?, Arc::clone(counters));
    let mut writer = FrameWriter::new(stream, Arc::clone(counters));

    // HELLO exchange: version and algorithm must match exactly.
    match reader.read_message()? {
        Some(Message::Hello { version, alg })
            if version == WIRE_VERSION && alg == catalog.alg() =>
        {
            writer.write_message(&Message::Hello {
                version: WIRE_VERSION,
                alg: catalog.alg(),
            })?;
        }
        Some(Message::Hello { version, alg }) => {
            writer.write_message(&Message::Error {
                code: ErrorCode::VersionMismatch,
                detail: format!(
                    "server speaks v{WIRE_VERSION}/{:?}, client sent v{version}/{alg:?}",
                    catalog.alg()
                ),
            })?;
            return Ok(());
        }
        _ => {
            writer.write_message(&Message::Error {
                code: ErrorCode::BadRequest,
                detail: "expected HELLO".into(),
            })?;
            return Ok(());
        }
    }

    writer.write_message(&Message::Offer {
        entries: catalog.offer_entries(),
    })?;

    while let Some(msg) = reader.read_message()? {
        match msg {
            Message::Fetch { oid } => {
                obs.fetches.inc();
                serve_fetch(catalog, &mut writer, oid)?;
            }
            Message::StatsRequest => {
                obs.stats_requests.inc();
                writer.write_message(&Message::Stats {
                    text: registry.render_text(),
                })?;
            }
            _ => {
                writer.write_message(&Message::Error {
                    code: ErrorCode::BadRequest,
                    detail: "expected FETCH".into(),
                })?;
                return Ok(());
            }
        }
    }
    Ok(())
}

fn serve_fetch(
    catalog: &Catalog,
    writer: &mut FrameWriter<TcpStream>,
    oid: ObjectId,
) -> Result<(), WireError> {
    if !catalog.is_offered(oid) || !catalog.forest.contains(oid) {
        return writer.write_message(&Message::Error {
            code: ErrorCode::UnknownObject,
            detail: format!("object {oid} is not offered"),
        });
    }
    let prov = match collect(&catalog.db, oid) {
        Ok(p) => p,
        Err(_) => {
            return writer.write_message(&Message::Error {
                code: ErrorCode::UnknownObject,
                detail: format!("object {oid} has no provenance"),
            });
        }
    };

    // Records are already sorted by (output_oid, seq_id) — the topological
    // order the client's streaming verifier requires.
    let mut records = 0u64;
    for record in &prov.records {
        writer.write_message(&Message::Prov {
            record: record.to_stored(),
        })?;
        records += 1;
    }

    // Data subtree, chunked by actual encoded size so no frame exceeds
    // the chunk target by more than one entry.
    let mut nodes = 0u64;
    let mut chunk: Vec<DataEntry> = Vec::new();
    let mut chunk_bytes = 0usize;
    for entry in catalog.data_entries(oid) {
        let entry_bytes = 10 + tep_model::encode::value_bytes(&entry.value).len();
        if !chunk.is_empty() && chunk_bytes + entry_bytes > DATA_CHUNK_BYTES {
            writer.write_message(&Message::Data {
                entries: std::mem::take(&mut chunk),
            })?;
            chunk_bytes = 0;
        }
        chunk_bytes += entry_bytes;
        nodes += 1;
        chunk.push(entry);
    }
    if !chunk.is_empty() {
        writer.write_message(&Message::Data { entries: chunk })?;
    }

    writer.write_message(&Message::Done { records, nodes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_isolated_catches_and_counts_panics() {
        let counters = TransferCounters::new();
        run_isolated(&counters, || {});
        assert_eq!(counters.snapshot().worker_panics, 0);
        run_isolated(&counters, || panic!("connection handler exploded"));
        run_isolated(&counters, || panic!("again"));
        assert_eq!(counters.snapshot().worker_panics, 2);
        // The thread is still alive to run more work.
        run_isolated(&counters, || {});
        assert_eq!(counters.snapshot().worker_panics, 2);
    }

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(VecDeque::from([1, 2, 3])));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "mutex should be poisoned");
        // Queue contents are still intact and usable.
        let mut q = lock_recover(&m);
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn wait_timeout_recovers_from_poison() {
        let m = Arc::new((Mutex::new(0u32), Condvar::new()));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.0.lock().unwrap();
            panic!("poison");
        })
        .join();
        let guard = lock_recover(&m.0);
        let (guard, timeout) =
            m.1.wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
        assert!(timeout.timed_out());
        assert_eq!(*guard, 0);
    }
}
