//! End-to-end loopback tests: a real TCP server, a real client, and a
//! man-in-the-middle proxy applying the paper's §2.2 attacks *on the wire*.
//!
//! The headline assertions:
//!
//! * an untampered transfer is accepted and its recomputed object hash
//!   matches the sender's,
//! * **every** [`Tamper`] variant applied in flight is rejected by the
//!   client's streaming verifier, with the offending wire frame attributed
//!   for mid-stream (signature-class) evidence,
//! * data-frame mutation and data substitution are caught as R4/R5
//!   output mismatches,
//! * transient failures (refused connections, busy servers, truncated
//!   streams) are retried with backoff — but tamper evidence never is.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_core::attack::{all_single_record_tampers, apply_tamper, Tamper};
use tep_core::hashing::HashingStrategy;
use tep_core::metrics::TransferCounters;
use tep_core::provenance::{collect, ProvenanceObject};
use tep_core::verify::TamperEvidence;
use tep_core::{ProvenanceRecord, ProvenanceTracker, TrackerConfig};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{CertificateAuthority, KeyDirectory, ParticipantId};
use tep_model::{AggregateMode, ObjectId, Value};
use tep_net::proxy::Mutator;
use tep_net::wire::{FrameReader, FrameWriter, Message};
use tep_net::{
    serve, Catalog, Client, ClientConfig, ErrorCode, NetError, ProxyAction, RetryPolicy,
    ServerConfig, TamperProxy, WIRE_VERSION,
};
use tep_storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

/// A fully built provenance world shared by every test in this binary
/// (RSA keygen is the expensive part; build it once).
struct NetWorld {
    catalog: Arc<Catalog>,
    keys: KeyDirectory,
    /// Compound object: a small database root with a table, rows, cells.
    root: ObjectId,
    root_hash: Vec<u8>,
    /// Aggregate with non-linear (DAG) provenance.
    agg: ObjectId,
    agg_hash: Vec<u8>,
    /// The aggregate's full provenance DAG, for tamper enumeration.
    prov_agg: ProvenanceObject,
    /// Registered participant who authored nothing (reattribution target).
    mallory: ParticipantId,
}

static WORLD: OnceLock<NetWorld> = OnceLock::new();

fn world() -> &'static NetWorld {
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x9E7_BEEF);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mallory = ca.enroll(ParticipantId(3), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        for p in [&alice, &bob, &mallory] {
            keys.register(p.certificate().clone()).unwrap();
        }

        let db = Arc::new(ProvenanceDb::in_memory());
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Economical,
            },
            Arc::clone(&db),
        );

        // Compound object: db root → table → 3 rows × 2 cells, plus updates.
        let (root, _) = tracker
            .insert(&alice, Value::Text("customers".into()), None)
            .unwrap();
        let (table, _) = tracker
            .insert(&bob, Value::Text("orders".into()), Some(root))
            .unwrap();
        let mut last_cell = None;
        for r in 0..3i64 {
            let (row, _) = tracker.insert(&alice, Value::Null, Some(table)).unwrap();
            for c in 0..2i64 {
                let (cell, _) = tracker
                    .insert(&bob, Value::Int(r * 10 + c), Some(row))
                    .unwrap();
                last_cell = Some(cell);
            }
        }
        tracker
            .update(&alice, last_cell.unwrap(), Value::Int(777))
            .unwrap();

        // Non-linear provenance: d = agg(a, c) where c = agg(a, b).
        let (a, _) = tracker.insert(&alice, Value::Int(1), None).unwrap();
        let (b, _) = tracker.insert(&bob, Value::Int(2), None).unwrap();
        tracker.update(&bob, b, Value::Int(3)).unwrap();
        let (c, _) = tracker
            .aggregate(&bob, &[a, b], Value::Int(4), AggregateMode::Atomic)
            .unwrap();
        tracker.update(&alice, a, Value::Int(5)).unwrap();
        let (agg, _) = tracker
            .aggregate(&alice, &[a, c], Value::Int(9), AggregateMode::Atomic)
            .unwrap();

        let root_hash = tracker.object_hash(root).unwrap();
        let agg_hash = tracker.object_hash(agg).unwrap();
        let prov_agg = collect(&db, agg).unwrap();
        let catalog = Arc::new(Catalog::new(
            tracker.forest().clone(),
            db,
            ALG,
            vec![root, agg],
        ));

        NetWorld {
            catalog,
            keys,
            root,
            root_hash,
            agg,
            agg_hash,
            prov_agg,
            mallory: mallory.id(),
        }
    })
}

fn start_server() -> tep_net::ServerHandle {
    serve(
        Arc::clone(&world().catalog),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap()
}

fn client(addr: SocketAddr) -> Client {
    Client::new(addr, ClientConfig::new(ALG))
}

/// A client that fails fast (short timeouts, tiny backoff) for tests that
/// exercise the retry machinery.
fn impatient_client(addr: SocketAddr, max_attempts: u32) -> Client {
    let mut cfg = ClientConfig::new(ALG);
    cfg.read_timeout = Duration::from_millis(400);
    cfg.retry = RetryPolicy {
        max_attempts,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    Client::new(addr, cfg)
}

#[test]
fn honest_transfer_is_accepted_and_hash_matches_sender() {
    let w = world();
    let srv = start_server();
    let mut cl = client(srv.addr());

    // Compound object: hash recomputed from the streamed subtree matches
    // the sender's, and the totals match the OFFER manifest.
    let rep = cl.fetch_verified(w.root, &w.keys).unwrap();
    assert!(rep.verification.verified());
    assert_eq!(rep.object_hash, w.root_hash);
    let entry = rep
        .offer
        .iter()
        .find(|e| e.oid == w.root)
        .expect("root is offered");
    assert_eq!(rep.records, entry.records);
    assert_eq!(rep.nodes, entry.nodes);
    assert_eq!(rep.nodes, 11, "root + table + 3 rows + 6 cells");

    // DAG aggregate over the same connection-oriented client.
    let rep = cl.fetch_verified(w.agg, &w.keys).unwrap();
    assert!(rep.verification.verified());
    assert_eq!(rep.object_hash, w.agg_hash);
    assert_eq!(rep.nodes, 1, "atomic aggregate is a single node");
    assert_eq!(
        rep.records, 6,
        "DAG history rides along: a (insert+update), b (insert+update), c, d"
    );

    // Counters saw real traffic and no failures.
    let snap = cl.counters();
    assert!(snap.frames_sent >= 4, "2× HELLO+FETCH at minimum");
    assert!(snap.frames_received > snap.frames_sent);
    assert!(snap.bytes_received > snap.bytes_sent);
    assert_eq!(snap.verify_failures, 0);
    assert_eq!(snap.retries, 0);
    let server_snap = srv.counters();
    assert!(server_snap.frames_sent >= snap.frames_received);
    srv.shutdown();
}

#[test]
fn offer_manifest_lists_served_objects() {
    let w = world();
    let srv = start_server();
    let offer = client(srv.addr()).offer().unwrap();
    assert_eq!(offer.len(), 2);
    for oid in [w.root, w.agg] {
        let e = offer.iter().find(|e| e.oid == oid).expect("offered");
        assert!(e.records > 0);
        assert!(e.nodes > 0);
    }
}

#[test]
fn concurrent_clients_all_verify() {
    let w = world();
    let srv = start_server();
    let addr = srv.addr();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                let mut cl = client(addr);
                let rep = cl.fetch_verified(w.root, &w.keys).unwrap();
                assert_eq!(rep.object_hash, w.root_hash);
                let rep = cl.fetch_verified(w.agg, &w.keys).unwrap();
                assert_eq!(rep.object_hash, w.agg_hash);
            });
        }
    });
    srv.shutdown();
}

#[test]
fn unknown_object_is_refused() {
    let w = world();
    let srv = start_server();
    let err = client(srv.addr())
        .fetch_verified(ObjectId(0xDEAD_0BED), &w.keys)
        .unwrap_err();
    match err {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::UnknownObject),
        other => panic!("expected UnknownObject, got: {other}"),
    }
}

#[test]
fn version_and_algorithm_skew_are_refused() {
    let w = world();
    let srv = start_server();

    // Raw wire: a client speaking a future protocol version.
    let counters = Arc::new(TransferCounters::new());
    let stream = TcpStream::connect(srv.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = FrameReader::new(stream.try_clone().unwrap(), Arc::clone(&counters));
    let mut writer = FrameWriter::new(stream, counters);
    writer
        .write_message(&Message::Hello {
            version: WIRE_VERSION + 1,
            alg: ALG,
            tenant: 0,
        })
        .unwrap();
    match reader.read_message().unwrap() {
        Some(Message::Error { code, .. }) => assert_eq!(code, ErrorCode::VersionMismatch),
        other => panic!("expected ERR version-mismatch, got {other:?}"),
    }

    // Same version, different hash algorithm: also refused.
    let mut cl = Client::new(srv.addr(), ClientConfig::new(HashAlgorithm::Sha1));
    match cl.fetch_verified(w.root, &w.keys).unwrap_err() {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::VersionMismatch),
        other => panic!("expected VersionMismatch, got: {other}"),
    }
}

/// A mutator that applies one [`Tamper`] to the matching PROV frame in
/// flight, re-framing with a valid CRC — exactly what an attacker on the
/// path can do (the CRC only guards against accidents).
fn tamper_mutator(tamper: Tamper) -> Mutator {
    Box::new(move |_frame, msg| {
        let Message::Prov { record } = msg else {
            return ProxyAction::Forward;
        };
        let Ok(rec) = ProvenanceRecord::from_stored(record) else {
            return ProxyAction::Forward;
        };
        let mut holder = ProvenanceObject {
            target: rec.output_oid,
            records: vec![rec],
        };
        if !apply_tamper(&mut holder, &tamper) {
            return ProxyAction::Forward; // not the targeted record
        }
        match holder.records.into_iter().next() {
            Some(tampered) => ProxyAction::Replace(Message::Prov {
                record: tampered.to_stored(),
            }),
            None => ProxyAction::Drop, // Tamper::Remove
        }
    })
}

#[test]
fn every_wire_tamper_is_detected_and_never_retried() {
    let w = world();
    let srv = start_server();
    let tampers = all_single_record_tampers(&w.prov_agg, w.mallory);
    assert!(
        tampers.len() >= 20,
        "DAG history should enumerate a rich tamper surface, got {}",
        tampers.len()
    );

    for tamper in tampers {
        let proxy = TamperProxy::spawn(srv.addr(), tamper_mutator(tamper.clone())).unwrap();
        let mut cl = client(proxy.addr());
        let err = cl.fetch_verified(w.agg, &w.keys).unwrap_err();
        match err {
            NetError::TamperDetected { frame, issues } => {
                assert!(!issues.is_empty(), "{tamper:?}: evidence must be reported");
                // Signature-class tampers are caught the moment the
                // offending record's frame arrives; only removal can defer
                // evidence to end-of-transfer (chain holes found at finish).
                if !matches!(tamper, Tamper::Remove { .. }) {
                    assert!(
                        frame.is_some(),
                        "{tamper:?}: expected mid-stream frame attribution"
                    );
                    assert!(
                        issues
                            .iter()
                            .any(|i| matches!(i, TamperEvidence::BadSignature { .. })),
                        "{tamper:?}: expected a bad signature, got {issues:?}"
                    );
                }
            }
            other => panic!("{tamper:?} produced `{other}` instead of TamperDetected"),
        }
        let snap = cl.counters();
        assert!(snap.verify_failures >= 1, "{tamper:?}: failure not counted");
        assert_eq!(snap.retries, 0, "{tamper:?}: tamper evidence was retried");
        proxy.shutdown();
    }
    srv.shutdown();
}

#[test]
fn data_mutation_in_flight_is_detected_as_output_mismatch() {
    // R4: the data is modified but the provenance is left intact — the
    // recomputed object hash no longer matches the newest record.
    let w = world();
    let srv = start_server();
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(|_frame, msg| {
            let Message::Data { entries } = msg else {
                return ProxyAction::Forward;
            };
            let mut entries = entries.clone();
            entries[0].value = Value::Int(666_666);
            ProxyAction::Replace(Message::Data { entries })
        }),
    )
    .unwrap();
    let mut cl = client(proxy.addr());
    match cl.fetch_verified(w.root, &w.keys).unwrap_err() {
        NetError::TamperDetected { frame, issues } => {
            assert!(frame.is_none(), "hash evidence appears at end-of-transfer");
            assert!(issues
                .iter()
                .any(|i| matches!(i, TamperEvidence::OutputMismatch { .. })));
        }
        other => panic!("expected TamperDetected, got: {other}"),
    }
    assert_eq!(cl.counters().retries, 0);
}

#[test]
fn data_substitution_in_flight_is_detected() {
    // R5: the provenance is genuine but describes a *different* object —
    // the proxy swaps the delivered data node's identity.
    let w = world();
    let srv = start_server();
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(|_frame, msg| {
            let Message::Data { entries } = msg else {
                return ProxyAction::Forward;
            };
            let mut entries = entries.clone();
            entries[0].id = ObjectId(entries[0].id.0 + 1);
            ProxyAction::Replace(Message::Data { entries })
        }),
    )
    .unwrap();
    let mut cl = client(proxy.addr());
    match cl.fetch_verified(w.agg, &w.keys).unwrap_err() {
        NetError::TamperDetected { issues, .. } => {
            assert!(issues
                .iter()
                .any(|i| matches!(i, TamperEvidence::OutputMismatch { .. })));
        }
        other => panic!("expected TamperDetected, got: {other}"),
    }
}

#[test]
fn truncated_transfer_is_never_accepted() {
    // The proxy swallows DONE: the client must not accept the (complete-
    // looking) records + data without the closing frame.
    let w = world();
    let srv = start_server();
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(|_frame, msg| match msg {
            Message::Done { .. } => ProxyAction::Drop,
            _ => ProxyAction::Forward,
        }),
    )
    .unwrap();
    let mut cl = impatient_client(proxy.addr(), 2);
    let err = cl.fetch_verified(w.root, &w.keys).unwrap_err();
    assert!(
        matches!(err, NetError::Wire(_)),
        "expected a wire-level failure, got: {err}"
    );
    assert_eq!(cl.counters().retries, 1, "timeouts are retryable");
}

#[test]
fn refused_connection_is_retried_with_backoff() {
    // Grab an ephemeral port, then close the listener: connecting fails
    // deterministically, and every attempt should be counted.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let mut cl = impatient_client(dead_addr, 3);
    let err = cl.fetch_verified(world().root, &world().keys).unwrap_err();
    assert!(matches!(err, NetError::Wire(_)), "got: {err}");
    assert_eq!(cl.counters().retries, 2);
}

#[test]
fn busy_server_refuses_with_protocol_error() {
    // queue_depth 0: the accept loop refuses every connection with ERR
    // busy instead of queueing it.
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 0,
        ..ServerConfig::default()
    };
    let srv = serve(
        Arc::clone(&world().catalog),
        "127.0.0.1:0".parse().unwrap(),
        cfg,
    )
    .unwrap();
    let mut cl = impatient_client(srv.addr(), 2);
    match cl.fetch_verified(world().root, &world().keys).unwrap_err() {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected ERR busy, got: {other}"),
    }
    assert_eq!(cl.counters().retries, 1, "busy is retryable");
    srv.shutdown();
}

#[test]
fn unknown_tenant_fails_fast_without_burning_retry_budget() {
    // The server provisions only tenant 0; a client scoped to tenant 5
    // must get the typed `ERR unknown-tenant` and stop immediately —
    // unlike `busy`, which is retried above.
    let srv = start_server();
    let mut cfg = ClientConfig::for_tenant(ALG, tep_model::TenantId(5));
    cfg.retry = RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    let mut cl = Client::new(srv.addr(), cfg);
    match cl.fetch_verified(world().root, &world().keys).unwrap_err() {
        NetError::Remote { code, detail, .. } => {
            assert_eq!(code, ErrorCode::UnknownTenant);
            assert!(detail.contains("t5"), "detail names the tenant: {detail}");
        }
        other => panic!("expected ERR unknown-tenant, got: {other}"),
    }
    assert_eq!(cl.counters().retries, 0, "unknown tenant is terminal");
    srv.shutdown();
}
