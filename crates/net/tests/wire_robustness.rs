//! Fuzz-style robustness tests for the wire decoder: whatever a hostile or
//! broken peer sends, the frame reader must fail with a clean error —
//! never panic, never allocate unbounded memory. Mirrors the storage
//! layer's `decoder_robustness` suite, aimed at the network boundary.

use std::io::Cursor;
use std::sync::Arc;

use proptest::prelude::*;
use tep_core::metrics::TransferCounters;
use tep_crypto::digest::HashAlgorithm;
use tep_net::wire::{
    decode_message, encode_message, FrameReader, FrameWriter, Message, WIRE_VERSION,
};
use tep_net::{ErrorCode, WireError, MAX_FRAME};

fn reader_on(bytes: Vec<u8>) -> FrameReader<Cursor<Vec<u8>>> {
    FrameReader::new(Cursor::new(bytes), Arc::new(TransferCounters::new()))
}

/// Drains a reader until EOF or the first error; returns how many messages
/// decoded. The point is that this always terminates without panicking.
fn drain(bytes: Vec<u8>) -> (usize, Option<WireError>) {
    let mut r = reader_on(bytes);
    let mut n = 0usize;
    loop {
        match r.read_message() {
            Ok(Some(_)) => n += 1,
            Ok(None) => return (n, None),
            Err(e) => return (n, Some(e)),
        }
    }
}

/// A cheap-to-build valid message stream (no crypto required).
fn sample_stream() -> Vec<u8> {
    let counters = Arc::new(TransferCounters::new());
    let mut w = FrameWriter::new(Vec::new(), counters);
    for msg in [
        Message::Hello {
            version: WIRE_VERSION,
            alg: HashAlgorithm::Sha256,
            tenant: 0,
        },
        Message::Fetch {
            oid: tep_model::ObjectId(42),
        },
        Message::Done {
            records: 3,
            nodes: 11,
        },
        Message::Error {
            code: ErrorCode::Busy,
            retry_after_ms: 25,
            detail: "accept queue full".into(),
        },
    ] {
        w.write_message(&msg).unwrap();
    }
    w.into_inner()
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // An 8 GiB length prefix must fail fast with Oversized, not attempt
    // the allocation (the CRC is irrelevant — the check comes first).
    let mut frame = Vec::new();
    frame.extend_from_slice(&(u32::MAX).to_be_bytes());
    frame.extend_from_slice(&[0u8; 4]);
    frame.extend_from_slice(&[0u8; 64]);
    let (n, err) = drain(frame);
    assert_eq!(n, 0);
    assert!(
        matches!(err, Some(WireError::Oversized { len }) if len as usize > MAX_FRAME),
        "got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes through the frame reader: clean error or EOF, never
    /// a panic, never a hang.
    #[test]
    fn frame_reader_survives_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = drain(bytes);
    }

    /// Arbitrary bytes through the payload decoder directly.
    #[test]
    fn decoder_survives_random_payloads(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message(&bytes);
    }

    /// A valid stream cut at every possible byte offset: either some whole
    /// messages then clean EOF (cut on a frame boundary) or a truncation
    /// error — never a panic, never a phantom extra message.
    #[test]
    fn truncated_valid_stream_fails_cleanly(cut in any::<usize>()) {
        let stream = sample_stream();
        let cut = cut % (stream.len() + 1);
        let (n, err) = drain(stream[..cut].to_vec());
        prop_assert!(n <= 4);
        if cut < stream.len() {
            // Mid-stream cut: fewer messages, and a non-boundary cut errors.
            prop_assert!(n < 4);
        } else {
            prop_assert!(err.is_none());
            prop_assert_eq!(n, 4);
        }
    }

    /// A single bit flipped anywhere in a valid stream: the reader must
    /// fail or decode different-but-bounded messages — never panic. A flip
    /// in a frame body is always caught by the CRC.
    #[test]
    fn bit_flips_never_panic_and_body_flips_fail_crc(
        pos in any::<usize>(),
        bit in 0usize..8,
    ) {
        let mut stream = sample_stream();
        let pos = pos % stream.len();
        stream[pos] ^= 1 << bit;
        let (n, err) = drain(stream);
        prop_assert!(n <= 4);
        // Offset 0..8 is the first frame's own header (length prefix /
        // CRC field): corruption there may masquerade as a huge length or
        // a CRC mismatch. Anywhere else the first frame that covers the
        // flipped byte fails its CRC check.
        if pos >= 8 {
            prop_assert!(err.is_some(), "flip at {} went unnoticed", pos);
        }
    }

    /// Round-trip stability under concatenation: any sequence of cheap
    /// messages written back-to-back reads back identically.
    #[test]
    fn streams_of_messages_roundtrip(oids in prop::collection::vec(any::<u64>(), 0..16)) {
        let counters = Arc::new(TransferCounters::new());
        let mut w = FrameWriter::new(Vec::new(), counters);
        for &oid in &oids {
            w.write_message(&Message::Fetch { oid: tep_model::ObjectId(oid) }).unwrap();
        }
        let (n, err) = drain(w.into_inner());
        prop_assert!(err.is_none());
        prop_assert_eq!(n, oids.len());
    }

    /// The payload encoder/decoder pair is stable for DONE frames over the
    /// whole u64 range (length-prefixed ints, no varint edge cases).
    #[test]
    fn done_roundtrips_over_u64_range(records in any::<u64>(), nodes in any::<u64>()) {
        let msg = Message::Done { records, nodes };
        let payload = encode_message(&msg);
        let back = decode_message(&payload).unwrap();
        prop_assert!(matches!(
            back,
            Message::Done { records: r, nodes: n } if r == records && n == nodes
        ));
    }
}
