//! Chaos soak: FaultListener × FaultVfs × TamperProxy over a seeded
//! matrix.
//!
//! The invariant under test, from the robustness roadmap: **every** run
//! ends in exactly one of
//!
//! 1. complete + verified (byte-identical to the uncut baseline),
//! 2. resumed + verified (ditto),
//! 3. a clean *retryable* error,
//! 4. attributed tamper evidence,
//!
//! — never a hang, never a panic, never a silently short verified result.
//! "Byte-identical" is enforced by diffing the rolling record-stream
//! digest (which covers every record byte, in order), the record/node
//! totals, and the recomputed object hash against an uncut transfer.
//!
//! The sweep seed comes from `TEP_CHAOS_SEED` (CI sweeps {1, 2009,
//! 31337}, one per job); unset, all three run.

use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_core::attack::Tamper;
use tep_core::hashing::HashingStrategy;
use tep_core::provenance::{collect, ProvenanceObject};
use tep_core::verify::EvidenceKind;
use tep_core::{ProvenanceRecord, ProvenanceTracker, TrackerConfig};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{CertificateAuthority, KeyDirectory, ParticipantId};
use tep_model::{Forest, ObjectId, Value};
use tep_net::wire::Message;
use tep_net::{
    serve, Catalog, Client, ClientConfig, ErrorCode, FaultKind, FaultListener, FaultPlan, NetError,
    ProxyAction, RetryPolicy, ServerConfig, TamperProxy,
};
use tep_storage::vfs::{FaultConfig, FaultVfs};
use tep_storage::ProvenanceDb;
use tep_workloads::{schedule, seeds_from_env, WireFault};

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

/// Stall must exceed the client's read timeout to register as a fault.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_millis(350);
const STALL: Duration = Duration::from_millis(600);

struct ChaosWorld {
    catalog: Arc<Catalog>,
    keys: KeyDirectory,
    forest: Forest,
    chain: ObjectId,
    prov: ProvenanceObject,
}

static WORLD: OnceLock<ChaosWorld> = OnceLock::new();

fn world() -> &'static ChaosWorld {
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC4405);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(alice.certificate().clone()).unwrap();

        let db = Arc::new(ProvenanceDb::in_memory());
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Economical,
            },
            Arc::clone(&db),
        );
        let (chain, _) = tracker.insert(&alice, Value::Int(0), None).unwrap();
        for i in 1..12i64 {
            tracker.update(&alice, chain, Value::Int(i)).unwrap();
        }
        let prov = collect(&db, chain).unwrap();
        let forest = tracker.forest().clone();
        let catalog = Arc::new(Catalog::new(forest.clone(), db, ALG, vec![chain]));
        ChaosWorld {
            catalog,
            keys,
            forest,
            chain,
            prov,
        }
    })
}

fn start_server() -> tep_net::ServerHandle {
    serve(
        Arc::clone(&world().catalog),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap()
}

fn chaos_client(addr: SocketAddr, max_attempts: u32, resume: bool) -> Client {
    let mut cfg = ClientConfig::new(ALG);
    cfg.resume = resume;
    cfg.read_timeout = CLIENT_READ_TIMEOUT;
    cfg.retry = RetryPolicy {
        max_attempts,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    Client::new(addr, cfg)
}

fn to_fault_kind(fault: WireFault) -> FaultKind {
    match fault {
        WireFault::CutBoundary => FaultKind::CutBoundary,
        WireFault::CutMidFrame => FaultKind::CutMidFrame,
        WireFault::BitFlip => FaultKind::BitFlip,
        WireFault::Stall => FaultKind::Stall(STALL),
        WireFault::Reset => FaultKind::Reset,
    }
}

/// The uncut reference transfer every chaos run is diffed against.
struct Baseline {
    records: u64,
    nodes: u64,
    stream_digest: Vec<u8>,
    object_hash: Vec<u8>,
    /// Downstream frames of a full transfer: HELLO, OFFER, one PROV per
    /// record, the DATA chunks, DONE.
    frames: u64,
}

fn baseline(srv_addr: SocketAddr) -> Baseline {
    let w = world();
    let mut cl = chaos_client(srv_addr, 1, true);
    let rep = cl.fetch_verified(w.chain, &w.keys).unwrap();
    assert!(rep.verification.verified());
    assert_eq!(rep.resumed, 0);
    let data_frames = cl.counters().frames_received - 3 - rep.records; // HELLO+OFFER+DONE
    Baseline {
        records: rep.records,
        nodes: rep.nodes,
        stream_digest: rep.stream_digest,
        object_hash: rep.object_hash,
        frames: 3 + rep.records + data_frames,
    }
}

/// One-shot faults with a retrying, resuming client: every run in the
/// seeded matrix must recover to a verified transfer byte-identical to
/// the baseline — cut, torn, flipped, stalled, or reset, at every
/// downstream frame.
#[test]
fn seeded_fault_matrix_always_recovers_byte_identically() {
    let w = world();
    let srv = start_server();
    let base = baseline(srv.addr());
    assert_eq!(base.records, w.prov.records.len() as u64);

    let mut runs = 0u64;
    let mut resumed_runs = 0u64;
    for seed in seeds_from_env("TEP_CHAOS_SEED") {
        for point in schedule(seed, base.frames, 2) {
            let fl = FaultListener::spawn(
                srv.addr(),
                FaultPlan {
                    kind: to_fault_kind(point.fault),
                    frame: point.frame,
                    seed: point.seed,
                    once: true,
                },
            )
            .unwrap();
            let mut cl = chaos_client(fl.addr(), 5, true);
            let ctx = format!("seed {seed} {:?} at frame {}", point.fault, point.frame);
            let rep = cl
                .fetch_verified(w.chain, &w.keys)
                .unwrap_or_else(|e| panic!("{ctx}: one-shot fault did not recover: {e}"));
            assert!(rep.verification.verified(), "{ctx}");
            assert_eq!(rep.records, base.records, "{ctx}: short record set");
            assert_eq!(rep.nodes, base.nodes, "{ctx}: short data set");
            assert_eq!(
                rep.stream_digest, base.stream_digest,
                "{ctx}: record bytes differ"
            );
            assert_eq!(rep.object_hash, base.object_hash, "{ctx}: hash differs");
            runs += 1;
            resumed_runs += u64::from(rep.resumed > 0);
            fl.shutdown();
        }
    }
    assert!(runs >= 40, "matrix too small to be a soak ({runs} runs)");
    assert!(
        resumed_runs > 0,
        "at least some cut transfers must have exercised RESUME"
    );
    srv.shutdown();
}

/// Persistent faults (firing on every connection) with resume disabled:
/// the client must land on a clean *retryable* error once the attempt cap
/// is spent — not a hang, not a panic, and above all not a short verified
/// result.
#[test]
fn persistent_faults_end_in_clean_retryable_errors() {
    let w = world();
    let srv = start_server();
    let base = baseline(srv.addr());

    for kind in [
        WireFault::CutBoundary,
        WireFault::CutMidFrame,
        WireFault::BitFlip,
        WireFault::Reset,
    ] {
        for frame in [0, 2, base.frames / 2, base.frames - 1] {
            let fl = FaultListener::spawn(
                srv.addr(),
                FaultPlan {
                    kind: to_fault_kind(kind),
                    frame,
                    seed: 0x5EED ^ frame,
                    once: false,
                },
            )
            .unwrap();
            let mut cl = chaos_client(fl.addr(), 2, false);
            let ctx = format!("{kind:?} every connection at frame {frame}");
            let err = cl.fetch_verified(w.chain, &w.keys).expect_err(&format!(
                "{ctx}: cannot complete through a persistent fault"
            ));
            assert!(err.is_retryable(), "{ctx}: got terminal error {err}");
            assert_eq!(cl.counters().retries, 1, "{ctx}: attempt cap not honored");
            assert!(fl.fired() >= 2, "{ctx}: fault should fire per attempt");
            fl.shutdown();
        }
    }
    srv.shutdown();
}

/// FaultVfs composition: the served records themselves come from a
/// database that lost power mid-write and recovered. Whatever survived,
/// the client ends verified-complete, with attributed evidence (the
/// recovered history no longer explains the live data), or with a clean
/// protocol error — never a partial result presented as verified.
#[test]
fn crash_recovered_stores_never_yield_partial_verified_results() {
    let w = world();
    let total = w.prov.records.len();
    let path = std::path::Path::new("chaos.db");

    // Dry run to size the mutating-op space.
    let vfs = FaultVfs::new(FaultConfig {
        seed: 7,
        ..FaultConfig::default()
    });
    {
        let db = ProvenanceDb::durable_with(vfs.clone(), path).unwrap();
        for rec in &w.prov.records {
            db.append(rec.to_stored()).unwrap();
        }
        db.sync().unwrap();
    }
    let total_ops = vfs.ops();
    assert!(total_ops > 3, "workload too small to crash interestingly");

    let mut complete = 0u64;
    let mut evidence = 0u64;
    let mut refused = 0u64;
    let step = (total_ops / 10).max(1);
    let mut crash_points: Vec<u64> = (1..=total_ops).step_by(step as usize).collect();
    crash_points.push(total_ops + 100); // never fires: the fully durable case
    for crash_at in crash_points {
        let vfs = FaultVfs::new(FaultConfig {
            seed: 0xD15C ^ crash_at,
            crash_at_op: Some(crash_at),
            ..FaultConfig::default()
        });
        {
            let Ok(db) = ProvenanceDb::durable_with(vfs.clone(), path) else {
                continue; // crashed during open: nothing to serve
            };
            for rec in &w.prov.records {
                if db.append(rec.to_stored()).is_err() {
                    break;
                }
            }
            let _ = db.sync();
        }
        vfs.power_cycle();
        let Ok(db) = ProvenanceDb::durable_with(vfs.clone(), path) else {
            continue;
        };
        let recovered = db.records_for(w.chain).len();
        assert!(recovered <= total, "recovery invented records");

        let catalog = Arc::new(Catalog::new(
            w.forest.clone(),
            Arc::new(db),
            ALG,
            vec![w.chain],
        ));
        let srv = serve(
            catalog,
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default(),
        )
        .unwrap();
        // A one-shot wire cut on top of the crash-recovered store: the
        // net and storage fault planes compose.
        let fl = FaultListener::spawn(
            srv.addr(),
            FaultPlan {
                kind: FaultKind::CutBoundary,
                frame: 3,
                seed: crash_at,
                once: true,
            },
        )
        .unwrap();
        let mut cl = chaos_client(fl.addr(), 5, true);
        let ctx = format!("crash at op {crash_at} ({recovered}/{total} records recovered)");
        match cl.fetch_verified(w.chain, &w.keys) {
            Ok(rep) => {
                assert_eq!(
                    rep.records, total as u64,
                    "{ctx}: verified a SHORT transfer — the invariant is broken"
                );
                assert_eq!(rep.object_hash, {
                    let mut cl2 = chaos_client(srv.addr(), 1, false);
                    // recovered == total here, so a direct fetch agrees
                    cl2.fetch_verified(w.chain, &w.keys).unwrap().object_hash
                });
                complete += 1;
            }
            Err(NetError::TamperDetected { issues, .. }) => {
                assert!(!issues.is_empty(), "{ctx}: evidence must be attributed");
                evidence += 1;
            }
            Err(NetError::Remote {
                code: ErrorCode::UnknownObject,
                ..
            }) => {
                assert_eq!(recovered, 0, "{ctx}: refused despite surviving records");
                refused += 1;
            }
            Err(other) => panic!("{ctx}: outcome outside the invariant set: {other}"),
        }
        fl.shutdown();
        srv.shutdown();
    }
    assert!(complete >= 1, "the never-crashing control case must verify");
    assert!(
        evidence + refused >= 1,
        "no crash point damaged the store; sweep is vacuous"
    );
}

/// TamperProxy composition: a tampered stream that is *also* cut and
/// resumed must surface the same evidence kind as the uncut tampered
/// stream — resumption must not launder or reclassify an attack.
/// A proxy mutator that applies `tamper` to whichever PROV record it
/// matches, recomputing the frame CRC as a real attacker would.
fn tamper_mutator(tamper: Tamper) -> tep_net::proxy::Mutator {
    Box::new(move |_frame, msg| {
        let Message::Prov { record } = msg else {
            return ProxyAction::Forward;
        };
        let Ok(rec) = ProvenanceRecord::from_stored(record) else {
            return ProxyAction::Forward;
        };
        let mut holder = ProvenanceObject {
            target: rec.output_oid,
            records: vec![rec],
        };
        if !tep_core::attack::apply_tamper(&mut holder, &tamper) {
            return ProxyAction::Forward;
        }
        match holder.records.into_iter().next() {
            Some(t) => ProxyAction::Replace(Message::Prov {
                record: t.to_stored(),
            }),
            None => ProxyAction::Drop,
        }
    })
}

/// The tamper every proxy-based test applies: flip the newest record's
/// output hash (the paper's canonical R1 violation).
fn flip_last_tamper() -> Tamper {
    let last = world().prov.records.last().unwrap();
    Tamper::FlipOutputHash {
        oid: last.output_oid,
        seq: last.seq_id,
    }
}

#[test]
fn resumed_tampered_stream_reports_the_same_evidence_kind() {
    let w = world();
    let srv = start_server();
    let tamper = flip_last_tamper();

    let kind_of = |err: NetError| -> Vec<EvidenceKind> {
        match err {
            NetError::TamperDetected { issues, .. } => issues.iter().map(|i| i.kind()).collect(),
            other => panic!("expected TamperDetected, got: {other}"),
        }
    };

    // Uncut tampered run.
    let proxy = TamperProxy::spawn(srv.addr(), tamper_mutator(tamper.clone())).unwrap();
    let mut cl = chaos_client(proxy.addr(), 1, true);
    let uncut_kinds = kind_of(cl.fetch_verified(w.chain, &w.keys).unwrap_err());
    proxy.shutdown();

    // Cut, resumed, tampered run: same attack, interrupted mid-stream.
    let proxy = TamperProxy::spawn(srv.addr(), tamper_mutator(tamper)).unwrap();
    let fl = FaultListener::spawn(
        proxy.addr(),
        FaultPlan {
            kind: FaultKind::CutBoundary,
            frame: 5,
            seed: 5,
            once: true,
        },
    )
    .unwrap();
    let mut cl = chaos_client(fl.addr(), 4, true);
    let resumed_kinds = kind_of(cl.fetch_verified(w.chain, &w.keys).unwrap_err());
    assert_eq!(
        uncut_kinds, resumed_kinds,
        "resumption reclassified the attack"
    );
    assert_eq!(
        cl.counters().retries,
        1,
        "the cut was retried once; the evidence never was"
    );
    fl.shutdown();
    proxy.shutdown();
    srv.shutdown();
}

/// A generously-budgeted client for the thousand-connection soak: on a
/// loaded single-core box a thread may sit descheduled for whole seconds,
/// so the per-read timeout and retry budget are sized for scheduling
/// noise, not for fault detection (the soak's faults are cuts and
/// tampering, not stalls).
fn soak_client(addr: SocketAddr, max_attempts: u32, resume: bool) -> Client {
    let mut cfg = ClientConfig::new(ALG);
    cfg.resume = resume;
    cfg.read_timeout = Duration::from_secs(10);
    cfg.retry = RetryPolicy {
        max_attempts,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        deadline: Duration::from_secs(120),
    };
    Client::new(addr, cfg)
}

/// Every `tep_core_evidence_*` counter in `reg` with a nonzero total,
/// sorted by name — the per-kind evidence ledger.
fn evidence_counts(reg: &tep_obs::Registry) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = reg
        .snapshot()
        .into_iter()
        .filter(|s| s.name.starts_with("tep_core_evidence_"))
        .filter_map(|s| match s.value {
            tep_obs::MetricValue::Counter(n) if n > 0 => Some((s.name, n)),
            _ => None,
        })
        .collect();
    v.sort();
    v
}

/// The value of counter `name` in a STATS text exposition.
fn stats_counter(stats: &str, name: &str) -> u64 {
    let prefix = format!("{name} ");
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("{name} not in stats"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{name} not a counter: {e}"))
}

/// The event-loop rewrite's scale target: 1000+ concurrent connections
/// multiplexed on the one server thread, with clean, cut, persistently
/// faulty, and tampered traffic interleaved. Every connection must settle
/// in the invariant quartet — complete, resumed, clean retryable error,
/// attributed evidence — and the evidence ledger must account for each
/// tampered connection **exactly, per kind**: the expected counts are 8×
/// whatever one control run of the same attack records, so a detection
/// that goes missing (or fires twice) under load fails the soak.
#[test]
fn thousand_connection_soak_settles_every_outcome() {
    const CLEAN: usize = 1000;
    const CUT: usize = 8;
    const FAULTY: usize = 8;
    const TAMPERED: usize = 8;

    let w = world();
    let srv = serve(
        Arc::clone(&w.catalog),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig {
            queue_depth: 2048,
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(60),
            connection_deadline: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let base = Arc::new(baseline(srv.addr()));
    let addr = srv.addr();

    // Control: the per-kind evidence one flipped-hash transfer records.
    let expected = {
        let control_reg = tep_obs::Registry::new();
        let proxy = TamperProxy::spawn(addr, tamper_mutator(flip_last_tamper())).unwrap();
        let mut cl = soak_client(proxy.addr(), 1, true);
        cl.attach_obs(&control_reg);
        let err = cl.fetch_verified(w.chain, &w.keys).unwrap_err();
        assert!(
            matches!(err, NetError::TamperDetected { .. }),
            "control run must detect the flip: {err}"
        );
        proxy.shutdown();
        evidence_counts(&control_reg)
    };
    assert!(!expected.is_empty(), "control run recorded no evidence");

    let tamper_reg = tep_obs::Registry::new();
    let mut handles = Vec::with_capacity(CLEAN + CUT + FAULTY + TAMPERED);
    let spawn = |name: String, body: Box<dyn FnOnce() + Send>| {
        std::thread::Builder::new()
            .name(name)
            .stack_size(256 * 1024)
            .spawn(body)
            .expect("spawn soak thread")
    };

    for i in 0..CLEAN {
        let base = Arc::clone(&base);
        handles.push(spawn(
            format!("soak-clean-{i}"),
            Box::new(move || {
                // Stagger the connect wave so the kernel accept queue is
                // not hit by 1000 SYNs in the same millisecond.
                std::thread::sleep(Duration::from_millis((i % 64) as u64));
                let w = world();
                let mut cl = soak_client(addr, 8, true);
                let rep = cl
                    .fetch_verified(w.chain, &w.keys)
                    .unwrap_or_else(|e| panic!("clean #{i}: {e}"));
                assert!(rep.verification.verified(), "clean #{i}");
                assert_eq!(rep.records, base.records, "clean #{i}: short record set");
                assert_eq!(rep.nodes, base.nodes, "clean #{i}: short data set");
                assert_eq!(
                    rep.stream_digest, base.stream_digest,
                    "clean #{i}: record bytes differ"
                );
                assert_eq!(
                    rep.object_hash, base.object_hash,
                    "clean #{i}: hash differs"
                );
            }),
        ));
    }

    for i in 0..CUT {
        let base = Arc::clone(&base);
        handles.push(spawn(
            format!("soak-cut-{i}"),
            Box::new(move || {
                let w = world();
                let fl = FaultListener::spawn(
                    addr,
                    FaultPlan {
                        kind: FaultKind::CutBoundary,
                        // Frames 4..9: 2-7 PROV records delivered before
                        // the cut, so a checkpoint always exists.
                        frame: 4 + (i as u64 % 6),
                        seed: 0x50AC ^ i as u64,
                        once: true,
                    },
                )
                .unwrap();
                let mut cl = soak_client(fl.addr(), 8, true);
                let rep = cl
                    .fetch_verified(w.chain, &w.keys)
                    .unwrap_or_else(|e| panic!("cut #{i}: did not recover: {e}"));
                assert!(rep.verification.verified(), "cut #{i}");
                assert!(rep.resumed >= 1, "cut #{i}: recovered without RESUME");
                assert_eq!(
                    rep.stream_digest, base.stream_digest,
                    "cut #{i}: record bytes differ"
                );
                assert_eq!(rep.object_hash, base.object_hash, "cut #{i}: hash differs");
                fl.shutdown();
            }),
        ));
    }

    for i in 0..FAULTY {
        handles.push(spawn(
            format!("soak-faulty-{i}"),
            Box::new(move || {
                let w = world();
                let fl = FaultListener::spawn(
                    addr,
                    FaultPlan {
                        kind: FaultKind::CutBoundary,
                        frame: 2,
                        seed: 0xFA17 ^ i as u64,
                        once: false,
                    },
                )
                .unwrap();
                let mut cl = soak_client(fl.addr(), 2, false);
                let err = cl
                    .fetch_verified(w.chain, &w.keys)
                    .expect_err("faulty: cannot complete through a persistent cut");
                assert!(err.is_retryable(), "faulty #{i}: terminal error {err}");
                fl.shutdown();
            }),
        ));
    }

    for i in 0..TAMPERED {
        let reg = tamper_reg.clone();
        handles.push(spawn(
            format!("soak-tamper-{i}"),
            Box::new(move || {
                let w = world();
                let proxy = TamperProxy::spawn(addr, tamper_mutator(flip_last_tamper())).unwrap();
                let mut cl = soak_client(proxy.addr(), 1, true);
                cl.attach_obs(&reg);
                let err = cl
                    .fetch_verified(w.chain, &w.keys)
                    .expect_err("tampered: must not verify");
                assert!(
                    matches!(err, NetError::TamperDetected { .. }),
                    "tampered #{i}: wrong failure class: {err}"
                );
                proxy.shutdown();
            }),
        ));
    }

    for h in handles {
        h.join().expect("soak thread panicked");
    }

    // Per-kind exactness: 8 tampered connections, each recording exactly
    // the control run's evidence — no more (double counting under load),
    // no less (detections lost in the fan-in).
    let want: Vec<(String, u64)> = expected
        .iter()
        .map(|(name, n)| (name.clone(), n * TAMPERED as u64))
        .collect();
    assert_eq!(
        evidence_counts(&tamper_reg),
        want,
        "evidence ledger must account for all {TAMPERED} tampered connections exactly"
    );

    // The one event-loop thread really did carry the whole fleet.
    let mut cl = soak_client(addr, 3, true);
    let stats = cl.stats().unwrap();
    let conns = stats_counter(&stats, "tep_net_connections_total");
    assert!(
        conns >= (CLEAN + CUT + FAULTY + TAMPERED) as u64,
        "server saw only {conns} connections"
    );
    srv.shutdown();
}
