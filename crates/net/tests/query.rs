//! End-to-end QUERY/QRESULT loopback: a real TCP server running the query
//! engine, a real client re-verifying every slice proof on receive, and a
//! man-in-the-middle proxy tampering with QRESULT frames in flight
//! (recomputing the CRC, as a real attacker would).

use std::net::SocketAddr;
use std::sync::{Arc, OnceLock};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_core::slice::{QueryAnswer, QueryBounds, QueryOp, QuerySpec, SliceProof};
use tep_core::{ProvenanceTracker, TrackerConfig};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{CertificateAuthority, KeyDirectory, ParticipantId};
use tep_model::{AggregateMode, ObjectId, Value};
use tep_net::{
    serve, Catalog, Client, ClientConfig, ErrorCode, NetError, ProxyAction, ServerConfig,
    TamperProxy,
};
use tep_storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

struct QueryWorld {
    catalog: Arc<Catalog>,
    keys: KeyDirectory,
    alice: ParticipantId,
    a: ObjectId,
    b: ObjectId,
    c: ObjectId,
    d: ObjectId,
}

static WORLD: OnceLock<QueryWorld> = OnceLock::new();

/// Diamond DAG (same shape as the tep-query unit tests): `c = agg[a, b]`,
/// `d = agg[a, c]`, so `a` appears twice in d's lineage.
fn world() -> &'static QueryWorld {
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x0DA7A);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(alice.certificate().clone()).unwrap();
        keys.register(bob.certificate().clone()).unwrap();

        let db = Arc::new(ProvenanceDb::in_memory());
        let mut tracker = ProvenanceTracker::new(TrackerConfig::default(), Arc::clone(&db));
        let (a, _) = tracker.insert(&alice, Value::Int(1), None).unwrap();
        let (b, _) = tracker.insert(&bob, Value::Int(2), None).unwrap();
        let (c, _) = tracker
            .aggregate(&bob, &[a, b], Value::Int(3), AggregateMode::Atomic)
            .unwrap();
        let (d, _) = tracker
            .aggregate(&alice, &[a, c], Value::Int(4), AggregateMode::Atomic)
            .unwrap();

        let catalog = Arc::new(Catalog::new(
            tracker.forest().clone(),
            db,
            ALG,
            vec![a, b, c, d],
        ));
        QueryWorld {
            catalog,
            keys,
            alice: alice.id(),
            a,
            b,
            c,
            d,
        }
    })
}

fn start_server() -> tep_net::ServerHandle {
    serve(
        Arc::clone(&world().catalog),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap()
}

fn client(addr: SocketAddr) -> Client {
    Client::new(addr, ClientConfig::new(ALG))
}

fn objects(answer: &QueryAnswer) -> Vec<ObjectId> {
    match answer {
        QueryAnswer::Objects(o) => o.clone(),
        other => panic!("expected object answer, got {other:?}"),
    }
}

#[test]
fn every_operator_roundtrips_and_reverifies_client_side() {
    let w = world();
    let srv = start_server();
    let mut cl = client(srv.addr());

    let rep = cl
        .query(&QuerySpec::new(QueryOp::Ancestors, w.d), &w.keys)
        .unwrap();
    assert!(rep.verification.verified());
    assert_eq!(objects(&rep.proof.answer), vec![w.a, w.b, w.c]);

    let rep = cl
        .query(&QuerySpec::new(QueryOp::Descendants, w.a), &w.keys)
        .unwrap();
    assert!(rep.verification.verified());
    assert_eq!(objects(&rep.proof.answer), vec![w.c, w.d]);

    let rep = cl
        .query(&QuerySpec::new(QueryOp::LineageSlice, w.d), &w.keys)
        .unwrap();
    assert!(rep.verification.verified());
    assert_eq!(objects(&rep.proof.answer), vec![w.a, w.b, w.c]);

    let rep = cl.query(&QuerySpec::audit(w.alice), &w.keys).unwrap();
    assert!(rep.verification.verified());
    assert_eq!(objects(&rep.proof.answer), vec![w.a, w.d]);

    let rep = cl
        .query(&QuerySpec::new(QueryOp::Polynomial, w.d), &w.keys)
        .unwrap();
    assert!(rep.verification.verified());
    match &rep.proof.answer {
        QueryAnswer::Polynomial(p) => {
            // d = a · (a · b): the diamond on a squares its variable.
            assert_eq!(p.eval(|_| 2), 8);
            assert_eq!(p.terms.len(), 1);
        }
        other => panic!("expected polynomial answer, got {other:?}"),
    }

    // The server counted each request under its operator.
    let text = srv.registry().render_text();
    for op in ["ancestors", "descendants", "lineage", "audit", "polynomial"] {
        assert!(
            text.contains(&format!("tep_query_requests_{op}_total 1")),
            "missing per-operator counter for {op} in:\n{text}"
        );
    }
    assert!(text.contains("tep_net_queries_total 5"), "{text}");
}

#[test]
fn bounded_query_travels_with_boundary_links() {
    let w = world();
    let srv = start_server();
    let mut cl = client(srv.addr());
    let spec = QuerySpec {
        op: QueryOp::Ancestors,
        target: w.d,
        participant: None,
        bounds: QueryBounds {
            max_depth: Some(1),
            seq_range: None,
        },
    };
    let rep = cl.query(&spec, &w.keys).unwrap();
    assert!(rep.verification.verified());
    assert_eq!(objects(&rep.proof.answer), vec![w.a, w.c]);
    // b is clipped behind the depth bound; its chain checksum rides along.
    assert!(!rep.proof.boundary.is_empty());
}

#[test]
fn query_errors_surface_as_remote_refusals() {
    let w = world();
    let srv = start_server();
    let mut cl = client(srv.addr());

    let err = cl
        .query(&QuerySpec::new(QueryOp::Ancestors, ObjectId(404)), &w.keys)
        .unwrap_err();
    match err {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::UnknownObject),
        other => panic!("expected remote refusal, got {other}"),
    }

    // An audit with no participant is a bad request, not evidence.
    let bad = QuerySpec {
        op: QueryOp::AuditSlice,
        target: ObjectId(0),
        participant: None,
        bounds: QueryBounds::default(),
    };
    let err = cl.query(&bad, &w.keys).unwrap_err();
    match err {
        NetError::Remote { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
        other => panic!("expected remote refusal, got {other}"),
    }

    // The connectionable errors left the server usable: a clean query
    // still round-trips afterwards.
    let rep = cl
        .query(&QuerySpec::new(QueryOp::Ancestors, w.c), &w.keys)
        .unwrap();
    assert!(rep.verification.verified());
}

/// In-flight QRESULT tampering: the proxy decodes the frame, flips one
/// byte inside the proof body, and re-frames with a valid CRC. The client
/// must reject (decode failure or attributed evidence) and never retry.
#[test]
fn tampered_qresult_is_rejected_and_never_retried() {
    let w = world();
    let srv = start_server();

    // Flip a byte near the end of the proof (inside the answer section).
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(|_frame, msg| match msg {
            tep_net::Message::QResult { proof } => {
                let mut bad = proof.clone();
                let i = bad.len() - 3;
                bad[i] ^= 0x01;
                ProxyAction::Replace(tep_net::Message::QResult { proof: bad })
            }
            _ => ProxyAction::Forward,
        }),
    )
    .unwrap();

    let mut cl = client(proxy.addr());
    let err = cl
        .query(&QuerySpec::new(QueryOp::Ancestors, w.d), &w.keys)
        .unwrap_err();
    assert!(
        matches!(err, NetError::TamperDetected { .. } | NetError::Protocol(_)),
        "tampered proof must be terminal, got: {err}"
    );
    assert!(!err.is_retryable(), "tamper evidence must never be retried");
    assert_eq!(cl.counters().retries, 0);
    proxy.shutdown();
}

/// A proxy answering a *different question* (replaying a valid proof for
/// another target) is caught by the spec echo check.
#[test]
fn replayed_answer_for_the_wrong_question_is_rejected() {
    let w = world();
    let srv = start_server();

    // Capture d's ancestors proof, then replay it for c's query.
    let mut cl = client(srv.addr());
    let good = cl
        .query(&QuerySpec::new(QueryOp::Ancestors, w.d), &w.keys)
        .unwrap();
    let replay = good.proof.to_bytes();

    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(move |_frame, msg| match msg {
            tep_net::Message::QResult { .. } => ProxyAction::Replace(tep_net::Message::QResult {
                proof: replay.clone(),
            }),
            _ => ProxyAction::Forward,
        }),
    )
    .unwrap();

    let mut cl = client(proxy.addr());
    let err = cl
        .query(&QuerySpec::new(QueryOp::Ancestors, w.c), &w.keys)
        .unwrap_err();
    match err {
        NetError::TamperDetected { issues, .. } => {
            assert!(!issues.is_empty());
        }
        other => panic!("expected tamper evidence, got {other}"),
    }
    proxy.shutdown();
}

/// The QRESULT wire bytes are exactly the canonical proof encoding: what
/// the client verified is byte-identical to what `SliceProof::to_bytes`
/// produces for the decoded proof.
#[test]
fn qresult_bytes_are_canonical() {
    let w = world();
    let srv = start_server();
    let mut cl = client(srv.addr());
    let rep = cl
        .query(&QuerySpec::new(QueryOp::LineageSlice, w.d), &w.keys)
        .unwrap();
    let bytes = rep.proof.to_bytes();
    assert_eq!(SliceProof::from_bytes(&bytes).unwrap(), rep.proof);
}
