//! The RESUME protocol, end to end: interrupted transfers continue from
//! the last verified record and land byte-identical to an uncut run,
//! malformed or dishonest resume points are refused without a single
//! record, and the server's overload/deadline machinery answers with
//! retryable protocol errors instead of silence.

use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_core::hashing::HashingStrategy;
use tep_core::metrics::TransferCounters;
use tep_core::provenance::{collect, ProvenanceObject};
use tep_core::streaming::RecordStreamDigest;
use tep_core::verify::{StreamingVerifier, TamperEvidence};
use tep_core::{ProvenanceRecord, ProvenanceTracker, TrackerConfig};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{CertificateAuthority, KeyDirectory, ParticipantId};
use tep_model::{Forest, ObjectId, Value};
use tep_net::wire::{FrameReader, FrameWriter, Message};
use tep_net::{
    serve, Catalog, Client, ClientConfig, ErrorCode, FaultKind, FaultListener, FaultPlan, NetError,
    ProxyAction, RetryPolicy, ServerConfig, TamperProxy, WIRE_VERSION,
};
use tep_obs::names;
use tep_storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

/// A single-object world with a long linear history: one insert plus a
/// chain of updates, so a transfer has enough PROV frames to cut at
/// interesting points. Downstream frame layout: HELLO = 0, OFFER = 1,
/// PROV = 2..2+records, then one DATA frame, then DONE.
struct ResumeWorld {
    catalog: Arc<Catalog>,
    keys: KeyDirectory,
    forest: Forest,
    chain: ObjectId,
    chain_hash: Vec<u8>,
    prov: ProvenanceObject,
}

static WORLD: OnceLock<ResumeWorld> = OnceLock::new();

fn world() -> &'static ResumeWorld {
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5E5_0FF5);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(alice.certificate().clone()).unwrap();

        let db = Arc::new(ProvenanceDb::in_memory());
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                strategy: HashingStrategy::Economical,
            },
            Arc::clone(&db),
        );
        let (chain, _) = tracker.insert(&alice, Value::Int(0), None).unwrap();
        for i in 1..12i64 {
            tracker.update(&alice, chain, Value::Int(i)).unwrap();
        }

        let chain_hash = tracker.object_hash(chain).unwrap();
        let prov = collect(&db, chain).unwrap();
        let forest = tracker.forest().clone();
        let catalog = Arc::new(Catalog::new(forest.clone(), db, ALG, vec![chain]));
        ResumeWorld {
            catalog,
            keys,
            forest,
            chain,
            chain_hash,
            prov,
        }
    })
}

fn start_server() -> tep_net::ServerHandle {
    serve(
        Arc::clone(&world().catalog),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap()
}

/// A resuming client with fast failure detection and tiny backoff.
fn resume_client(addr: SocketAddr) -> Client {
    let mut cfg = ClientConfig::new(ALG);
    cfg.read_timeout = Duration::from_millis(800);
    cfg.retry = RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    Client::new(addr, cfg)
}

/// The server-side rolling digest over the first `k` records, recomputed
/// the same way both endpoints do.
fn digest_over(prov: &ProvenanceObject, oid: ObjectId, k: usize) -> Vec<u8> {
    let mut d = RecordStreamDigest::new(ALG, oid);
    for rec in &prov.records[..k] {
        d.push(&rec.to_stored().to_bytes());
    }
    d.current().to_vec()
}

#[test]
fn cut_transfer_resumes_and_matches_uncut_baseline() {
    let w = world();
    let srv = start_server();
    let baseline = resume_client(srv.addr())
        .fetch_verified(w.chain, &w.keys)
        .unwrap();
    assert_eq!(baseline.resumed, 0);
    assert_eq!(baseline.object_hash, w.chain_hash);
    let records = baseline.records;

    // Cut at a PROV frame, at the DATA frame, and at DONE: every resumed
    // transfer must deliver the byte-identical record sequence (equal
    // rolling digests), the same totals, and the same recomputed hash.
    for cut_frame in [3, 7, 2 + records, 2 + records + 1] {
        let fl = FaultListener::spawn(
            srv.addr(),
            FaultPlan {
                kind: FaultKind::CutBoundary,
                frame: cut_frame,
                seed: cut_frame,
                once: true,
            },
        )
        .unwrap();
        let mut cl = resume_client(fl.addr());
        let rep = cl.fetch_verified(w.chain, &w.keys).unwrap();
        assert_eq!(fl.fired(), 1, "cut at frame {cut_frame} never fired");
        assert!(rep.verification.verified());
        assert_eq!(rep.records, baseline.records, "cut at {cut_frame}");
        assert_eq!(
            rep.stream_digest, baseline.stream_digest,
            "cut at {cut_frame}"
        );
        assert_eq!(rep.object_hash, baseline.object_hash, "cut at {cut_frame}");
        assert!(
            rep.resumed >= 1,
            "cut at {cut_frame} after verified records should RESUME"
        );
        assert_eq!(cl.counters().retries, 1);
        fl.shutdown();
    }
    assert!(
        srv.registry().counter_value(names::NET_RESUMES) >= 4,
        "server should have counted the resumes"
    );
    srv.shutdown();
}

#[test]
fn resume_disabled_refetches_from_zero_and_still_verifies() {
    let w = world();
    let srv = start_server();
    let fl = FaultListener::spawn(
        srv.addr(),
        FaultPlan {
            kind: FaultKind::CutBoundary,
            frame: 7,
            seed: 7,
            once: true,
        },
    )
    .unwrap();
    let mut cfg = ClientConfig::new(ALG);
    cfg.resume = false;
    cfg.read_timeout = Duration::from_millis(800);
    cfg.retry = RetryPolicy {
        max_attempts: 4,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(5),
        ..RetryPolicy::default()
    };
    let mut cl = Client::new(fl.addr(), cfg);
    let rep = cl.fetch_verified(w.chain, &w.keys).unwrap();
    assert_eq!(rep.resumed, 0, "resume is off; the retry starts over");
    assert_eq!(rep.object_hash, w.chain_hash);
    assert_eq!(rep.records, w.prov.records.len() as u64);
    fl.shutdown();
    srv.shutdown();
}

/// Raw-wire sweep of resume offsets: a provable offset gets RESUME_OK
/// echoing exactly the claimed position, an unprovable one gets
/// `ERR resume-mismatch` — and in no case does the server start streaming
/// records for a claim it did not verify.
#[test]
fn resume_offsets_are_honored_exactly_or_refused() {
    let w = world();
    let srv = start_server();
    let total = w.prov.records.len() as u64;

    let counters = Arc::new(TransferCounters::new());
    let stream = TcpStream::connect(srv.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = FrameReader::new(stream.try_clone().unwrap(), Arc::clone(&counters));
    let mut writer = FrameWriter::new(stream, counters);
    writer
        .write_message(&Message::Hello {
            version: WIRE_VERSION,
            alg: ALG,
            tenant: 0,
        })
        .unwrap();
    assert!(matches!(
        reader.read_message().unwrap(),
        Some(Message::Hello { .. })
    ));
    assert!(matches!(
        reader.read_message().unwrap(),
        Some(Message::Offer { .. })
    ));

    // Provable offsets: 0 (empty prefix), mid-stream, the full stream.
    for k in [0, 3, total] {
        writer
            .write_message(&Message::Resume {
                oid: w.chain,
                records: k,
                digest: digest_over(&w.prov, w.chain, k as usize),
            })
            .unwrap();
        match reader.read_message().unwrap() {
            Some(Message::ResumeOk { records, digest }) => {
                assert_eq!(records, k);
                assert_eq!(digest, digest_over(&w.prov, w.chain, k as usize));
            }
            other => panic!("offset {k}: expected RESUME_OK, got {other:?}"),
        }
        // The rest of the transfer follows: exactly total - k records.
        let mut prov_frames = 0u64;
        loop {
            match reader.read_message().unwrap() {
                Some(Message::Prov { .. }) => prov_frames += 1,
                Some(Message::Data { .. }) => {}
                Some(Message::Done { records, .. }) => {
                    assert_eq!(records, total, "DONE totals cover the whole object");
                    break;
                }
                other => panic!("offset {k}: unexpected {other:?}"),
            }
        }
        assert_eq!(prov_frames, total - k, "offset {k} skipped wrong count");
    }

    // Unprovable offsets: beyond the end, absurdly huge, or a valid offset
    // claimed with the wrong digest. Refused, connection stays usable.
    let cases: Vec<(u64, Vec<u8>)> = vec![
        (total + 1, digest_over(&w.prov, w.chain, 0)),
        (u64::MAX, digest_over(&w.prov, w.chain, 0)),
        (3, vec![0xAB; 32]),
        (0, Vec::new()),
    ];
    for (k, digest) in cases {
        writer
            .write_message(&Message::Resume {
                oid: w.chain,
                records: k,
                digest,
            })
            .unwrap();
        match reader.read_message().unwrap() {
            Some(Message::Error { code, .. }) => {
                assert_eq!(code, ErrorCode::ResumeMismatch, "offset {k}");
            }
            other => panic!("offset {k}: expected ERR resume-mismatch, got {other:?}"),
        }
    }
    srv.shutdown();
}

/// A checkpoint sealed by the verifier, then damaged in any way — bit
/// flips, truncation, random bytes — must refuse to restore. The blob is
/// self-authenticating; there is no input that restores to a verifier
/// state other than the one sealed.
#[test]
fn pristine_checkpoint_restores_and_roundtrips_digest() {
    let w = world();
    let mut v = StreamingVerifier::new(&w.keys, ALG, w.chain);
    for rec in &w.prov.records[..5] {
        let parsed = ProvenanceRecord::from_stored(&rec.to_stored()).unwrap();
        assert_eq!(v.push_record(&parsed), 0);
    }
    let blob = v.checkpoint().expect("clean verifier must checkpoint");
    let restored = StreamingVerifier::restore(&w.keys, &blob).unwrap();
    assert_eq!(restored.stream_digest(), v.stream_digest());
    assert_eq!(
        v.stream_digest(),
        digest_over(&w.prov, w.chain, 5).as_slice(),
        "client digest and server recomputation must agree"
    );
}

fn sealed_checkpoint() -> Vec<u8> {
    static BLOB: OnceLock<Vec<u8>> = OnceLock::new();
    BLOB.get_or_init(|| {
        let w = world();
        let mut v = StreamingVerifier::new(&w.keys, ALG, w.chain);
        for rec in &w.prov.records[..5] {
            let parsed = ProvenanceRecord::from_stored(&rec.to_stored()).unwrap();
            v.push_record(&parsed);
        }
        v.checkpoint().unwrap()
    })
    .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single bit flip anywhere in the blob breaks the seal.
    #[test]
    fn flipped_checkpoints_never_restore(pos in any::<usize>(), bit in 0usize..8) {
        let w = world();
        let mut blob = sealed_checkpoint();
        let pos = pos % blob.len();
        blob[pos] ^= 1 << bit;
        prop_assert!(StreamingVerifier::restore(&w.keys, &blob).is_err(),
            "flip at byte {pos} bit {bit} restored");
    }

    /// Any truncation breaks the seal.
    #[test]
    fn truncated_checkpoints_never_restore(cut in any::<usize>()) {
        let w = world();
        let blob = sealed_checkpoint();
        let cut = cut % blob.len(); // strictly shorter than the original
        prop_assert!(StreamingVerifier::restore(&w.keys, &blob[..cut]).is_err());
    }

    /// Arbitrary bytes are not a checkpoint.
    #[test]
    fn random_blobs_never_restore(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let w = world();
        prop_assert!(StreamingVerifier::restore(&w.keys, &bytes).is_err());
    }
}

/// A man-in-the-middle (or a lying server) that *accepts* the resume but
/// confirms a digest it cannot prove: terminal tamper evidence, never a
/// retry — the two ends disagree about history.
#[test]
fn forged_resume_ok_is_tamper_evidence_and_never_retried() {
    let w = world();
    let srv = start_server();
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(|_frame, msg| {
            let Message::ResumeOk { records, digest } = msg else {
                return ProxyAction::Forward;
            };
            let mut digest = digest.clone();
            digest[0] ^= 0x01;
            ProxyAction::Replace(Message::ResumeOk {
                records: *records,
                digest,
            })
        }),
    )
    .unwrap();
    // Cut the first connection after a few verified records so the second
    // one opens with RESUME — which the proxy then forges.
    let fl = FaultListener::spawn(
        proxy.addr(),
        FaultPlan {
            kind: FaultKind::CutBoundary,
            frame: 6,
            seed: 6,
            once: true,
        },
    )
    .unwrap();
    let mut cl = resume_client(fl.addr());
    match cl.fetch_verified(w.chain, &w.keys).unwrap_err() {
        NetError::TamperDetected { issues, .. } => {
            assert!(
                issues
                    .iter()
                    .any(|i| matches!(i, TamperEvidence::ResumeMismatch { .. })),
                "expected resume-mismatch evidence, got {issues:?}"
            );
        }
        other => panic!("expected TamperDetected, got: {other}"),
    }
    let snap = cl.counters();
    assert_eq!(
        snap.retries, 1,
        "only the cut was retried, never the forgery"
    );
    assert!(snap.verify_failures >= 1);
    fl.shutdown();
    proxy.shutdown();
    srv.shutdown();
}

#[test]
fn shed_watermark_refuses_with_busy_and_retry_after_hint() {
    let w = world();
    let cfg = ServerConfig {
        shed_watermark: 0,
        ..ServerConfig::default()
    };
    let srv = serve(Arc::clone(&w.catalog), "127.0.0.1:0".parse().unwrap(), cfg).unwrap();
    let mut cl = resume_client(srv.addr());
    match cl.fetch_verified(w.chain, &w.keys).unwrap_err() {
        NetError::Remote {
            code, retry_after, ..
        } => {
            assert_eq!(code, ErrorCode::Busy);
            assert_eq!(
                retry_after,
                Some(Duration::from_millis(25)),
                "empty backlog floors the hint at 25ms"
            );
        }
        other => panic!("expected ERR busy, got: {other}"),
    }
    assert_eq!(cl.counters().retries, 3, "busy is retryable to the cap");
    assert!(srv.registry().counter_value(names::NET_SHED) >= 4);
    assert!(srv.registry().counter_value(names::NET_BUSY_REJECTIONS) >= 4);

    // Every tep_net_* failure counter is its own line in the exposition —
    // write aborts must be distinguishable from sheds and panics.
    let text = srv.registry().render_text();
    for name in [
        names::NET_SHED,
        names::NET_WRITE_ABORTS,
        names::NET_DEADLINE_CLOSES,
        names::NET_RESUMES,
        names::NET_BUSY_REJECTIONS,
    ] {
        assert!(text.contains(name), "{name} missing from render_text");
    }
    srv.shutdown();
}

#[test]
fn connection_deadline_closes_with_retryable_error() {
    let w = world();
    let cfg = ServerConfig {
        connection_deadline: Duration::ZERO,
        ..ServerConfig::default()
    };
    let srv = serve(Arc::clone(&w.catalog), "127.0.0.1:0".parse().unwrap(), cfg).unwrap();
    let mut cl = resume_client(srv.addr());
    let err = cl.fetch_verified(w.chain, &w.keys).unwrap_err();
    assert!(err.is_retryable(), "deadline closes invite a reconnect");
    match err {
        NetError::Remote {
            code, retry_after, ..
        } => {
            assert_eq!(code, ErrorCode::Deadline);
            assert_eq!(retry_after, Some(Duration::from_millis(10)));
        }
        other => panic!("expected ERR deadline, got: {other}"),
    }
    assert!(srv.registry().counter_value(names::NET_DEADLINE_CLOSES) >= 4);
    srv.shutdown();
}

/// The retry loop's wall-clock deadline caps total time even when the
/// attempt budget is effectively unlimited.
#[test]
fn retry_wall_clock_deadline_caps_total_time() {
    // A port with nothing listening: every attempt fails fast with a
    // connection error, so only the deadline can stop the loop early.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let mut cfg = ClientConfig::new(ALG);
    cfg.retry = RetryPolicy {
        max_attempts: u32::MAX,
        base: Duration::from_millis(20),
        cap: Duration::from_millis(40),
        deadline: Duration::from_millis(200),
    };
    let mut cl = Client::new(dead_addr, cfg);
    let started = Instant::now();
    let err = cl.fetch_verified(world().chain, &world().keys).unwrap_err();
    let elapsed = started.elapsed();
    assert!(matches!(err, NetError::Wire(_)), "got: {err}");
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline failed to stop the loop ({elapsed:?})"
    );
    let retries = cl.counters().retries;
    assert!(
        (1..30).contains(&retries),
        "expected a handful of deadline-bounded retries, got {retries}"
    );
}

// Quiet the unused-field warning: the forest is consumed by chaos_soak's
// sibling world, but keeping it here documents the catalog's inputs.
#[test]
fn world_forest_serves_the_chain() {
    let w = world();
    assert!(w.forest.contains(w.chain));
}
