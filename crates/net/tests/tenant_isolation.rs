//! Tenant-isolation chaos soak: every fault plane — FaultVfs (disk),
//! FaultListener (wire), TamperProxy (content) — aimed at tenant A,
//! across the seeded matrix, while tenant B keeps fetching.
//!
//! The bulkhead invariant under test, from the robustness roadmap:
//!
//! 1. tenant B converges **byte-identical** to its uncut baseline on
//!    every fetch (stream digest, record/node totals, object hash),
//!    with zero evidence, zero shed, zero retries, and no added
//!    quarantine — exact counter accounting, not "roughly unharmed";
//! 2. tenant A's damage is **fully attributed**: per-tenant labeled
//!    evidence counters match a control run exactly (`control × N`),
//!    quota sheds carry the tenant-scaled `Retry-After` hint, disk
//!    corruption lands in A's federated report only;
//! 3. probes for unknown or disabled tenants get the typed,
//!    non-retryable `ERR unknown-tenant` without burning retry budget.
//!
//! The sweep seed comes from `TEP_CHAOS_SEED` (CI sweeps {1, 2009,
//! 31337}, one per job); unset, all three run.

use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_core::attack::Tamper;
use tep_core::hashing::HashingStrategy;
use tep_core::metrics::TransferCounters;
use tep_core::provenance::{collect, ProvenanceObject};
use tep_core::tenant::{federated_verify, TenantDirectory};
use tep_core::verify::EvidenceKind;
use tep_core::{ProvenanceRecord, ProvenanceTracker, TrackerConfig};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::CertificateAuthority;
use tep_model::{Forest, ObjectId, TenantId, Value};
use tep_net::wire::{FrameReader, FrameWriter, Message, WIRE_VERSION};
use tep_net::{
    serve_tenants, Catalog, Client, ClientConfig, ErrorCode, FaultKind, FaultListener, FaultPlan,
    NetError, ProxyAction, RetryPolicy, ServerConfig, TamperProxy, TenantSpec,
};
use tep_obs::{names, Registry};
use tep_storage::vfs::{FaultConfig, FaultVfs};
use tep_storage::{shard_path, TenantShards, Vfs};
use tep_workloads::seeds_from_env;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

/// The tenant every attack is aimed at.
const A: TenantId = TenantId(1);
/// The bystander tenant that must converge byte-identically throughout.
const B: TenantId = TenantId(2);
/// Provisioned but disabled: probes must see exactly `ERR unknown-tenant`.
const DISABLED: TenantId = TenantId(3);
/// Never provisioned.
const UNKNOWN: TenantId = TenantId(99);

/// Records per tenant chain (insert + 11 updates, as in the chaos soak).
const RECORDS: u64 = 12;
/// Counted tampered runs per seed; evidence must equal `control × N`.
const TAMPERED_RUNS: u64 = 3;

/// Everything one seed's world needs: per-tenant signing identities, a
/// sharded store with a fault injector per tenant's disk, and the two
/// populated chains.
struct World {
    dir: TenantDirectory,
    vfs_a: Arc<FaultVfs>,
    vfs_b: Arc<FaultVfs>,
    root: String,
    forest_a: Forest,
    forest_b: Forest,
    chain_a: ObjectId,
    chain_b: ObjectId,
    prov_a: ProvenanceObject,
}

fn specs_for(w: &World) -> Vec<(TenantId, Arc<dyn Vfs>)> {
    vec![
        (A, Arc::clone(&w.vfs_a) as Arc<dyn Vfs>),
        (B, Arc::clone(&w.vfs_b) as Arc<dyn Vfs>),
    ]
}

/// Writes `RECORDS` chained records into `tenant`'s shard, signed by the
/// tenant's own PKI-minted signer.
fn populate(dir: &TenantDirectory, shards: &TenantShards, tenant: TenantId) -> (Forest, ObjectId) {
    let signer = dir.signer(tenant).unwrap();
    let db = shards.shard(tenant).unwrap();
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            strategy: HashingStrategy::Economical,
        },
        Arc::clone(&db),
    );
    let (chain, _) = tracker.insert(&signer, Value::Int(0), None).unwrap();
    for i in 1..RECORDS as i64 {
        tracker.update(&signer, chain, Value::Int(i)).unwrap();
    }
    db.sync().unwrap();
    (tracker.forest().clone(), chain)
}

fn build_world(seed: u64) -> (World, TenantShards) {
    let mut rng = StdRng::seed_from_u64(0x7E4A_11CE ^ seed);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let mut dir = TenantDirectory::new(&ca);
    dir.mint(&ca, A, 512, &mut rng);
    dir.mint(&ca, B, 512, &mut rng);
    let vfs_a = FaultVfs::new(FaultConfig::default());
    let vfs_b = FaultVfs::new(FaultConfig::default());
    let root = format!("/tenant-iso-{seed}");
    let mut w = World {
        dir,
        vfs_a,
        vfs_b,
        root,
        forest_a: Forest::default(),
        forest_b: Forest::default(),
        chain_a: ObjectId(0),
        chain_b: ObjectId(0),
        prov_a: ProvenanceObject {
            target: ObjectId(0),
            records: Vec::new(),
        },
    };
    let shards = TenantShards::open_with(&w.root, specs_for(&w));
    (w.forest_a, w.chain_a) = populate(&w.dir, &shards, A);
    (w.forest_b, w.chain_b) = populate(&w.dir, &shards, B);
    w.prov_a = collect(&shards.shard(A).unwrap(), w.chain_a).unwrap();
    (w, shards)
}

/// A client scoped to `tenant`, with a generous read timeout (loaded CI
/// boxes deschedule threads for whole seconds) and a tight backoff.
fn tenant_client(addr: SocketAddr, tenant: TenantId, max_attempts: u32, resume: bool) -> Client {
    let mut cfg = ClientConfig::for_tenant(ALG, tenant);
    cfg.resume = resume;
    cfg.read_timeout = Duration::from_secs(10);
    cfg.retry = RetryPolicy {
        max_attempts,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        deadline: Duration::from_secs(60),
    };
    Client::new(addr, cfg)
}

/// The byte-level profile of an uncut transfer, diffed against every
/// later fetch of the same chain.
struct Baseline {
    records: u64,
    nodes: u64,
    stream_digest: Vec<u8>,
    object_hash: Vec<u8>,
}

fn baseline_of(
    cl: &mut Client,
    chain: ObjectId,
    dir: &TenantDirectory,
    tenant: TenantId,
) -> Baseline {
    let rep = cl.fetch_verified(chain, dir.keys(tenant).unwrap()).unwrap();
    assert!(rep.verification.verified());
    assert_eq!(rep.resumed, 0);
    Baseline {
        records: rep.records,
        nodes: rep.nodes,
        stream_digest: rep.stream_digest,
        object_hash: rep.object_hash,
    }
}

/// Tenant B's whole contract in one helper: a single-attempt fetch that
/// verifies byte-identical to the baseline with no resume and no retry.
fn assert_b_identical(addr: SocketAddr, w: &World, reg_b: &Registry, base: &Baseline, ctx: &str) {
    let mut cl = tenant_client(addr, B, 1, true);
    cl.attach_obs(reg_b);
    let rep = cl
        .fetch_verified(w.chain_b, w.dir.keys(B).unwrap())
        .unwrap_or_else(|e| panic!("{ctx}: tenant B fetch failed: {e}"));
    assert!(rep.verification.verified(), "{ctx}");
    assert_eq!(rep.records, base.records, "{ctx}: B short record set");
    assert_eq!(rep.nodes, base.nodes, "{ctx}: B short data set");
    assert_eq!(
        rep.stream_digest, base.stream_digest,
        "{ctx}: B record bytes differ"
    );
    assert_eq!(rep.object_hash, base.object_hash, "{ctx}: B hash differs");
    assert_eq!(rep.resumed, 0, "{ctx}: B should never need to resume");
    assert_eq!(
        cl.counters().retries,
        0,
        "{ctx}: B burned retry budget under A's attack"
    );
}

/// A proxy mutator that applies `tamper` to whichever PROV record it
/// matches, recomputing the frame CRC as a real attacker would.
fn tamper_mutator(tamper: Tamper) -> tep_net::proxy::Mutator {
    Box::new(move |_frame, msg| {
        let Message::Prov { record } = msg else {
            return ProxyAction::Forward;
        };
        let Ok(rec) = ProvenanceRecord::from_stored(record) else {
            return ProxyAction::Forward;
        };
        let mut holder = ProvenanceObject {
            target: rec.output_oid,
            records: vec![rec],
        };
        if !tep_core::attack::apply_tamper(&mut holder, &tamper) {
            return ProxyAction::Forward;
        }
        match holder.records.into_iter().next() {
            Some(t) => ProxyAction::Replace(Message::Prov {
                record: t.to_stored(),
            }),
            None => ProxyAction::Drop,
        }
    })
}

/// Every `tep_core_evidence_*` counter in `reg` with a nonzero total,
/// sorted by name — the per-kind evidence ledger.
fn evidence_counts(reg: &Registry) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = reg
        .snapshot()
        .into_iter()
        .filter(|s| s.name.starts_with("tep_core_evidence_"))
        .filter_map(|s| match s.value {
            tep_obs::MetricValue::Counter(n) if n > 0 => Some((s.name, n)),
            _ => None,
        })
        .collect();
    v.sort();
    v
}

/// Opens a raw connection, completes HELLO as `tenant`, and keeps it open
/// — occupying one slot of the tenant's connection quota.
fn hold_tenant_conn(
    addr: SocketAddr,
    tenant: TenantId,
) -> (FrameReader<TcpStream>, FrameWriter<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let counters = Arc::new(TransferCounters::new());
    let mut writer = FrameWriter::new(stream.try_clone().unwrap(), Arc::clone(&counters));
    let mut reader = FrameReader::new(stream, counters);
    writer
        .write_message(&Message::Hello {
            version: WIRE_VERSION,
            alg: ALG,
            tenant: tenant.raw(),
        })
        .unwrap();
    match reader.read_message().unwrap() {
        Some(Message::Hello { .. }) => {}
        other => panic!("held connection was not admitted: {other:?}"),
    }
    (reader, writer)
}

/// The soak. One full pass per seed in the `TEP_CHAOS_SEED` matrix.
#[test]
fn attacks_on_tenant_a_never_reach_tenant_b() {
    for seed in seeds_from_env("TEP_CHAOS_SEED") {
        let (w, shards) = build_world(seed);
        let keys_a = w.dir.keys(A).unwrap();
        let reg_b = Registry::new();

        // ---- Serve both tenants from their own shards, A under a
        // 1-connection quota, plus a provisioned-but-disabled tenant.
        let catalog_a = Arc::new(Catalog::new(
            w.forest_a.clone(),
            shards.shard(A).unwrap(),
            ALG,
            vec![w.chain_a],
        ));
        let catalog_b = Arc::new(Catalog::new(
            w.forest_b.clone(),
            shards.shard(B).unwrap(),
            ALG,
            vec![w.chain_b],
        ));
        let srv = serve_tenants(
            vec![
                TenantSpec::new(A, catalog_a).with_max_connections(1),
                TenantSpec::new(B, Arc::clone(&catalog_b)),
                TenantSpec::new(DISABLED, catalog_b).disabled(),
            ],
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default(),
            Registry::new(),
        )
        .unwrap();
        let addr = srv.addr();
        let reg = srv.registry();
        let mut b_fetches = 0u64;

        let base_b = {
            let mut cl = tenant_client(addr, B, 1, true);
            cl.attach_obs(&reg_b);
            b_fetches += 1;
            baseline_of(&mut cl, w.chain_b, &w.dir, B)
        };
        assert_eq!(base_b.records, RECORDS);

        // ---- Quota: a held connection fills A's only slot. The next A
        // client is shed with the deterministic tenant-scaled hint
        // (backlog of exactly 1 ⇒ (1+1)·25 = 50 ms), retryable — while B
        // streams right through.
        let held = hold_tenant_conn(addr, A);
        let mut cl = tenant_client(addr, A, 1, true);
        let err = cl
            .fetch_verified(w.chain_a, keys_a)
            .expect_err("seed {seed}: A's quota is full; the fetch cannot be admitted");
        match &err {
            NetError::Remote {
                code: ErrorCode::Busy,
                retry_after,
                detail,
            } => {
                assert_eq!(
                    *retry_after,
                    Some(Duration::from_millis(50)),
                    "seed {seed}: hint must be scaled to a backlog of exactly 1"
                );
                assert!(
                    detail.contains("t1"),
                    "seed {seed}: unattributed shed: {detail}"
                );
            }
            other => panic!("seed {seed}: expected a quota shed, got {other}"),
        }
        assert!(
            err.is_retryable(),
            "seed {seed}: a shed must stay retryable"
        );
        assert_eq!(
            reg.counter_value(&names::with_tenant(names::NET_TENANT_QUOTA_SHEDS, A.raw())),
            1,
            "seed {seed}: exactly one labeled quota shed"
        );
        assert_eq!(reg.counter_value(names::NET_TENANT_QUOTA_SHEDS), 1);
        assert_eq!(
            reg.counter_value(&names::with_tenant(names::NET_SHED, A.raw())),
            1
        );
        b_fetches += 1;
        assert_b_identical(addr, &w, &reg_b, &base_b, "while A is at quota");
        drop(held);

        // A's own uncut baseline (retry budget rides out the just-dropped
        // held connection's close racing the event loop).
        let base_a = {
            let mut cl = tenant_client(addr, A, 4, true);
            baseline_of(&mut cl, w.chain_a, &w.dir, A)
        };
        assert_eq!(base_a.records, RECORDS);

        // ---- TamperProxy at A: a control run fixes the expected per-kind
        // evidence, then N counted runs must record exactly control × N in
        // A's ledger — no detection lost, none double-counted.
        let last = w.prov_a.records.last().unwrap();
        let tamper = Tamper::FlipOutputHash {
            oid: last.output_oid,
            seq: last.seq_id,
        };
        let expected = {
            let reg_ctrl = Registry::new();
            let proxy = TamperProxy::spawn(addr, tamper_mutator(tamper.clone())).unwrap();
            let mut cl = tenant_client(proxy.addr(), A, 4, true);
            cl.attach_obs(&reg_ctrl);
            let err = cl.fetch_verified(w.chain_a, keys_a).unwrap_err();
            assert!(
                matches!(err, NetError::TamperDetected { .. }),
                "seed {seed}: control run must detect the flip: {err}"
            );
            proxy.shutdown();
            evidence_counts(&reg_ctrl)
        };
        assert!(
            !expected.is_empty(),
            "seed {seed}: control run recorded no evidence"
        );

        let reg_a = Registry::new();
        for run in 0..TAMPERED_RUNS {
            let proxy = TamperProxy::spawn(addr, tamper_mutator(tamper.clone())).unwrap();
            let mut cl = tenant_client(proxy.addr(), A, 4, true);
            cl.attach_obs(&reg_a);
            let err = cl.fetch_verified(w.chain_a, keys_a).unwrap_err();
            assert!(
                matches!(err, NetError::TamperDetected { .. }),
                "seed {seed} run {run}: wrong failure class: {err}"
            );
            proxy.shutdown();
        }
        let want: Vec<(String, u64)> = expected
            .iter()
            .map(|(name, n)| (name.clone(), n * TAMPERED_RUNS))
            .collect();
        assert_eq!(
            evidence_counts(&reg_a),
            want,
            "seed {seed}: A's evidence ledger must account for all {TAMPERED_RUNS} tampered runs exactly"
        );
        b_fetches += 1;
        assert_b_identical(addr, &w, &reg_b, &base_b, "after tampered runs at A");

        // ---- FaultListener at A: a persistent wire cut ends in a clean
        // retryable error once the attempt cap is spent.
        let fl = FaultListener::spawn(
            addr,
            FaultPlan {
                kind: FaultKind::CutBoundary,
                frame: 4,
                seed,
                once: false,
            },
        )
        .unwrap();
        let mut cl = tenant_client(fl.addr(), A, 2, false);
        let err = cl
            .fetch_verified(w.chain_a, keys_a)
            .expect_err("seed {seed}: cannot complete through a persistent cut");
        assert!(err.is_retryable(), "seed {seed}: terminal error {err}");
        assert!(
            fl.fired() >= 2,
            "seed {seed}: fault should fire per attempt"
        );
        fl.shutdown();
        b_fetches += 1;
        assert_b_identical(addr, &w, &reg_b, &base_b, "after persistent cuts at A");

        // ---- Probes: unknown and disabled tenants get the same typed,
        // non-retryable refusal, and burn no retry budget.
        for probe in [UNKNOWN, DISABLED] {
            let mut cl = tenant_client(addr, probe, 4, true);
            let err = cl
                .fetch_verified(w.chain_a, keys_a)
                .expect_err("an unprovisioned tenant cannot fetch");
            match &err {
                NetError::Remote {
                    code: ErrorCode::UnknownTenant,
                    retry_after,
                    detail,
                } => {
                    assert_eq!(
                        *retry_after, None,
                        "seed {seed}: no backoff hint on a terminal refusal"
                    );
                    assert!(
                        detail.contains(&format!("t{}", probe.raw())),
                        "seed {seed}: unattributed refusal: {detail}"
                    );
                }
                other => panic!("seed {seed}: probe {} got {other}", probe.label()),
            }
            assert!(!err.is_retryable(), "seed {seed}: refusal must be terminal");
            assert_eq!(
                cl.counters().retries,
                0,
                "seed {seed}: probe {} burned retry budget",
                probe.label()
            );
        }
        assert_eq!(
            reg.counter_value(names::NET_TENANT_REJECTIONS),
            2,
            "seed {seed}: exactly the two probes rejected"
        );

        // ---- Final exact sweep: B's side of the ledger is all zeros and
        // every one of its connections is accounted for.
        b_fetches += 1;
        assert_b_identical(addr, &w, &reg_b, &base_b, "final sweep");
        assert_eq!(
            reg.counter_value(&names::with_tenant(names::NET_CONNECTIONS, B.raw())),
            b_fetches,
            "seed {seed}: every B connection accounted for, none shed"
        );
        assert_eq!(
            reg.counter_value(&names::with_tenant(names::NET_TENANT_QUOTA_SHEDS, B.raw())),
            0,
            "seed {seed}: B must never be quota-shed"
        );
        assert_eq!(
            reg.counter_value(&names::with_tenant(names::NET_SHED, B.raw())),
            0,
            "seed {seed}: B must never be shed"
        );
        assert!(
            reg.counter_value(&names::with_tenant(names::NET_CONNECTIONS, A.raw()))
                >= 2 + TAMPERED_RUNS,
            "seed {seed}: A's admissions undercounted"
        );
        assert!(
            evidence_counts(&reg_b).is_empty(),
            "seed {seed}: evidence bled into B's ledger: {:?}",
            evidence_counts(&reg_b)
        );
        srv.shutdown();
        drop(shards);

        // ---- FaultVfs at A: flip one byte in A's shard file only, reopen
        // both shards on the same injectors, and verify federated
        // attribution is exact: A quarantined and attributed, B clean.
        let offset = 180 + (seed % 64) as usize;
        assert!(
            w.vfs_a
                .corrupt_byte(&shard_path(Path::new(&w.root), A), offset),
            "seed {seed}: corruption must land inside A's shard"
        );
        let shards = TenantShards::open_with(&w.root, specs_for(&w));
        let ra = shards.recovery(A).unwrap();
        let rb = shards.recovery(B).unwrap();
        assert!(
            ra.is_degraded(),
            "seed {seed}: A's corruption must quarantine"
        );
        assert!(!rb.is_degraded(), "seed {seed}: B must reopen clean");
        assert_eq!(
            rb.quarantined_bytes, 0,
            "seed {seed}: no added quarantine at B"
        );
        assert_eq!(shards.shard(B).unwrap().len() as u64, RECORDS);

        let fed_reg = Registry::new();
        let report = federated_verify(&w.dir, &shards, |_, _| None, Some(&fed_reg));
        let ta = report.tenant(A).unwrap();
        let tb = report.tenant(B).unwrap();
        assert!(!ta.verified(), "seed {seed}: A must carry the damage");
        assert!(
            ta.issues
                .iter()
                .any(|i| i.kind() == EvidenceKind::StorageQuarantine),
            "seed {seed}: A's damage must be attributed to quarantined storage: {:?}",
            ta.issues
        );
        assert!(
            tb.verified(),
            "seed {seed}: B must verify clean: {:?}",
            tb.issues
        );
        assert!(
            tb.denial_checked,
            "seed {seed}: B's denial tree must self-check"
        );
        assert!(
            fed_reg.counter_value(&names::with_tenant(
                &EvidenceKind::StorageQuarantine.counter_name(),
                A.raw()
            )) >= 1,
            "seed {seed}: quarantine must be counted against A"
        );
        for kind in EvidenceKind::ALL {
            assert_eq!(
                fed_reg.counter_value(&names::with_tenant(&kind.counter_name(), B.raw())),
                0,
                "seed {seed}: B must have zero {kind} evidence"
            );
        }

        // ---- Serve round two over the damaged store: B still converges
        // byte-identical to its pre-attack baseline; A either completes in
        // full or fails attributed — never a silently short verified result.
        let srv2 = serve_tenants(
            vec![
                TenantSpec::new(
                    A,
                    Arc::new(Catalog::new(
                        w.forest_a.clone(),
                        shards.shard(A).unwrap(),
                        ALG,
                        vec![w.chain_a],
                    )),
                ),
                TenantSpec::new(
                    B,
                    Arc::new(Catalog::new(
                        w.forest_b.clone(),
                        shards.shard(B).unwrap(),
                        ALG,
                        vec![w.chain_b],
                    )),
                ),
            ],
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default(),
            Registry::new(),
        )
        .unwrap();
        assert_b_identical(
            srv2.addr(),
            &w,
            &reg_b,
            &base_b,
            "serving over A's corrupted disk",
        );
        let mut cl = tenant_client(srv2.addr(), A, 2, true);
        match cl.fetch_verified(w.chain_a, keys_a) {
            Ok(rep) => {
                assert_eq!(
                    rep.records, base_a.records,
                    "seed {seed}: verified a SHORT transfer — the invariant is broken"
                );
                assert_eq!(rep.object_hash, base_a.object_hash, "seed {seed}");
            }
            Err(NetError::TamperDetected { issues, .. }) => {
                assert!(
                    !issues.is_empty(),
                    "seed {seed}: evidence must be attributed"
                );
            }
            Err(NetError::Remote {
                code: ErrorCode::UnknownObject,
                ..
            }) => {}
            Err(other) => panic!("seed {seed}: outcome outside the invariant set: {other}"),
        }
        assert!(
            evidence_counts(&reg_b).is_empty(),
            "seed {seed}: A's disk corruption bled into B's ledger"
        );
        srv2.shutdown();
    }
}
