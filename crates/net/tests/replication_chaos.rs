//! Replication chaos: primary→replica catch-up, Merkle anti-entropy, and
//! read fan-out under partitions, power cycles, and lying peers.
//!
//! The invariant under test extends the chaos-soak quartet to replicas:
//! **every** seeded run must end either
//!
//! 1. byte-identical-converged — the replica's record set equals the
//!    primary's and their shard Merkle roots agree — or
//! 2. in *attributed* tamper evidence, with the replica's verified local
//!    state untouched,
//!
//! and a power cycle mid-catch-up never loses a durably-acknowledged
//! verified prefix: the recovered store is always a byte-identical subset
//! of what the primary served, and the next catch-up resumes from the
//! last durable checkpoint rather than starting over.
//!
//! The sweep seed comes from `TEP_CHAOS_SEED` (CI sweeps {1, 2009,
//! 31337}, one per job); unset, all three run.

use std::collections::HashSet;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tep_core::attack::Tamper;
use tep_core::hashing::HashingStrategy;
use tep_core::merkle::shard_tree_of;
use tep_core::provenance::{collect, ProvenanceObject};
use tep_core::verify::{EvidenceKind, TamperEvidence};
use tep_core::{ProvenanceRecord, ProvenanceTracker, TrackerConfig};
use tep_crypto::digest::HashAlgorithm;
use tep_crypto::pki::{CertificateAuthority, KeyDirectory, Participant, ParticipantId};
use tep_model::{AggregateMode, ObjectId, Value};
use tep_net::wire::Message;
use tep_net::{
    serve, serve_with_registry, AeStatus, Catalog, ClientConfig, FanoutFetcher, FaultKind,
    FaultListener, FaultPlan, NetError, ProxyAction, Replica, ReplicaConfig, ServerConfig,
    ServerHandle, TamperProxy,
};
use tep_obs::Registry;
use tep_storage::vfs::{FaultConfig, FaultVfs};
use tep_storage::ProvenanceDb;
use tep_workloads::seeds_from_env;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

/// A primary with two chains and an aggregate (so catch-up exercises both
/// fresh appends and cross-object re-verification), parameterized by the
/// value of one final "tail" update — two worlds built with different
/// tails share a byte-identical history prefix and diverge only there,
/// which is exactly what a lying primary looks like to a replica.
struct PrimaryWorld {
    keys: KeyDirectory,
    signer: Participant,
    tracker: ProvenanceTracker,
    db: Arc<ProvenanceDb>,
    a: ObjectId,
    offered: Vec<ObjectId>,
}

fn build_primary(tail: i64) -> PrimaryWorld {
    // Fixed seed: twin worlds get identical keys and (deterministic RSA
    // signatures) byte-identical records for every shared operation.
    let mut rng = StdRng::seed_from_u64(0x5EED_2009);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let signer = ca.enroll(ParticipantId(1), 512, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    keys.register(signer.certificate().clone()).unwrap();

    let db = Arc::new(ProvenanceDb::in_memory());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            strategy: HashingStrategy::Economical,
        },
        Arc::clone(&db),
    );
    let (a, _) = tracker.insert(&signer, Value::Int(0), None).unwrap();
    for i in 1..7i64 {
        tracker.update(&signer, a, Value::Int(i)).unwrap();
    }
    let (b, _) = tracker.insert(&signer, Value::Int(100), None).unwrap();
    for i in 1..4i64 {
        tracker.update(&signer, b, Value::Int(100 + i)).unwrap();
    }
    let (agg, _) = tracker
        .aggregate(&signer, &[a, b], Value::Int(777), AggregateMode::Atomic)
        .unwrap();
    // The divergence point: everything above is shared between twins.
    tracker.update(&signer, a, Value::Int(tail)).unwrap();
    PrimaryWorld {
        keys,
        signer,
        tracker,
        db,
        a,
        offered: vec![a, b, agg],
    }
}

impl PrimaryWorld {
    /// Serves a fresh catalog snapshot (rebuilt so post-construction
    /// appends are visible to new servers).
    fn serve(&self) -> ServerHandle {
        serve(
            self.catalog(),
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default(),
        )
        .unwrap()
    }

    fn catalog(&self) -> Arc<Catalog> {
        Arc::new(Catalog::new(
            self.tracker.forest().clone(),
            Arc::clone(&self.db),
            ALG,
            self.offered.clone(),
        ))
    }
}

/// Small durability batches so a 13-record catch-up seals many
/// checkpoints — every crash point lands between interesting states.
fn replica_cfg() -> ReplicaConfig {
    let mut cfg = ReplicaConfig::new(ALG);
    cfg.batch = 2;
    cfg
}

const REPLICA_LOG: &str = "/replica.db";
const CKPT_DIR: &str = "/ckpt";

/// A replica with its own faultable in-memory filesystem.
fn fresh_replica(primary: SocketAddr, fault: FaultConfig) -> (Replica, Arc<FaultVfs>) {
    let vfs = FaultVfs::new(fault);
    let db = Arc::new(ProvenanceDb::durable_with(vfs.clone(), REPLICA_LOG).unwrap());
    let repl = Replica::new(
        primary,
        replica_cfg(),
        db,
        vfs.clone(),
        PathBuf::from(CKPT_DIR),
    );
    (repl, vfs)
}

/// Rebinds an existing replica's durable state to a (possibly different)
/// primary address — a heal, a restart, or a re-point at a liar.
fn rebind(repl: &Replica, vfs: &Arc<FaultVfs>, primary: SocketAddr) -> Replica {
    Replica::new(
        primary,
        replica_cfg(),
        Arc::clone(repl.db()),
        vfs.clone(),
        PathBuf::from(CKPT_DIR),
    )
}

fn record_set(db: &ProvenanceDb) -> HashSet<Vec<u8>> {
    db.all_records().into_iter().map(|r| r.to_bytes()).collect()
}

/// Byte-identical convergence: equal shard Merkle roots *and* equal
/// record byte sets (the roots already imply it; the set diff makes
/// failures readable).
fn assert_converged(primary: &ProvenanceDb, replica: &ProvenanceDb) {
    let p = shard_tree_of(ALG, primary);
    let r = shard_tree_of(ALG, replica);
    assert_eq!(p.leaf_count(), r.leaf_count(), "object counts differ");
    assert_eq!(p.root(), r.root(), "shard Merkle roots differ");
    assert_eq!(
        record_set(primary),
        record_set(replica),
        "record sets are not byte-identical"
    );
}

/// Every record the replica holds must be byte-identical to one the
/// primary serves — a replica never invents or mutates history, crashed
/// or not.
fn assert_verified_subset(replica: &ProvenanceDb, primary: &ProvenanceDb) {
    let p = record_set(primary);
    for r in replica.all_records() {
        assert!(
            p.contains(&r.to_bytes()),
            "replica holds a record the primary never served (oid {} seq {})",
            r.oid,
            r.seq_id
        );
    }
}

/// Nonzero `tep_core_evidence_*` counters, sorted by name.
fn evidence_counts(reg: &Registry) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = reg
        .snapshot()
        .into_iter()
        .filter(|s| s.name.starts_with("tep_core_evidence_"))
        .filter_map(|s| match s.value {
            tep_obs::MetricValue::Counter(n) if n > 0 => Some((s.name, n)),
            _ => None,
        })
        .collect();
    v.sort();
    v
}

fn evidence_kinds(err: &NetError) -> Vec<EvidenceKind> {
    match err {
        NetError::TamperDetected { issues, .. } => issues.iter().map(|i| i.kind()).collect(),
        other => panic!("expected TamperDetected, got: {other}"),
    }
}

/// A man-in-the-middle that applies `tamper` to matching PROV frames —
/// the wire attacker every replication evidence path must be equivalent
/// to.
fn tamper_mutator(tamper: Tamper) -> tep_net::proxy::Mutator {
    Box::new(move |_frame, msg| {
        let Message::Prov { record } = msg else {
            return ProxyAction::Forward;
        };
        let Ok(rec) = ProvenanceRecord::from_stored(record) else {
            return ProxyAction::Forward;
        };
        let mut holder = ProvenanceObject {
            target: rec.output_oid,
            records: vec![rec],
        };
        if !tep_core::attack::apply_tamper(&mut holder, &tamper) {
            return ProxyAction::Forward;
        }
        match holder.records.into_iter().next() {
            Some(t) => ProxyAction::Replace(Message::Prov {
                record: t.to_stored(),
            }),
            None => ProxyAction::Drop,
        }
    })
}

#[test]
fn clean_catch_up_converges_byte_identically() {
    let w = build_primary(1000);
    let srv = w.serve();
    let (repl, _vfs) = fresh_replica(srv.addr(), FaultConfig::default());

    let report = repl.catch_up(&w.keys).unwrap();
    assert_eq!(report.objects, 3);
    assert_eq!(report.new_records, w.db.len() as u64);
    assert!(
        report.reverified > 0,
        "the aggregate's stream re-verifies its input chains"
    );
    assert_eq!(report.resumed, 0, "a fresh replica has nothing to resume");

    let ae = repl.anti_entropy(&w.keys).unwrap();
    assert_eq!(ae.status, AeStatus::Converged);
    assert_eq!(ae.passes, 1);
    assert_eq!(ae.rounds, 1, "converged shards cost one root exchange");
    assert!(ae.repaired.is_empty());
    assert_converged(&w.db, repl.db());

    // An immediate second catch-up is pure resume: every object proves
    // its position from the sealed checkpoint and streams nothing new.
    let again = repl.catch_up(&w.keys).unwrap();
    assert_eq!(again.new_records, 0);
    assert_eq!(again.resumed, 3);
    assert_eq!(again.reverified, 0);
    srv.shutdown();
}

/// Satellite: the `tep_net_repl_*` metric names are API — pinned here as
/// exact exposition lines so a rename or unit change fails loudly.
#[test]
fn replication_metrics_have_pinned_exposition() {
    let w = build_primary(1000);
    let srv = w.serve();
    let reg = Registry::new();
    let (mut repl, _vfs) = fresh_replica(srv.addr(), FaultConfig::default());
    repl.attach_obs(&reg);

    let report = repl.catch_up(&w.keys).unwrap();
    let ae = repl.anti_entropy(&w.keys).unwrap();
    assert_eq!(ae.status, AeStatus::Converged);

    let text = reg.render_text();
    for want in [
        "tep_net_repl_role 1".to_string(),
        format!("tep_net_repl_catchup_records_total {}", report.new_records),
        "tep_net_repl_checkpoint_resumes_total 0".to_string(),
        format!("tep_net_repl_anti_entropy_rounds_total {}", ae.rounds),
        "tep_net_repl_converged_total 1".to_string(),
        "tep_net_repl_divergence_depth_count 0".to_string(),
    ] {
        assert!(
            text.lines().any(|l| l == want),
            "missing exposition line {want:?} in:\n{text}"
        );
    }
    srv.shutdown();
}

#[test]
fn incremental_catch_up_resumes_every_object_from_its_checkpoint() {
    let mut w = build_primary(1000);
    let srv = w.serve();
    let (repl, vfs) = fresh_replica(srv.addr(), FaultConfig::default());
    repl.catch_up(&w.keys).unwrap();
    srv.shutdown();

    // The primary moves on while the replica is detached.
    for i in 0..3i64 {
        w.tracker
            .update(&w.signer, w.a, Value::Int(2000 + i))
            .unwrap();
    }

    let srv = w.serve();
    let reg = Registry::new();
    let mut repl = rebind(&repl, &vfs, srv.addr());
    repl.attach_obs(&reg);
    let report = repl.catch_up(&w.keys).unwrap();
    assert_eq!(
        report.resumed, 3,
        "every object resumes from its durable checkpoint"
    );
    assert_eq!(report.new_records, 3, "only the appended tail streams");
    assert_eq!(
        report.reverified, 0,
        "resume skips everything already verified"
    );
    assert_eq!(
        reg.counter_value("tep_net_repl_checkpoint_resumes_total"),
        3
    );
    assert_converged(&w.db, repl.db());
    srv.shutdown();
}

/// The tentpole crash sweep: a power cut at *every* Nth mutating storage
/// op of a catch-up. After each cut the replica power-cycles, reopens
/// through recovery, and must (a) hold only byte-identical verified
/// records, (b) finish the interrupted catch-up — resuming from the last
/// durable checkpoint when one survives — and (c) converge to the
/// primary's shard root. A crash must never read as tamper evidence.
#[test]
fn replica_power_cycle_at_every_catch_up_op_resumes_and_converges() {
    let w = build_primary(1000);
    let srv = w.serve();

    for seed in seeds_from_env("TEP_CHAOS_SEED") {
        // Dry run sizes the op space of one full catch-up.
        let (repl, vfs) = fresh_replica(
            srv.addr(),
            FaultConfig {
                seed,
                ..FaultConfig::default()
            },
        );
        repl.catch_up(&w.keys).unwrap();
        assert_converged(&w.db, repl.db());
        let total_ops = vfs.ops();
        let step = (total_ops / 12).max(1);

        let mut crashed_runs = 0u64;
        let mut resumed_after_crash = 0u64;
        let mut k = 1;
        // One control point past the end never fires.
        while k <= total_ops + step {
            let vfs = FaultVfs::new(FaultConfig {
                seed,
                crash_at_op: Some(k),
                ..FaultConfig::default()
            });
            let outcome = match ProvenanceDb::durable_with(vfs.clone(), REPLICA_LOG) {
                Ok(db) => {
                    let repl = Replica::new(
                        srv.addr(),
                        replica_cfg(),
                        Arc::new(db),
                        vfs.clone(),
                        PathBuf::from(CKPT_DIR),
                    );
                    repl.catch_up(&w.keys).map(|_| repl)
                }
                // Power cut while opening the store: same recovery path.
                Err(_) => Err(NetError::Protocol("replica store lost power while opening")),
            };
            match outcome {
                Ok(repl) => {
                    assert!(
                        !vfs.crashed(),
                        "seed {seed} op {k}: catch-up reported success after a power cut"
                    );
                    assert_converged(&w.db, repl.db());
                }
                Err(err) => {
                    crashed_runs += 1;
                    assert!(
                        !matches!(err, NetError::TamperDetected { .. }),
                        "seed {seed} op {k}: a local power cut must never read as tamper evidence: {err}"
                    );
                    vfs.power_cycle();
                    let db =
                        Arc::new(ProvenanceDb::durable_with(vfs.clone(), REPLICA_LOG).unwrap());
                    // The durably-recovered prefix is verified history,
                    // byte-identical to the primary's — never torn junk,
                    // never an unverified record.
                    assert_verified_subset(&db, &w.db);
                    let repl = Replica::new(
                        srv.addr(),
                        replica_cfg(),
                        db,
                        vfs.clone(),
                        PathBuf::from(CKPT_DIR),
                    );
                    let rep = repl.catch_up(&w.keys).unwrap();
                    resumed_after_crash += rep.resumed;
                    assert_converged(&w.db, repl.db());
                    let ae = repl.anti_entropy(&w.keys).unwrap();
                    assert_eq!(ae.status, AeStatus::Converged, "seed {seed} op {k}");
                }
            }
            k += step;
        }
        assert!(
            crashed_runs > 0,
            "seed {seed}: sweep never exercised a crash (total_ops = {total_ops})"
        );
        assert!(
            resumed_after_crash > 0,
            "seed {seed}: no post-crash catch-up ever resumed from a durable checkpoint"
        );
    }
    srv.shutdown();
}

/// A symmetric partition (both directions reset at a seeded frame) is a
/// clean retryable error — no evidence, no state damage — and healing
/// the path lets the same durable replica state converge.
#[test]
fn symmetric_partition_heals_into_convergence_without_evidence() {
    let w = build_primary(1000);
    let srv = w.serve();

    for seed in seeds_from_env("TEP_CHAOS_SEED") {
        for frame in [0u64, 3, 9] {
            let reg = Registry::new();
            let fl = FaultListener::spawn(
                srv.addr(),
                FaultPlan {
                    kind: FaultKind::Reset,
                    frame,
                    seed,
                    once: false,
                },
            )
            .unwrap();
            let (mut repl, vfs) = fresh_replica(fl.addr(), FaultConfig::default());
            repl.attach_obs(&reg);
            let err = repl.catch_up(&w.keys).unwrap_err();
            assert!(
                err.is_retryable(),
                "seed {seed} frame {frame}: a partition must read as retryable, got: {err}"
            );
            assert!(
                evidence_counts(&reg).is_empty(),
                "seed {seed} frame {frame}: partition produced evidence: {:?}",
                evidence_counts(&reg)
            );
            fl.shutdown();

            // Heal: same durable state, direct path to the primary.
            let mut healed = rebind(&repl, &vfs, srv.addr());
            healed.attach_obs(&reg);
            healed.catch_up(&w.keys).unwrap();
            let ae = healed.anti_entropy(&w.keys).unwrap();
            assert_eq!(ae.status, AeStatus::Converged);
            assert_converged(&w.db, healed.db());
            assert!(evidence_counts(&reg).is_empty());
        }
    }
    srv.shutdown();
}

/// A wire attacker tampering with the replication stream earns the same
/// attributed evidence pipeline as any fetch client — and nothing the
/// attacker touched is ever persisted.
#[test]
fn tampered_catch_up_stream_is_attributed_and_never_persisted() {
    let w = build_primary(1000);
    let srv = w.serve();
    let last = collect(&w.db, w.a)
        .unwrap()
        .records
        .last()
        .cloned()
        .unwrap();
    let proxy = TamperProxy::spawn(
        srv.addr(),
        tamper_mutator(Tamper::FlipOutputHash {
            oid: last.output_oid,
            seq: last.seq_id,
        }),
    )
    .unwrap();

    let reg = Registry::new();
    let (mut repl, _vfs) = fresh_replica(proxy.addr(), FaultConfig::default());
    repl.attach_obs(&reg);
    let err = repl.catch_up(&w.keys).unwrap_err();
    assert!(
        !evidence_kinds(&err).is_empty(),
        "tampered stream must carry attributed evidence"
    );
    assert!(
        !evidence_counts(&reg).is_empty(),
        "evidence must reach the counters"
    );
    // Whatever was persisted before the abort is verified history.
    assert_verified_subset(repl.db(), &w.db);
    proxy.shutdown();
    srv.shutdown();
}

/// A lying primary — same object set, conflicting history — is caught
/// twice over: the RESUME proof-of-position rejects it during catch-up,
/// and the anti-entropy descent locates the divergent object and refuses
/// to "converge" over verified local state.
#[test]
fn lying_primary_yields_divergence_evidence_and_leaves_state_untouched() {
    let honest = build_primary(1000);
    let liar = build_primary(666);

    // The twin construction really does give a shared byte-identical
    // prefix with divergence only at the tail write.
    let h = collect(&honest.db, honest.a).unwrap();
    let l = collect(&liar.db, liar.a).unwrap();
    assert_eq!(h.records.len(), l.records.len());
    let n = h.records.len();
    for i in 0..n - 1 {
        assert_eq!(
            h.records[i].to_stored().to_bytes(),
            l.records[i].to_stored().to_bytes(),
            "twin worlds lost determinism at record {i}"
        );
    }
    assert_ne!(
        h.records[n - 1].to_stored().to_bytes(),
        l.records[n - 1].to_stored().to_bytes()
    );

    let hsrv = honest.serve();
    let (repl, vfs) = fresh_replica(hsrv.addr(), FaultConfig::default());
    repl.catch_up(&honest.keys).unwrap();
    hsrv.shutdown();

    let lsrv = liar.serve();
    let reg = Registry::new();
    let before = record_set(repl.db());
    let mut at_liar = rebind(&repl, &vfs, lsrv.addr());
    at_liar.attach_obs(&reg);

    // Catch-up: the liar cannot confirm the replica's resume digest.
    let err = at_liar.catch_up(&honest.keys).unwrap_err();
    assert_eq!(evidence_kinds(&err), vec![EvidenceKind::ResumeMismatch]);
    assert_eq!(
        record_set(repl.db()),
        before,
        "evidence must never mutate verified local state"
    );

    // Anti-entropy: divergence located in the tree, repair fetch meets
    // conflicting verified history, attributed at the located depth.
    let err = at_liar.anti_entropy(&honest.keys).unwrap_err();
    assert_eq!(evidence_kinds(&err), vec![EvidenceKind::ReplicaDivergence]);
    assert_eq!(record_set(repl.db()), before);

    let counts = evidence_counts(&reg);
    assert!(
        counts
            .iter()
            .any(|(name, c)| name == "tep_core_evidence_replica_divergence_total" && *c == 1),
        "{counts:?}"
    );
    assert!(
        counts
            .iter()
            .any(|(name, _)| name == "tep_core_evidence_resume_mismatch_total"),
        "{counts:?}"
    );
    let text = reg.render_text();
    assert!(
        text.lines()
            .any(|l| l == "tep_net_repl_divergence_depth_count 1"),
        "divergence depth must be observed:\n{text}"
    );
    lsrv.shutdown();
}

/// A forged anti-entropy root (mutated in flight, as a man-in-the-middle
/// would) fails the descent's self-authentication and is terminal
/// `ForgedRoot` evidence — never a repair, never a retry loop.
#[test]
fn forged_anti_entropy_root_is_terminal_forgery_evidence() {
    let w = build_primary(1000);
    let srv = w.serve();
    let (repl, vfs) = fresh_replica(srv.addr(), FaultConfig::default());
    repl.catch_up(&w.keys).unwrap();

    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(|_frame, msg| match msg {
            Message::AeResp {
                leaf_count,
                depth,
                hash,
                children,
                oid,
                signed_root,
            } => {
                let mut forged = hash.clone();
                forged[0] ^= 0x01;
                ProxyAction::Replace(Message::AeResp {
                    leaf_count: *leaf_count,
                    depth: *depth,
                    hash: forged,
                    children: children.clone(),
                    oid: *oid,
                    signed_root: signed_root.clone(),
                })
            }
            _ => ProxyAction::Forward,
        }),
    )
    .unwrap();

    let reg = Registry::new();
    let before = record_set(repl.db());
    let mut through_proxy = rebind(&repl, &vfs, proxy.addr());
    through_proxy.attach_obs(&reg);
    let err = through_proxy.anti_entropy(&w.keys).unwrap_err();
    match &err {
        NetError::TamperDetected { issues, .. } => {
            assert!(
                matches!(issues[..], [TamperEvidence::ForgedRoot { .. }]),
                "{issues:?}"
            );
        }
        other => panic!("expected ForgedRoot evidence, got: {other}"),
    }
    let counts = evidence_counts(&reg);
    assert!(
        counts
            .iter()
            .any(|(name, c)| name == "tep_core_evidence_forged_root_total" && *c == 1),
        "{counts:?}"
    );
    assert_eq!(record_set(repl.db()), before);
    proxy.shutdown();
    srv.shutdown();
}

/// A bit flip in the replica's own log is *accidental* damage: recovery
/// quarantines it with an attributed report (not tamper evidence), the
/// stale checkpoint fails its covers-local check instead of hiding the
/// hole, and the next catch-up re-fetches and re-verifies exactly the
/// missing history.
#[test]
fn bit_flipped_replica_log_is_quarantined_then_self_heals() {
    let w = build_primary(1000);
    let srv = w.serve();

    for seed in seeds_from_env("TEP_CHAOS_SEED") {
        let (repl, vfs) = fresh_replica(
            srv.addr(),
            FaultConfig {
                seed,
                ..FaultConfig::default()
            },
        );
        repl.catch_up(&w.keys).unwrap();
        drop(repl);

        let len = vfs.file_bytes(Path::new(REPLICA_LOG)).unwrap().len();
        let offset = (len / 2) + (seed as usize % 32);
        assert!(vfs.corrupt_byte(Path::new(REPLICA_LOG), offset));

        let db = Arc::new(ProvenanceDb::durable_with(vfs.clone(), REPLICA_LOG).unwrap());
        let rec = db.recovery();
        assert!(
            rec.quarantined_bytes > 0 || rec.truncated_bytes > 0 || rec.decode_failures > 0,
            "seed {seed}: corruption went unattributed: {rec:?}"
        );
        assert!(
            db.len() < w.db.len(),
            "seed {seed}: recovery kept a corrupt record"
        );
        assert_verified_subset(&db, &w.db);

        let reg = Registry::new();
        let mut repl = Replica::new(
            srv.addr(),
            replica_cfg(),
            db,
            vfs.clone(),
            PathBuf::from(CKPT_DIR),
        );
        repl.attach_obs(&reg);
        let report = repl.catch_up(&w.keys).unwrap();
        assert!(
            report.new_records > 0,
            "seed {seed}: the quarantined hole must be re-fetched"
        );
        let ae = repl.anti_entropy(&w.keys).unwrap();
        assert_eq!(ae.status, AeStatus::Converged);
        assert_converged(&w.db, repl.db());
        assert!(
            evidence_counts(&reg).is_empty(),
            "seed {seed}: local disk damage is not tamper evidence: {:?}",
            evidence_counts(&reg)
        );
    }
    srv.shutdown();
}

/// FETCH fan-out: reads rotate across replica endpoints, fail over on
/// retryable errors (a dead endpoint), and *never* fail over past tamper
/// evidence.
#[test]
fn fetch_fanout_rotates_fails_over_and_never_masks_evidence() {
    let w = build_primary(1000);
    let psrv = w.serve();

    // Two replicas, each serving its own verified copy of the records
    // (the data forest is shared — replicating it is out of scope).
    let mut servers = Vec::new();
    let mut registries = Vec::new();
    for _ in 0..2 {
        let (repl, _vfs) = fresh_replica(psrv.addr(), FaultConfig::default());
        repl.catch_up(&w.keys).unwrap();
        let reg = Registry::new();
        let catalog = Arc::new(Catalog::new(
            w.tracker.forest().clone(),
            Arc::clone(repl.db()),
            ALG,
            w.offered.clone(),
        ));
        let srv = serve_with_registry(
            catalog,
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default(),
            reg.clone(),
        )
        .unwrap();
        servers.push(srv);
        registries.push(reg);
    }
    let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.addr()).collect();

    // Rotation: four fetches over two replicas touch both.
    let mut fan = FanoutFetcher::new(&addrs, ClientConfig::new(ALG));
    assert_eq!(fan.len(), 2);
    for _ in 0..4 {
        fan.fetch_verified(w.a, &w.keys).unwrap();
    }
    for (i, reg) in registries.iter().enumerate() {
        assert!(
            reg.counter_value("tep_net_connections_total") >= 2,
            "replica {i} never served its share of the rotation"
        );
    }

    // Failover: a dead endpoint is retryable, the fetch still verifies.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let mut fan = FanoutFetcher::new(&[dead, addrs[0]], ClientConfig::new(ALG));
    fan.fetch_verified(w.a, &w.keys).unwrap();

    // Evidence is terminal: a tampering endpoint first in rotation must
    // surface its evidence, not be papered over by the honest replica.
    let last = collect(&w.db, w.a)
        .unwrap()
        .records
        .last()
        .cloned()
        .unwrap();
    let proxy = TamperProxy::spawn(
        addrs[0],
        tamper_mutator(Tamper::FlipOutputHash {
            oid: last.output_oid,
            seq: last.seq_id,
        }),
    )
    .unwrap();
    let mut cfg = ClientConfig::new(ALG);
    cfg.retry.max_attempts = 1;
    let mut fan = FanoutFetcher::new(&[proxy.addr(), addrs[1]], cfg);
    let err = fan.fetch_verified(w.a, &w.keys).unwrap_err();
    assert!(
        !evidence_kinds(&err).is_empty(),
        "fan-out masked tamper evidence by rotating away from it"
    );
    proxy.shutdown();
    for s in servers {
        s.shutdown();
    }
    psrv.shutdown();
}
