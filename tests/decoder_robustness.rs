//! Decoder robustness: every decoder in the stack must reject arbitrary
//! or corrupted bytes with an error — never panic, never loop.
//!
//! Databases read what disks give them; the storage guides' first rule of
//! deserializers is that hostile bytes are a matter of *when*, not *if*.

use proptest::prelude::*;
use tepdb::core::checkpoint::TrustAnchor;
use tepdb::core::ProvenanceRecord;
use tepdb::crypto::Keyring;
use tepdb::model::encode::value_from_bytes;
use tepdb::model::ObjectId;
use tepdb::model::ParticipantId;
use tepdb::storage::{AppendLog, StoredRecord};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn value_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = value_from_bytes(&bytes);
    }

    #[test]
    fn record_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let stored = StoredRecord {
            seq_id: 0,
            participant: ParticipantId(0),
            oid: ObjectId(0),
            checksum: vec![],
            payload: bytes,
        };
        let _ = ProvenanceRecord::from_stored(&stored);
    }

    #[test]
    fn keyring_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Keyring::from_bytes(&bytes);
    }

    #[test]
    fn anchor_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = TrustAnchor::from_bytes(&bytes);
    }

    /// Mutating a valid record payload either round-trips to different
    /// contents or fails to decode — it never panics.
    #[test]
    fn record_decoder_survives_mutation(
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let rec = ProvenanceRecord {
            seq_id: 3,
            participant: ParticipantId(1),
            kind: tepdb::core::RecordKind::Update,
            inputs: vec![tepdb::core::InputRef {
                oid: ObjectId(7),
                hash: vec![0xAA; 32],
                prev_seq: Some(2),
            }],
            output_oid: ObjectId(7),
            output_hash: vec![0xBB; 32],
            annotation: b"UPDATE t SET x = 5".to_vec(),
            checksum: vec![0xCC; 64],
        };
        let mut stored = rec.to_stored();
        let idx = flip_at % stored.payload.len();
        stored.payload[idx] ^= 1 << flip_bit;
        let _ = ProvenanceRecord::from_stored(&stored);
    }

    /// A log file corrupted at an arbitrary position either recovers an
    /// ordered subsequence of the original frames (the damaged frame is
    /// truncated at the tail or quarantined in the interior) or reports an
    /// error — it never panics and never fabricates frames.
    #[test]
    fn log_recovery_survives_corruption(
        corrupt_at in any::<usize>(),
        corrupt_byte in any::<u8>(),
        payload_sizes in prop::collection::vec(0usize..200, 1..6),
    ) {
        let path = std::env::temp_dir().join(format!(
            "tep-fuzz-{}-{}.log",
            std::process::id(),
            corrupt_at,
        ));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tepdb::storage::quarantine_path(&path));
        let originals: Vec<Vec<u8>> = payload_sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| vec![i as u8; n])
            .collect();
        {
            let mut log = AppendLog::create(&path).unwrap();
            for p in &originals {
                log.append(p).unwrap();
            }
            log.sync().unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let idx = corrupt_at % data.len();
        data[idx] ^= corrupt_byte | 1; // guarantee a change
        std::fs::write(&path, &data).unwrap();

        if let Ok(rec) = AppendLog::open(&path) {
            // Every recovered payload must be one of the originals, in
            // order — a single corrupt byte hits one frame, which is lost
            // (tail → truncated, interior → quarantined), never altered.
            prop_assert!(rec.payloads.len() <= originals.len());
            let mut next = 0usize;
            for got in &rec.payloads {
                let found = originals[next..].iter().position(|want| want == got);
                prop_assert!(found.is_some(), "recovered a fabricated frame");
                next += found.unwrap() + 1;
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tepdb::storage::quarantine_path(&path));
    }
}
