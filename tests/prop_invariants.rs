//! Property-based integration tests: the core invariants of the scheme
//! hold under *arbitrary* operation histories and *arbitrary* single-field
//! tampering.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use tepdb::core::{collect, subtree_hash, ProvenanceObject, RecordKind, Verifier};
use tepdb::model::ObjectId;
use tepdb::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

struct World {
    signer: Participant,
    other: Participant,
    keys: KeyDirectory,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let signer = ca.enroll(ParticipantId(1), 512, &mut rng);
        let other = ca.enroll(ParticipantId(2), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        keys.register(signer.certificate().clone()).unwrap();
        keys.register(other.certificate().clone()).unwrap();
        World {
            signer,
            other,
            keys,
        }
    })
}

/// An abstract op for generated histories.
#[derive(Clone, Debug)]
enum HistOp {
    Insert { parent_choice: usize, value: i64 },
    Update { target_choice: usize, value: i64 },
    Delete { target_choice: usize },
    Aggregate { a_choice: usize, b_choice: usize },
}

fn hist_op() -> impl Strategy<Value = HistOp> {
    prop_oneof![
        3 => (any::<usize>(), any::<i64>()).prop_map(|(p, v)| HistOp::Insert {
            parent_choice: p,
            value: v
        }),
        3 => (any::<usize>(), any::<i64>()).prop_map(|(t, v)| HistOp::Update {
            target_choice: t,
            value: v
        }),
        1 => any::<usize>().prop_map(|t| HistOp::Delete { target_choice: t }),
        1 => (any::<usize>(), any::<usize>()).prop_map(|(a, b)| HistOp::Aggregate {
            a_choice: a,
            b_choice: b
        }),
    ]
}

/// Applies a generated history; returns the tracker.
fn run_history(ops: &[HistOp]) -> ProvenanceTracker {
    let w = world();
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    // Seed with one root so updates always have a target.
    let (seed_root, _) = tracker.insert(&w.signer, Value::Int(0), None).unwrap();
    let mut live: Vec<ObjectId> = vec![seed_root];

    for (i, op) in ops.iter().enumerate() {
        let signer = if i % 2 == 0 { &w.signer } else { &w.other };
        match op {
            HistOp::Insert {
                parent_choice,
                value,
            } => {
                // Roots and internal nodes both allowed as parents.
                let parent = if parent_choice % 4 == 0 {
                    None
                } else {
                    Some(live[parent_choice % live.len()])
                };
                let (id, _) = tracker.insert(signer, Value::Int(*value), parent).unwrap();
                live.push(id);
            }
            HistOp::Update {
                target_choice,
                value,
            } => {
                let target = live[target_choice % live.len()];
                tracker.update(signer, target, Value::Int(*value)).unwrap();
            }
            HistOp::Delete { target_choice } => {
                let target = live[target_choice % live.len()];
                // Only leaves are deletable; skip otherwise. Never delete
                // the seed root (keeps `live` non-empty).
                if target != live[0] && tracker.forest().node(target).is_some_and(|n| n.is_leaf()) {
                    tracker.delete(signer, target).unwrap();
                    live.retain(|&id| id != target);
                }
            }
            HistOp::Aggregate { a_choice, b_choice } => {
                let a = live[a_choice % live.len()];
                let b = live[b_choice % live.len()];
                // Inputs must be distinct and non-nested.
                if a == b {
                    continue;
                }
                let nested = tracker.forest().ancestors(a).contains(&b)
                    || tracker.forest().ancestors(b).contains(&a);
                if nested {
                    continue;
                }
                let (id, _) = tracker
                    .aggregate(signer, &[a, b], Value::Int(-1), AggregateMode::Atomic)
                    .unwrap();
                live.push(id);
            }
        }
    }
    tracker
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every honest history verifies, for every live root.
    #[test]
    fn honest_histories_always_verify(ops in prop::collection::vec(hist_op(), 1..24)) {
        let w = world();
        let mut tracker = run_history(&ops);
        let roots: Vec<ObjectId> = tracker.forest().roots().collect();
        for root in roots {
            let prov = collect(tracker.db(), root).unwrap();
            let hash = tracker.object_hash(root).unwrap();
            let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
            prop_assert!(v.verified(), "root {root}: {:?}", v.issues);
        }
    }

    /// The incremental hash cache always agrees with a from-scratch hash,
    /// no matter the operation sequence.
    #[test]
    fn cache_always_matches_fresh_recompute(ops in prop::collection::vec(hist_op(), 1..24)) {
        let mut tracker = run_history(&ops);
        let roots: Vec<ObjectId> = tracker.forest().roots().collect();
        for root in roots {
            let cached = tracker.object_hash(root).unwrap();
            let fresh = subtree_hash(ALG, tracker.forest(), root);
            prop_assert_eq!(&cached, &fresh, "root {}", root);
        }
    }

    /// Any single-field mutation of any record is detected by the verifier.
    #[test]
    fn any_single_field_mutation_detected(
        record_sel in any::<usize>(),
        field_sel in 0usize..7,
        byte_sel in any::<usize>(),
    ) {
        let w = world();
        // A fixed non-trivial history with a DAG.
        static HISTORY: OnceLock<(ProvenanceObject, Vec<u8>)> = OnceLock::new();
        let (clean, hash) = HISTORY.get_or_init(|| {
            let w = world();
            let mut tracker = ProvenanceTracker::new(
                TrackerConfig { alg: ALG, ..Default::default() },
                Arc::new(ProvenanceDb::in_memory()),
            );
            let (a, _) = tracker.insert(&w.signer, Value::Int(1), None).unwrap();
            let (b, _) = tracker.insert(&w.other, Value::Int(2), None).unwrap();
            tracker.update(&w.other, b, Value::Int(3)).unwrap();
            let (c, _) = tracker
                .aggregate(&w.signer, &[a, b], Value::Int(4), AggregateMode::Atomic)
                .unwrap();
            tracker.update(&w.other, c, Value::Int(5)).unwrap();
            tracker.update(&w.signer, c, Value::Int(6)).unwrap();
            let prov = collect(tracker.db(), c).unwrap();
            let hash = tracker.object_hash(c).unwrap();
            (prov, hash)
        });

        let mut p = clean.clone();
        let idx = record_sel % p.records.len();
        let rec = &mut p.records[idx];
        let changed = match field_sel {
            0 => {
                let i = byte_sel % rec.output_hash.len();
                rec.output_hash[i] ^= 0x01;
                true
            }
            1 => {
                let i = byte_sel % rec.checksum.len();
                rec.checksum[i] ^= 0x01;
                true
            }
            2 => {
                if rec.inputs.is_empty() {
                    false
                } else {
                    let input = byte_sel % rec.inputs.len();
                    let hl = rec.inputs[input].hash.len();
                    rec.inputs[input].hash[byte_sel % hl] ^= 0x01;
                    true
                }
            }
            3 => {
                rec.seq_id ^= 1 << (byte_sel % 8);
                true
            }
            4 => {
                rec.participant = ParticipantId(rec.participant.0 ^ (1 + (byte_sel as u64 % 7)));
                true
            }
            5 => {
                // Change the record kind.
                let new_kind = match rec.kind {
                    RecordKind::Insert => RecordKind::Update,
                    RecordKind::Update => RecordKind::Insert,
                    RecordKind::Aggregate => RecordKind::Update,
                };
                rec.kind = new_kind;
                true
            }
            _ => {
                // Mutate the signed annotation (append or flip a byte).
                if rec.annotation.is_empty() {
                    rec.annotation.push(b'!');
                } else {
                    let i = byte_sel % rec.annotation.len();
                    rec.annotation[i] ^= 0x01;
                }
                true
            }
        };
        prop_assume!(changed);
        let v = Verifier::new(&w.keys, ALG).verify(hash, &p);
        prop_assert!(!v.verified(), "mutation field={field_sel} idx={idx} undetected");
    }

    /// Basic and Economical hashing agree on arbitrary histories.
    #[test]
    fn strategies_agree(ops in prop::collection::vec(hist_op(), 1..16)) {
        let run = |strategy| {
            let w = world();
            let mut tracker = ProvenanceTracker::new(
                TrackerConfig { alg: ALG, strategy },
                Arc::new(ProvenanceDb::in_memory()),
            );
            let (seed, _) = tracker.insert(&w.signer, Value::Int(0), None).unwrap();
            let _ = seed;
            tracker
        };
        let mut basic = run(HashingStrategy::Basic);
        let mut econ = run(HashingStrategy::Economical);
        // Drive both trackers with the same history.
        // (run_history builds its own tracker, so replay manually here.)
        let w = world();
        for (i, op) in ops.iter().enumerate() {
            let signer = if i % 2 == 0 { &w.signer } else { &w.other };
            if let HistOp::Update { target_choice, value } = op {
                for t in [&mut basic, &mut econ] {
                    let live: Vec<ObjectId> = t.forest().ids().collect();
                    let mut sorted = live.clone();
                    sorted.sort_unstable();
                    let target = sorted[target_choice % sorted.len()];
                    t.update(signer, target, Value::Int(*value)).unwrap();
                }
            } else if let HistOp::Insert { parent_choice, value } = op {
                for t in [&mut basic, &mut econ] {
                    let mut sorted: Vec<ObjectId> = t.forest().ids().collect();
                    sorted.sort_unstable();
                    let parent = if parent_choice % 3 == 0 {
                        None
                    } else {
                        Some(sorted[parent_choice % sorted.len()])
                    };
                    t.insert(signer, Value::Int(*value), parent).unwrap();
                }
            }
        }
        let mut roots_b: Vec<ObjectId> = basic.forest().roots().collect();
        let roots_e: Vec<ObjectId> = econ.forest().roots().collect();
        prop_assert_eq!(&roots_b, &roots_e);
        roots_b.sort_unstable();
        for root in roots_b {
            prop_assert_eq!(basic.object_hash(root).unwrap(), econ.object_hash(root).unwrap());
        }
    }
}

/// proptest is heavyweight for a simple determinism check, so: plain test —
/// the same seed must reproduce the identical provenance DB.
#[test]
fn deterministic_replay() {
    let w = world();
    let run = || {
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                ..Default::default()
            },
            Arc::new(ProvenanceDb::in_memory()),
        );
        let (a, _) = tracker.insert(&w.signer, Value::Int(1), None).unwrap();
        tracker.update(&w.signer, a, Value::Int(2)).unwrap();
        tracker
            .db()
            .all_records()
            .into_iter()
            .map(|r| (r.oid, r.seq_id, r.checksum))
            .collect::<Vec<_>>()
    };
    // PKCS#1 v1.5 signatures are deterministic, so entire histories are.
    assert_eq!(run(), run());
}
