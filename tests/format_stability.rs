//! Format-stability pins: the signed-message layout and record wire format
//! define what *existing* checksums mean. Any change to them silently
//! invalidates previously stored provenance, so this test freezes a golden
//! digest of a fully deterministic history. If it fails, you changed
//! checksum semantics — bump the record version and document the deviation
//! in DESIGN.md §5a (and regenerate the constant only then, knowingly).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tepdb::crypto::hex::to_hex;
use tepdb::crypto::sha256::Sha256;
use tepdb::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

/// Builds a deterministic history touching every record kind and feature:
/// inserts, inherited updates, delete, annotated complex op, aggregation.
fn golden_history() -> Arc<ProvenanceDb> {
    let mut rng = StdRng::seed_from_u64(0x601D);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
    let bob = ca.enroll(ParticipantId(2), 512, &mut rng);

    let db = Arc::new(ProvenanceDb::in_memory());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::clone(&db),
    );
    let (root, _) = tracker.insert(&alice, Value::text("db"), None).unwrap();
    let (row, _) = tracker.insert(&alice, Value::Null, Some(root)).unwrap();
    let (cell, _) = tracker.insert(&bob, Value::Int(1), Some(row)).unwrap();
    tracker
        .complex_annotated(
            &bob,
            &[PrimitiveOp::Update {
                id: cell,
                value: Value::Int(2),
            }],
            b"golden annotation",
        )
        .unwrap();
    let (other, _) = tracker.insert(&alice, Value::real(2.5), None).unwrap();
    tracker
        .aggregate(
            &alice,
            &[root, other],
            Value::text("agg"),
            AggregateMode::CopySubtrees,
        )
        .unwrap();
    tracker.delete(&bob, cell).unwrap();
    db
}

/// Digest of every stored record (columns + payload + checksum), in order.
fn history_digest(db: &ProvenanceDb) -> String {
    let mut h = Sha256::new();
    for r in db.all_records() {
        h.update(&r.seq_id.to_be_bytes());
        h.update(&r.participant.0.to_be_bytes());
        h.update(&r.oid.raw().to_be_bytes());
        h.update(&(r.checksum.len() as u64).to_be_bytes());
        h.update(&r.checksum);
        h.update(&(r.payload.len() as u64).to_be_bytes());
        h.update(&r.payload);
    }
    to_hex(&h.finalize())
}

#[test]
fn deterministic_history_is_reproducible() {
    // PKCS#1 v1.5 signatures and seeded keygen make whole histories
    // bit-reproducible; two runs must agree exactly.
    assert_eq!(
        history_digest(&golden_history()),
        history_digest(&golden_history())
    );
}

#[test]
fn checksum_semantics_golden_pin() {
    let digest = history_digest(&golden_history());
    // Captured from the v2 record format (annotations + signed seqID).
    // See the module docs before touching this constant.
    const GOLDEN: &str = "b691fc962114b1d6a912c64dd70f1e9840f5d301e77ef78d3d5e16f154b10c42";
    assert_eq!(digest, GOLDEN, "checksum/wire semantics changed");
}
