//! Full-pipeline integration tests: synthetic workloads through the
//! tracker, provenance collection, verification, and durable storage, all
//! composed across crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tepdb::core::{collect, Verifier};
use tepdb::prelude::*;
use tepdb::workloads::{
    build_database, setup_b_delete_rows, setup_b_insert_rows, setup_b_update_cells, setup_c_mix,
    MixSpec, TablePlan, TableSpec,
};

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

fn signer_and_keys() -> (Participant, KeyDirectory) {
    let mut rng = StdRng::seed_from_u64(12);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let p = ca.enroll(ParticipantId(1), 512, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    keys.register(p.certificate().clone()).unwrap();
    (p, keys)
}

const SMALL: TableSpec = TableSpec {
    name: "t",
    num_attrs: 4,
    num_rows: 60,
};

#[test]
fn workload_history_verifies_end_to_end() {
    let (signer, keys) = signer_and_keys();
    let db = build_database(&[SMALL], 5);
    let root = db.root;
    let mut plan = TablePlan::new(&db.tables[0], SMALL.num_attrs, db.forest.next_id_hint());
    let mut tracker = ProvenanceTracker::adopt(
        db.forest,
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    // Genesis makes the adopted state verifiable from the start.
    tracker.record_genesis(&signer).unwrap();

    // A realistic mixed workload: deletes, inserts, updates.
    let mix = MixSpec {
        deletes: 5,
        inserts: 7,
        updates: 20,
    };
    for group in setup_c_mix(&mut plan, mix, 77) {
        tracker.complex(&signer, &group).unwrap();
    }

    // The root's provenance chain documents every inherited change.
    let prov = collect(tracker.db(), root).unwrap();
    assert!(
        prov.len() > 32,
        "expected a substantial chain, got {}",
        prov.len()
    );
    let hash = tracker.object_hash(root).unwrap();
    let v = Verifier::new(&keys, ALG).verify(&hash, &prov);
    assert!(v.verified(), "issues: {:?}", v.issues);
}

#[test]
fn every_setup_b_workload_leaves_verifiable_state() {
    let (signer, keys) = signer_and_keys();
    type Gen = Box<dyn Fn(&mut TablePlan) -> Vec<Vec<PrimitiveOp>>>;
    let generators: Vec<(&str, Gen)> = vec![
        (
            "deletes",
            Box::new(|p: &mut TablePlan| setup_b_delete_rows(p, 10, 3)),
        ),
        (
            "inserts",
            Box::new(|p: &mut TablePlan| setup_b_insert_rows(p, 10, 3)),
        ),
        (
            "updates/10rows",
            Box::new(|p: &mut TablePlan| setup_b_update_cells(p, 40, 10, 3)),
        ),
        (
            "updates/40rows",
            Box::new(|p: &mut TablePlan| setup_b_update_cells(p, 40, 40, 3)),
        ),
    ];
    for (label, generate) in generators {
        let db = build_database(&[SMALL], 5);
        let root = db.root;
        let mut plan = TablePlan::new(&db.tables[0], SMALL.num_attrs, db.forest.next_id_hint());
        let mut tracker = ProvenanceTracker::adopt(
            db.forest,
            TrackerConfig {
                alg: ALG,
                ..Default::default()
            },
            Arc::new(ProvenanceDb::in_memory()),
        );
        tracker.record_genesis(&signer).unwrap();
        for group in generate(&mut plan) {
            tracker.complex(&signer, &group).unwrap();
        }
        let prov = collect(tracker.db(), root).unwrap();
        let hash = tracker.object_hash(root).unwrap();
        let v = Verifier::new(&keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "{label}: issues: {:?}", v.issues);
    }
}

#[test]
fn basic_and_economical_trackers_produce_identical_hashes() {
    let (signer, _) = signer_and_keys();
    let run = |strategy| {
        let db = build_database(&[SMALL], 9);
        let root = db.root;
        let mut plan = TablePlan::new(&db.tables[0], SMALL.num_attrs, db.forest.next_id_hint());
        let mut tracker = ProvenanceTracker::adopt(
            db.forest,
            TrackerConfig { alg: ALG, strategy },
            Arc::new(ProvenanceDb::in_memory()),
        );
        let mix = MixSpec {
            deletes: 3,
            inserts: 4,
            updates: 10,
        };
        for group in setup_c_mix(&mut plan, mix, 21) {
            tracker.complex(&signer, &group).unwrap();
        }
        tracker.object_hash(root).unwrap()
    };
    assert_eq!(
        run(HashingStrategy::Basic),
        run(HashingStrategy::Economical)
    );
}

#[test]
fn durable_store_survives_restart_mid_history() {
    let (signer, keys) = signer_and_keys();
    let path = std::env::temp_dir().join(format!(
        "tepdb-e2e-{}-{}.teplog",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_file(&path);

    // Session 1: start a history against a durable store.
    let obj;
    {
        let db = Arc::new(ProvenanceDb::durable(&path).unwrap());
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                ..Default::default()
            },
            Arc::clone(&db),
        );
        let (o, _) = tracker.insert(&signer, Value::Int(1), None).unwrap();
        tracker.update(&signer, o, Value::Int(2)).unwrap();
        db.sync().unwrap();
        obj = o;
    }

    // Session 2: recover; the records are all there and chain-verify
    // against the recorded final state.
    let db = Arc::new(ProvenanceDb::durable(&path).unwrap());
    assert_eq!(db.len(), 2);
    let prov = collect(&db, obj).unwrap();
    let final_hash = prov.latest().unwrap().output_hash.clone();
    let v = Verifier::new(&keys, ALG).verify(&final_hash, &prov);
    assert!(v.verified(), "issues: {:?}", v.issues);
    std::fs::remove_file(&path).ok();
}

#[test]
fn full_restart_with_snapshot_and_log_continues_chains() {
    // The complete durability story: forest snapshot + durable provenance
    // log → restart → restore → keep tracking → everything verifies as ONE
    // continuous history.
    let (signer, keys) = signer_and_keys();
    let base = std::env::temp_dir().join(format!("tepdb-restart-{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let log_path = base.join("prov.teplog");
    let snap_path = base.join("backend.tepsnap");
    let _ = std::fs::remove_file(&log_path);

    let obj;
    {
        let db = Arc::new(ProvenanceDb::durable(&log_path).unwrap());
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                ..Default::default()
            },
            Arc::clone(&db),
        );
        let (root, _) = tracker.insert(&signer, Value::text("db"), None).unwrap();
        let (leaf, _) = tracker.insert(&signer, Value::Int(1), Some(root)).unwrap();
        tracker.update(&signer, leaf, Value::Int(2)).unwrap();
        obj = root;
        tepdb::storage::save_forest(tracker.forest(), &snap_path).unwrap();
        db.sync().unwrap();
    } // restart

    {
        let forest = tepdb::storage::load_forest(&snap_path).unwrap();
        let db = Arc::new(ProvenanceDb::durable(&log_path).unwrap());
        let mut tracker = ProvenanceTracker::restore(
            forest,
            TrackerConfig {
                alg: ALG,
                ..Default::default()
            },
            Arc::clone(&db),
        );
        // Chain heads restored: next record chains onto persisted history.
        assert_eq!(tracker.head_seq(obj), Some(2)); // genesis + 2 inherited
        let leaf = tracker
            .forest()
            .node(obj)
            .unwrap()
            .children()
            .next()
            .unwrap();
        tracker.update(&signer, leaf, Value::Int(3)).unwrap();

        // The WHOLE history — across the restart — verifies continuously.
        let prov = collect(tracker.db(), obj).unwrap();
        let hash = tracker.object_hash(obj).unwrap();
        let v = Verifier::new(&keys, ALG).verify(&hash, &prov);
        assert!(v.verified(), "issues: {:?}", v.issues);
        assert_eq!(tracker.head_seq(obj), Some(3));
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn provenance_dag_shape_for_cross_table_aggregation() {
    let (signer, keys) = signer_and_keys();
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    // Two small tables; aggregate a row from each.
    let (root, _) = tracker.insert(&signer, Value::text("db"), None).unwrap();
    let (t1, _) = tracker
        .insert(&signer, Value::text("t1"), Some(root))
        .unwrap();
    let (t2, _) = tracker
        .insert(&signer, Value::text("t2"), Some(root))
        .unwrap();
    let (r1, _) = tracker.insert(&signer, Value::Null, Some(t1)).unwrap();
    let (r2, _) = tracker.insert(&signer, Value::Null, Some(t2)).unwrap();
    tracker.insert(&signer, Value::Int(1), Some(r1)).unwrap();
    tracker.insert(&signer, Value::Int(2), Some(r2)).unwrap();

    let (agg, _) = tracker
        .aggregate(
            &signer,
            &[r1, r2],
            Value::text("joined"),
            AggregateMode::CopySubtrees,
        )
        .unwrap();

    let prov = collect(tracker.db(), agg).unwrap();
    // The aggregate record references both rows' chains.
    let agg_rec = prov.latest().unwrap();
    assert_eq!(agg_rec.inputs.len(), 2);
    // The DAG has edges into both input chains.
    let edges = prov.edges();
    assert!(edges.iter().any(|e| e.to.0 == r1));
    assert!(edges.iter().any(|e| e.to.0 == r2));

    let hash = tracker.object_hash(agg).unwrap();
    let v = Verifier::new(&keys, ALG).verify(&hash, &prov);
    assert!(v.verified(), "issues: {:?}", v.issues);

    // The copied subtree exists and matches the source values.
    assert_eq!(tracker.forest().subtree_size(agg), 1 + 2 + 2);
}

#[test]
fn first_touch_update_of_copied_node_verifies() {
    // Nodes materialized inside a CopySubtrees aggregation have no chains
    // of their own; their first direct update is a chain-start Update
    // record (prev = None) whose pre-state is vouched for by the
    // aggregate's output hash. The verifier must accept this shape.
    let (signer, keys) = signer_and_keys();
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    let (src, _) = tracker.insert(&signer, Value::text("row"), None).unwrap();
    tracker.insert(&signer, Value::Int(1), Some(src)).unwrap();
    let (agg, _) = tracker
        .aggregate(
            &signer,
            &[src],
            Value::text("copy"),
            AggregateMode::CopySubtrees,
        )
        .unwrap();

    // Find a copied leaf inside the aggregate and update it directly.
    let copied_leaf = tracker
        .forest()
        .subtree_ids(agg)
        .into_iter()
        .find(|&id| id != agg && tracker.forest().node(id).unwrap().is_leaf())
        .expect("copied leaf exists");
    tracker
        .update(&signer, copied_leaf, Value::Int(99))
        .unwrap();

    // The aggregate root's provenance (aggregate record + inherited
    // updates) verifies end to end.
    let prov = collect(tracker.db(), agg).unwrap();
    let hash = tracker.object_hash(agg).unwrap();
    let v = Verifier::new(&keys, ALG).verify(&hash, &prov);
    assert!(v.verified(), "issues: {:?}", v.issues);

    // And the copied leaf's own chain (which STARTS with an Update) also
    // verifies.
    let leaf_prov = collect(tracker.db(), copied_leaf).unwrap();
    assert_eq!(leaf_prov.records[0].kind, tepdb::core::RecordKind::Update);
    assert_eq!(leaf_prov.records[0].inputs[0].prev_seq, None);
    let leaf_hash = tracker.object_hash(copied_leaf).unwrap();
    let v = Verifier::new(&keys, ALG).verify(&leaf_hash, &leaf_prov);
    assert!(v.verified(), "issues: {:?}", v.issues);
}

#[test]
fn signed_annotations_are_tamper_evident() {
    // Footnote 4: records can carry white-box operation descriptions; ours
    // are bound into the signed checksum.
    let (signer, keys) = signer_and_keys();
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    let (obj, _) = tracker.insert(&signer, Value::Int(1), None).unwrap();
    tracker
        .complex_annotated(
            &signer,
            &[PrimitiveOp::Update {
                id: obj,
                value: Value::Int(2),
            }],
            b"UPDATE trial SET dose = 2 WHERE id = 1",
        )
        .unwrap();

    let prov = collect(tracker.db(), obj).unwrap();
    let annotated = prov
        .records
        .iter()
        .find(|r| r.seq_id == 1)
        .expect("update record");
    assert_eq!(
        annotated.annotation_text(),
        Some("UPDATE trial SET dose = 2 WHERE id = 1")
    );

    // Honest history verifies with the annotation in place.
    let hash = tracker.object_hash(obj).unwrap();
    let verifier = Verifier::new(&keys, ALG);
    assert!(verifier.verify(&hash, &prov).verified());

    // Rewriting the annotation (claiming a different operation was run)
    // breaks the signature.
    let mut forged = prov.clone();
    let idx = forged.records.iter().position(|r| r.seq_id == 1).unwrap();
    forged.records[idx].annotation = b"UPDATE trial SET dose = 1 WHERE id = 1".to_vec();
    assert!(!verifier.verify(&hash, &forged).verified());

    // Stripping it entirely is also detected.
    let mut stripped = prov.clone();
    stripped.records[idx].annotation.clear();
    assert!(!verifier.verify(&hash, &stripped).verified());

    // Aggregates carry annotations too.
    let (other, _) = tracker.insert(&signer, Value::Int(9), None).unwrap();
    let (agg, _) = tracker
        .aggregate_annotated(
            &signer,
            &[obj, other],
            Value::Int(11),
            AggregateMode::Atomic,
            b"SELECT SUM(dose) FROM trial".to_vec(),
        )
        .unwrap();
    let prov = collect(tracker.db(), agg).unwrap();
    assert_eq!(
        prov.latest().unwrap().annotation_text(),
        Some("SELECT SUM(dose) FROM trial")
    );
    let hash = tracker.object_hash(agg).unwrap();
    assert!(verifier.verify(&hash, &prov).verified());
}

#[test]
fn deleted_object_chains_are_retired_but_ancestors_continue() {
    let (signer, keys) = signer_and_keys();
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    let (root, _) = tracker.insert(&signer, Value::text("db"), None).unwrap();
    let (leaf, _) = tracker.insert(&signer, Value::Int(1), Some(root)).unwrap();
    tracker.update(&signer, leaf, Value::Int(2)).unwrap();
    tracker.delete(&signer, leaf).unwrap();
    // A new object may later reuse nothing; root's chain has 4 records:
    // genesis insert + 3 inherited updates.
    let prov = collect(tracker.db(), root).unwrap();
    assert_eq!(prov.len(), 4);
    let hash = tracker.object_hash(root).unwrap();
    assert!(Verifier::new(&keys, ALG).verify(&hash, &prov).verified());
}
