//! Conformance matrix: guarantees **R1–R8** × `attack::Tamper` × surface.
//!
//! Every guarantee with a defined attack is exercised on each surface that
//! can express the attack:
//!
//! * **in-memory** — tamper a collected [`ProvenanceObject`], batch-verify;
//! * **storage reopen** — persist the tampered records through the durable
//!   CRC-framed log on a [`FaultVfs`], power-cycle, reopen, re-collect,
//!   and verify via [`Verifier::verify_recovered`];
//! * **wire** — serve the honest catalog and replay the tamper in flight
//!   through a [`TamperProxy`], letting the client's streaming verifier
//!   catch it;
//! * **query slice** — plant the tamper inside a [`SliceProof`] answering a
//!   lineage query over the same history, and let the recipient's
//!   [`Verifier::verify_slice`] attribute it;
//! * **omission** — attacks on what the server *refuses to say*: a forged
//!   denial of an object it does hold, a range answer that silently drops
//!   a proven member, and a pre-compaction stale state served after a
//!   sealed checkpoint attested more history — in memory, on the wire,
//!   and against a replica's pinned signed root;
//! * **cross-tenant replay** — tenant A's *genuine* signed artifacts
//!   (records, denials) presented inside tenant B's scope, against the
//!   sharded store and over the wire: B's verifier must attribute every
//!   one (A's signer is not in B's key directory) and accept none.
//!
//! Each detection is asserted twice: the verdict itself, and the matching
//! `tep_core_evidence_<kind>_total` counter in a per-case [`Registry`] —
//! the counters must account for *exactly* the reported evidence, kind by
//! kind, on every surface.
//!
//! Attacks that require injecting frames (forged insertion / forged
//! append, R3/R6) have no wire form — a path attacker can drop or mutate
//! frames but cannot mint them mid-stream without breaking framing — so
//! those (guarantee, wire) pairs are intentionally absent.

use std::collections::HashMap;
use std::io::{Seek, SeekFrom};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tepdb::core::attack::{apply_tamper, collusion_splice, forge_insertion, Tamper};
use tepdb::core::checkpoint::Checkpoint;
use tepdb::core::denial::{DenialProof, RangeProof, SignedDenial, SignedRange, SignedRoot};
use tepdb::core::merkle::shard_tree_of;
use tepdb::core::provenance::ProvenanceObject;
use tepdb::core::slice::{QueryAnswer, QueryOp, QuerySpec, SliceProof};
use tepdb::core::verify::EvidenceKind;
use tepdb::core::{
    collect, ProvenanceRecord, ProvenanceTracker, TamperEvidence, TrackerConfig, Verifier,
};
use tepdb::model::ObjectId;
use tepdb::net::proxy::Mutator;
use tepdb::net::wire::Message;
use tepdb::net::{
    serve, serve_with_registry, AeStatus, Catalog, Client, ClientConfig, NetError, ProxyAction,
    Replica, ReplicaConfig, ServerConfig, ServerHandle, TamperProxy,
};
use tepdb::obs::{names, Registry};
use tepdb::prelude::*;
use tepdb::storage::vfs::{FaultConfig, FaultVfs, Vfs};
use tepdb::storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

/// One shared provenance world (RSA keygen is the expensive part).
struct World {
    keys: KeyDirectory,
    bob: Participant,
    mallory: Participant,
    /// Atomic object with a 5-record history: alice@0, bob@1, alice@2,
    /// bob@3, carol@4 — bob's records sandwich alice@2 (collusion splice)
    /// and carol@4 is the honest successor that exposes it.
    doc: ObjectId,
    doc_hash: Vec<u8>,
    /// A second object with the same value: its hash must not vouch for
    /// `doc`'s provenance (R5).
    other_hash: Vec<u8>,
    clean: ProvenanceObject,
    catalog: Arc<Catalog>,
}

static WORLD: OnceLock<World> = OnceLock::new();

fn world() -> &'static World {
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC04F);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let carol = ca.enroll(ParticipantId(3), 512, &mut rng);
        let mallory = ca.enroll(ParticipantId(4), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        for p in [&alice, &bob, &carol, &mallory] {
            keys.register(p.certificate().clone()).unwrap();
        }

        let db = Arc::new(ProvenanceDb::in_memory());
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                ..Default::default()
            },
            Arc::clone(&db),
        );
        let (doc, _) = tracker.insert(&alice, Value::Int(0), None).unwrap();
        tracker.update(&bob, doc, Value::Int(1)).unwrap();
        tracker.update(&alice, doc, Value::Int(2)).unwrap();
        tracker.update(&bob, doc, Value::Int(3)).unwrap();
        tracker.update(&carol, doc, Value::Int(4)).unwrap();
        let (other, _) = tracker.insert(&bob, Value::Int(4), None).unwrap();

        let doc_hash = tracker.object_hash(doc).unwrap();
        let other_hash = tracker.object_hash(other).unwrap();
        let clean = collect(&db, doc).unwrap();
        let catalog = Arc::new(Catalog::new(tracker.forest().clone(), db, ALG, vec![doc]));

        World {
            keys,
            bob,
            mallory,
            doc,
            doc_hash,
            other_hash,
            clean,
            catalog,
        }
    })
}

/// An attack from the §2.2 toolkit, in matrix form.
enum Attack {
    /// A single-record mutation/removal (replayable on the wire).
    Tamper(Tamper),
    /// Mallory forges a record at an *interior* slot (R3).
    ForgeInterior,
    /// Mallory appends a forged most-recent record that tracks no real
    /// operation (R3 footnote 5 / R6): caught by the data comparison.
    ForgeAppend,
    /// Bob splices alice@2 out between his own records and re-signs (R7);
    /// carol's honest successor exposes it.
    Splice,
    /// The data is modified out-of-band, provenance left intact (R4).
    DataModification,
    /// Genuine provenance presented for a *different* object (R5).
    Substitution,
}

struct Case {
    guarantee: &'static str,
    name: &'static str,
    attack: Attack,
    /// The evidence kind that must be reported (in-memory and wire).
    expect: EvidenceKind,
    /// Kind expected after a storage round-trip. Differs only for
    /// `ForgeInterior`: the store's duplicate-slot collapse keeps one
    /// record per `(oid, seq)`, so the forgery surfaces as the successor's
    /// broken signature instead of a duplicate.
    expect_storage: EvidenceKind,
}

fn cases() -> Vec<Case> {
    let doc = world().doc;
    let mallory = world().mallory.id();
    let mut out = vec![
        Case {
            guarantee: "R1",
            name: "flip output hash",
            attack: Attack::Tamper(Tamper::FlipOutputHash { oid: doc, seq: 2 }),
            expect: EvidenceKind::BadSignature,
            expect_storage: EvidenceKind::BadSignature,
        },
        Case {
            guarantee: "R1",
            name: "flip input hash",
            attack: Attack::Tamper(Tamper::FlipInputHash {
                oid: doc,
                seq: 2,
                input: 0,
            }),
            expect: EvidenceKind::BadSignature,
            expect_storage: EvidenceKind::BadSignature,
        },
        Case {
            guarantee: "R1",
            name: "flip checksum",
            attack: Attack::Tamper(Tamper::FlipChecksum { oid: doc, seq: 2 }),
            expect: EvidenceKind::BadSignature,
            expect_storage: EvidenceKind::BadSignature,
        },
        Case {
            guarantee: "R2",
            name: "remove interior record",
            attack: Attack::Tamper(Tamper::Remove { oid: doc, seq: 2 }),
            expect: EvidenceKind::MissingRecord,
            expect_storage: EvidenceKind::MissingRecord,
        },
        Case {
            guarantee: "R3",
            name: "forge interior insertion",
            attack: Attack::ForgeInterior,
            expect: EvidenceKind::DuplicateRecord,
            expect_storage: EvidenceKind::BadSignature,
        },
        Case {
            guarantee: "R4",
            name: "modify data out-of-band",
            attack: Attack::DataModification,
            expect: EvidenceKind::OutputMismatch,
            expect_storage: EvidenceKind::OutputMismatch,
        },
        Case {
            guarantee: "R5",
            name: "substitute provenance of another object",
            attack: Attack::Substitution,
            expect: EvidenceKind::OutputMismatch,
            expect_storage: EvidenceKind::OutputMismatch,
        },
        Case {
            guarantee: "R6",
            name: "forged untracked append",
            attack: Attack::ForgeAppend,
            expect: EvidenceKind::OutputMismatch,
            expect_storage: EvidenceKind::OutputMismatch,
        },
        Case {
            guarantee: "R7",
            name: "collusion splice with honest successor",
            attack: Attack::Splice,
            expect: EvidenceKind::BadSignature,
            expect_storage: EvidenceKind::BadSignature,
        },
        Case {
            guarantee: "R8",
            name: "reattribute to another participant",
            attack: Attack::Tamper(Tamper::Reattribute {
                oid: doc,
                seq: 1,
                to: mallory,
            }),
            expect: EvidenceKind::BadSignature,
            expect_storage: EvidenceKind::BadSignature,
        },
    ];
    // Sanity: every guarantee appears.
    for g in ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"] {
        assert!(out.iter().any(|c| c.guarantee == g), "no case for {g}");
    }
    out.sort_by_key(|c| c.guarantee);
    out
}

/// Builds the (claimed object hash, provenance) pair the verifier is
/// handed after the attack.
fn scenario(w: &World, attack: &Attack) -> (Vec<u8>, ProvenanceObject) {
    let mut prov = w.clean.clone();
    let hash = match attack {
        Attack::Tamper(t) => {
            assert!(apply_tamper(&mut prov, t), "tamper target must exist");
            w.doc_hash.clone()
        }
        Attack::ForgeInterior => {
            forge_insertion(&mut prov, ALG, &w.mallory, w.doc, 2, vec![0u8; 32]).unwrap();
            w.doc_hash.clone()
        }
        Attack::ForgeAppend => {
            forge_insertion(&mut prov, ALG, &w.mallory, w.doc, 5, vec![0u8; 32]).unwrap();
            w.doc_hash.clone()
        }
        Attack::Splice => {
            collusion_splice(&mut prov, ALG, w.doc, 1, 3, &w.bob).unwrap();
            w.doc_hash.clone()
        }
        Attack::DataModification => {
            let mut h = w.doc_hash.clone();
            h[0] ^= 0x01;
            h
        }
        Attack::Substitution => w.other_hash.clone(),
    };
    (hash, prov)
}

/// The per-kind evidence counters must account for exactly the reported
/// issues — every detected kind incremented by its multiplicity, every
/// other kind untouched.
fn assert_evidence_counters(reg: &Registry, issues: &[TamperEvidence], ctx: &str) {
    let mut want: HashMap<EvidenceKind, u64> = HashMap::new();
    for issue in issues {
        *want.entry(issue.kind()).or_insert(0) += 1;
    }
    for kind in EvidenceKind::ALL {
        assert_eq!(
            reg.counter_value(&kind.counter_name()),
            want.get(&kind).copied().unwrap_or(0),
            "{ctx}: `{kind}` counter does not match reported evidence",
        );
    }
}

// ---------------------------------------------------------------------------
// Surface 1: in-memory batch verification
// ---------------------------------------------------------------------------

#[test]
fn in_memory_surface_detects_every_attack() {
    let w = world();
    for case in cases() {
        let ctx = format!("{} ({}, in-memory)", case.guarantee, case.name);
        let (hash, prov) = scenario(w, &case.attack);
        let reg = Registry::new();
        let mut verifier = Verifier::new(&w.keys, ALG);
        verifier.attach_obs(&reg);
        let v = verifier.verify(&hash, &prov);
        assert!(!v.verified(), "{ctx}: attack went undetected");
        assert!(
            v.issues.iter().any(|i| i.kind() == case.expect),
            "{ctx}: expected {:?} among {:?}",
            case.expect,
            v.issues,
        );
        assert_evidence_counters(&reg, &v.issues, &ctx);
        assert_eq!(
            reg.counter_value("tep_core_verify_tampered_total"),
            1,
            "{ctx}"
        );
    }
}

// ---------------------------------------------------------------------------
// Surface 2: durable log round-trip (write → power-cycle → recover)
// ---------------------------------------------------------------------------

#[test]
fn storage_reopen_surface_detects_every_attack() {
    let w = world();
    let path = Path::new("/matrix.teplog");
    for case in cases() {
        let ctx = format!("{} ({}, storage reopen)", case.guarantee, case.name);
        let (hash, prov) = scenario(w, &case.attack);

        // Persist the tampered records (reverse order so a forged
        // duplicate shadows the original in the store's tie-keeping
        // index), then simulate power loss and recover.
        let vfs = FaultVfs::new(FaultConfig::default());
        {
            let db = ProvenanceDb::durable_with(vfs.clone(), path).unwrap();
            for r in prov.records.iter().rev() {
                db.append(r.to_stored()).unwrap();
            }
            db.sync().unwrap();
        }
        vfs.power_cycle();
        let db = ProvenanceDb::durable_with(vfs, path).unwrap();
        assert!(
            !db.recovery().is_degraded(),
            "{ctx}: synced log must recover clean"
        );

        let recovered = collect(&db, w.doc).unwrap();
        let reg = Registry::new();
        let mut verifier = Verifier::new(&w.keys, ALG);
        verifier.attach_obs(&reg);
        let v = verifier.verify_recovered(&hash, &recovered, &db.recovery());
        assert!(!v.verified(), "{ctx}: attack went undetected");
        assert!(
            v.issues.iter().any(|i| i.kind() == case.expect_storage),
            "{ctx}: expected {:?} among {:?}",
            case.expect_storage,
            v.issues,
        );
        assert_evidence_counters(&reg, &v.issues, &ctx);
    }
}

/// Storage-layer tampering below the record level: flipping a byte of the
/// log itself quarantines the damaged range at reopen, and
/// `verify_recovered` folds that into `StorageQuarantine` evidence — a
/// damaged chain never verifies clean.
#[test]
fn storage_quarantine_is_reported_as_evidence() {
    let w = world();
    let path = Path::new("/quarantine.teplog");
    let vfs = FaultVfs::new(FaultConfig::default());
    {
        let db = ProvenanceDb::durable_with(vfs.clone(), path).unwrap();
        for r in &w.clean.records {
            db.append(r.to_stored()).unwrap();
        }
        db.sync().unwrap();
    }
    let len = {
        let mut f = vfs.open_rw(path).unwrap();
        f.seek(SeekFrom::End(0)).unwrap()
    };
    assert!(vfs.corrupt_byte(path, (len / 2) as usize));
    vfs.power_cycle();

    let db = ProvenanceDb::durable_with(vfs, path).unwrap();
    assert!(db.recovery().is_degraded(), "corruption must quarantine");
    let recovered = collect(&db, w.doc).unwrap();
    let reg = Registry::new();
    let mut verifier = Verifier::new(&w.keys, ALG);
    verifier.attach_obs(&reg);
    let v = verifier.verify_recovered(&w.doc_hash, &recovered, &db.recovery());
    assert!(!v.verified(), "quarantined storage must not verify clean");
    assert!(
        v.issues
            .iter()
            .any(|i| i.kind() == EvidenceKind::StorageQuarantine),
        "expected StorageQuarantine among {:?}",
        v.issues,
    );
    assert_evidence_counters(&reg, &v.issues, "storage quarantine");
}

// ---------------------------------------------------------------------------
// Surface 3: the wire (streaming verify-on-receive)
// ---------------------------------------------------------------------------

/// Replays an offline-tampered provenance object in flight: PROV frames
/// whose record was removed are dropped, mutated ones are re-framed with
/// a valid CRC — exactly what a path attacker can do.
fn replay_mutator(tampered: ProvenanceObject) -> Mutator {
    let map: HashMap<(ObjectId, u64), ProvenanceRecord> = tampered
        .records
        .into_iter()
        .map(|r| ((r.output_oid, r.seq_id), r))
        .collect();
    Box::new(move |_frame, msg| {
        let Message::Prov { record } = msg else {
            return ProxyAction::Forward;
        };
        let Ok(rec) = ProvenanceRecord::from_stored(record) else {
            return ProxyAction::Forward;
        };
        match map.get(&(rec.output_oid, rec.seq_id)) {
            None => ProxyAction::Drop,
            Some(t) if *t != rec => ProxyAction::Replace(Message::Prov {
                record: t.to_stored(),
            }),
            Some(_) => ProxyAction::Forward,
        }
    })
}

/// The in-flight form of each attack, when one exists.
fn wire_mutator(w: &World, attack: &Attack) -> Option<Mutator> {
    match attack {
        Attack::Tamper(_) | Attack::Splice => {
            let (_, tampered) = scenario(w, attack);
            Some(replay_mutator(tampered))
        }
        // R4 on the wire: mutate the data frame, leave provenance intact.
        Attack::DataModification => Some(Box::new(|_frame, msg| {
            let Message::Data { entries } = msg else {
                return ProxyAction::Forward;
            };
            let mut entries = entries.clone();
            entries[0].value = Value::Int(666_666);
            ProxyAction::Replace(Message::Data { entries })
        })),
        // R5 on the wire: deliver a different object under genuine
        // provenance by swapping the data node's identity.
        Attack::Substitution => Some(Box::new(|_frame, msg| {
            let Message::Data { entries } = msg else {
                return ProxyAction::Forward;
            };
            let mut entries = entries.clone();
            entries[0].id = ObjectId(entries[0].id.0 + 1);
            ProxyAction::Replace(Message::Data { entries })
        })),
        // Frame injection is not in a path attacker's toolkit.
        Attack::ForgeInterior | Attack::ForgeAppend => None,
    }
}

#[test]
fn wire_surface_detects_every_expressible_attack() {
    let w = world();
    let srv = serve(
        Arc::clone(&w.catalog),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut covered = 0;
    for case in cases() {
        let Some(mutator) = wire_mutator(w, &case.attack) else {
            continue;
        };
        covered += 1;
        let ctx = format!("{} ({}, wire)", case.guarantee, case.name);
        let proxy = TamperProxy::spawn(srv.addr(), mutator).unwrap();
        let reg = Registry::new();
        let mut client = Client::new(proxy.addr(), ClientConfig::new(ALG));
        client.attach_obs(&reg);
        match client.fetch_verified(w.doc, &w.keys) {
            Err(NetError::TamperDetected { issues, .. }) => {
                assert!(
                    issues.iter().any(|i| i.kind() == case.expect),
                    "{ctx}: expected {:?} among {:?}",
                    case.expect,
                    issues,
                );
                assert_evidence_counters(&reg, &issues, &ctx);
            }
            other => panic!("{ctx}: expected TamperDetected, got {other:?}"),
        }
        assert_eq!(
            reg.counter_value("tep_net_verify_failures_total"),
            1,
            "{ctx}: transfer failure not counted",
        );
        proxy.shutdown();
    }
    // R1 (×3), R2, R4, R5, R7, R8 all have wire forms.
    assert_eq!(covered, 8, "wire coverage shrank");
    srv.shutdown();
}

// ---------------------------------------------------------------------------
// Surface 4: query slices (`Verifier::verify_slice`)
// ---------------------------------------------------------------------------

/// The honest lineage slice of `doc`: its full 5-record chain, produced by
/// a real `tep_query::QueryEngine` over a store holding the clean history.
fn honest_doc_slice(w: &World) -> SliceProof {
    let db = Arc::new(ProvenanceDb::in_memory());
    for r in &w.clean.records {
        db.append(r.to_stored()).unwrap();
    }
    let engine = tepdb::query::QueryEngine::new(db, ALG);
    engine
        .execute(&QuerySpec::new(QueryOp::LineageSlice, w.doc))
        .unwrap()
}

/// The slice form of each attack, when one exists, with the evidence kind
/// `verify_slice` must attribute. Record-level attacks transplant the
/// tampered records into the proof; the R4 analogue tampers the *answer*
/// (the slice's counterpart of delivering modified data). R5
/// (substitution — a genuine proof presented for a different question) is
/// intentionally absent: it is caught by the recipient's spec-echo check
/// in `Client::query`, exercised in the tep-net query tests, before
/// `verify_slice` ever runs.
fn slice_scenario(w: &World, case: &Case) -> Option<(SliceProof, EvidenceKind)> {
    let mut proof = honest_doc_slice(w);
    let expect = match &case.attack {
        Attack::Tamper(_) | Attack::ForgeInterior | Attack::ForgeAppend | Attack::Splice => {
            let (_, tampered) = scenario(w, &case.attack);
            proof.records = tampered.records;
            proof.records.sort_by_key(|r| (r.output_oid, r.seq_id));
            match case.attack {
                // Coverage re-traversal: the interior gap is a missing
                // record, a forged most-recent record lies outside the
                // closure from the anchored target seq.
                Attack::Tamper(Tamper::Remove { .. }) => EvidenceKind::MissingRecord,
                Attack::ForgeInterior => EvidenceKind::DuplicateRecord,
                Attack::ForgeAppend => EvidenceKind::ExtraneousRecord,
                _ => EvidenceKind::BadSignature,
            }
        }
        // R4's slice analogue: the records are honest, the claimed answer
        // is not — the recomputed answer must win.
        Attack::DataModification => {
            let QueryAnswer::Objects(ref mut oids) = proof.answer else {
                panic!("lineage answers are object lists");
            };
            oids.push(ObjectId(999));
            EvidenceKind::OutputMismatch
        }
        Attack::Substitution => return None,
    };
    Some((proof, expect))
}

#[test]
fn query_slice_surface_detects_every_expressible_attack() {
    let w = world();
    let mut covered = 0;
    for case in cases() {
        let Some((proof, expect)) = slice_scenario(w, &case) else {
            continue;
        };
        covered += 1;
        let ctx = format!("{} ({}, query slice)", case.guarantee, case.name);
        let reg = Registry::new();
        let mut verifier = Verifier::new(&w.keys, ALG);
        verifier.attach_obs(&reg);
        let v = verifier.verify_slice(&proof);
        assert!(!v.verified(), "{ctx}: attack went undetected");
        assert!(
            v.issues.iter().any(|i| i.kind() == expect),
            "{ctx}: expected {:?} among {:?}",
            expect,
            v.issues,
        );
        assert_evidence_counters(&reg, &v.issues, &ctx);
    }
    // Everything except R5's substitution has a slice form.
    assert_eq!(covered, 9, "query-slice coverage shrank");

    // Control: the honest slice verifies clean on this surface too.
    let reg = Registry::new();
    let mut verifier = Verifier::new(&w.keys, ALG);
    verifier.attach_obs(&reg);
    let v = verifier.verify_slice(&honest_doc_slice(w));
    assert!(v.verified(), "honest slice must verify: {:?}", v.issues);
    assert_evidence_counters(&reg, &[], "honest query slice");
}

// ---------------------------------------------------------------------------
// Control: the honest path stays clean on every surface
// ---------------------------------------------------------------------------

#[test]
fn honest_history_verifies_on_every_surface() {
    let w = world();

    // In-memory.
    let reg = Registry::new();
    let mut verifier = Verifier::new(&w.keys, ALG);
    verifier.attach_obs(&reg);
    assert!(verifier.verify(&w.doc_hash, &w.clean).verified());
    assert_evidence_counters(&reg, &[], "honest in-memory");
    assert_eq!(reg.counter_value("tep_core_verify_tampered_total"), 0);

    // Storage reopen.
    let path = Path::new("/honest.teplog");
    let vfs = FaultVfs::new(FaultConfig::default());
    {
        let db = ProvenanceDb::durable_with(vfs.clone(), path).unwrap();
        for r in &w.clean.records {
            db.append(r.to_stored()).unwrap();
        }
        db.sync().unwrap();
    }
    vfs.power_cycle();
    let db = ProvenanceDb::durable_with(vfs, path).unwrap();
    let recovered = collect(&db, w.doc).unwrap();
    let reg = Registry::new();
    let mut verifier = Verifier::new(&w.keys, ALG);
    verifier.attach_obs(&reg);
    assert!(verifier
        .verify_recovered(&w.doc_hash, &recovered, &db.recovery())
        .verified());
    assert_evidence_counters(&reg, &[], "honest storage reopen");

    // Wire.
    let srv = serve(
        Arc::clone(&w.catalog),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap();
    let reg = Registry::new();
    let mut client = Client::new(srv.addr(), ClientConfig::new(ALG));
    client.attach_obs(&reg);
    let report = client.fetch_verified(w.doc, &w.keys).unwrap();
    assert!(report.verification.verified());
    assert_eq!(report.object_hash, w.doc_hash);
    assert_evidence_counters(&reg, &[], "honest wire");
    srv.shutdown();
}

// ---------------------------------------------------------------------------
// Surface 5: omission — authenticated denial, range completeness, and
// compaction-checkpoint continuity
// ---------------------------------------------------------------------------

/// A deterministic two-object history signed by one participant. Worlds
/// built from the same seed share identical keys and a byte-identical
/// operation prefix, so `omission_history(3, 3)` is exactly the state
/// `omission_history(5, 1000)` had two records ago — a rollback — while
/// `omission_history(5, 2000)` is a same-length twin whose final record
/// was swapped — a rewrite under a sealed checkpoint.
struct OmissionWorld {
    keys: KeyDirectory,
    signer: Arc<Participant>,
    tracker: ProvenanceTracker,
    db: Arc<ProvenanceDb>,
    doc: ObjectId,
    doc2: ObjectId,
    doc_hash: Vec<u8>,
}

fn omission_history(updates: u64, tail: i64) -> OmissionWorld {
    let mut rng = StdRng::seed_from_u64(0x0DE_11A2);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let signer = ca.enroll(ParticipantId(7), 512, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    keys.register(signer.certificate().clone()).unwrap();

    let db = Arc::new(ProvenanceDb::in_memory());
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::clone(&db),
    );
    let (doc, _) = tracker.insert(&signer, Value::Int(0), None).unwrap();
    let (doc2, _) = tracker.insert(&signer, Value::Int(50), None).unwrap();
    for i in 1..updates {
        tracker.update(&signer, doc, Value::Int(i as i64)).unwrap();
    }
    tracker.update(&signer, doc, Value::Int(tail)).unwrap();
    let doc_hash = tracker.object_hash(doc).unwrap();
    OmissionWorld {
        keys,
        signer: Arc::new(signer),
        tracker,
        db,
        doc,
        doc2,
        doc_hash,
    }
}

impl OmissionWorld {
    /// A signing catalog: misses become signed denials, range requests
    /// carry completeness proofs, anti-entropy summaries attach the
    /// signed shard root.
    fn catalog(&self) -> Arc<Catalog> {
        Arc::new(
            Catalog::new(
                self.tracker.forest().clone(),
                Arc::clone(&self.db),
                ALG,
                vec![self.doc, self.doc2],
            )
            .with_signer(Arc::clone(&self.signer)),
        )
    }

    /// An ID guaranteed absent from the shard (only `doc`/`doc2` bear
    /// records).
    fn absent(&self) -> ObjectId {
        ObjectId(self.doc.raw().max(self.doc2.raw()) + 101)
    }

    /// The shard members, ascending — what a complete range answer over
    /// everything must return.
    fn members(&self) -> Vec<ObjectId> {
        let mut m = vec![self.doc, self.doc2];
        m.sort_unstable_by_key(|o| o.raw());
        m
    }
}

#[test]
fn omission_in_memory_surface_detects_every_attack() {
    let a = omission_history(5, 1000);
    let tree = shard_tree_of(ALG, &a.db);
    let log_records = a.db.len() as u64;
    let root = SignedRoot::sign(&tree, log_records, &a.signer).unwrap();
    let absent = a.absent();
    let (lo, hi) = (ObjectId(0), absent);

    // Controls: an honest denial and an honest range answer verify clean.
    let reg = Registry::new();
    let mut verifier = Verifier::new(&a.keys, ALG);
    verifier.attach_obs(&reg);
    let honest = SignedDenial {
        root: root.clone(),
        proof: DenialProof::prove(&tree, absent).unwrap(),
    };
    assert!(verifier.verify_denial(&honest).verified());
    let range = SignedRange {
        root: root.clone(),
        proof: RangeProof::prove(&tree, lo, hi),
    };
    assert!(verifier.verify_range(&range, &a.members()).verified());
    assert_evidence_counters(&reg, &[], "honest denial + range (in-memory)");

    // Omission attack: deny an object the shard does hold, forged from
    // the honest witnesses around a neighbouring gap.
    let ctx = "deny existing object (in-memory)";
    let reg = Registry::new();
    let mut verifier = Verifier::new(&a.keys, ALG);
    verifier.attach_obs(&reg);
    let mut forged = DenialProof::prove(&tree, absent).unwrap();
    forged.absent = a.doc;
    let v = verifier.verify_denial(&SignedDenial {
        root: root.clone(),
        proof: forged,
    });
    assert_eq!(
        v.issues,
        vec![TamperEvidence::ForgedDenial { oid: a.doc }],
        "{ctx}"
    );
    assert_evidence_counters(&reg, &v.issues, ctx);

    // Omission attack: withhold a proven range member.
    let ctx = "withhold range member (in-memory)";
    let reg = Registry::new();
    let mut verifier = Verifier::new(&a.keys, ALG);
    verifier.attach_obs(&reg);
    let v = verifier.verify_range(&range, &a.members()[..1]);
    assert_eq!(
        v.issues,
        vec![TamperEvidence::IncompleteResponse { lo, hi }],
        "{ctx}"
    );
    assert_evidence_counters(&reg, &v.issues, ctx);

    // Its dual: pad the answer with a member the proof never covered.
    let ctx = "pad range answer (in-memory)";
    let reg = Registry::new();
    let mut verifier = Verifier::new(&a.keys, ALG);
    verifier.attach_obs(&reg);
    let mut padded = a.members();
    padded.push(absent);
    let v = verifier.verify_range(&range, &padded);
    assert_eq!(
        v.issues,
        vec![TamperEvidence::ForgedDenial { oid: absent }],
        "{ctx}"
    );
    assert_evidence_counters(&reg, &v.issues, ctx);

    // Omission attack: serve pre-compaction stale state — a same-length
    // twin history whose record at a sealed-and-anchored slot was
    // rewritten. The twin verifies clean on its own; only the checkpoint
    // exposes the swap.
    let sealed = Checkpoint::capture(ALG, &a.db, 0).seal(&a.signer).unwrap();
    let reg = Registry::new();
    let mut verifier = Verifier::new(&a.keys, ALG);
    verifier.attach_obs(&reg);
    let v =
        verifier.verify_through_checkpoint(&a.doc_hash, &collect(&a.db, a.doc).unwrap(), &sealed);
    assert!(
        v.verified(),
        "honest state through checkpoint: {:?}",
        v.issues
    );
    assert_evidence_counters(&reg, &[], "honest state through checkpoint");

    let ctx = "stale state under sealed checkpoint (in-memory)";
    let twin = omission_history(5, 2000);
    let stale = collect(&twin.db, twin.doc).unwrap();
    let anchored_seq = a.db.records_for(a.doc).len() as u64 - 1;
    let reg = Registry::new();
    let mut verifier = Verifier::new(&a.keys, ALG);
    verifier.attach_obs(&reg);
    assert!(
        verifier.verify(&twin.doc_hash, &stale).verified(),
        "the twin must be internally clean — only the checkpoint catches it"
    );
    let v = verifier.verify_through_checkpoint(&twin.doc_hash, &stale, &sealed);
    assert_eq!(
        v.issues,
        vec![TamperEvidence::CheckpointMismatch {
            oid: a.doc,
            seq: anchored_seq,
        }],
        "{ctx}"
    );
    // The clean twin verify above recorded nothing; the counters must
    // account for exactly the checkpoint mismatch.
    assert_evidence_counters(&reg, &v.issues, ctx);
}

#[test]
fn omission_wire_surface_detects_every_attack() {
    let w = omission_history(5, 1000);
    let tree = shard_tree_of(ALG, &w.db);
    let log_records = w.db.len() as u64;
    let absent = w.absent();
    let (lo, hi) = (ObjectId(0), absent);
    let server_reg = Registry::new();
    let srv = serve_with_registry(
        w.catalog(),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
        server_reg.clone(),
    )
    .unwrap();

    // Control: a miss is an authenticated denial the client verifies and
    // accepts as terminal — with zero evidence recorded.
    let reg = Registry::new();
    let mut client = Client::new(srv.addr(), ClientConfig::new(ALG));
    client.attach_obs(&reg);
    match client.fetch_verified(absent, &w.keys) {
        Err(NetError::Denied {
            oid,
            log_records: at,
        }) => {
            assert_eq!(oid, absent);
            assert_eq!(at, log_records, "denial must attest the log high-water");
        }
        other => panic!("honest wire denial: expected Denied, got {other:?}"),
    }
    assert_evidence_counters(&reg, &[], "honest wire denial");

    // Omission attack: deny an existing object — a path attacker swaps
    // the object's stream for a *genuine* denial replayed from an absent
    // ID. The denial verifies; it just doesn't answer the question.
    let ctx = "deny existing object (wire)";
    let replay = SignedDenial {
        root: SignedRoot::sign(&tree, log_records, &w.signer).unwrap(),
        proof: DenialProof::prove(&tree, absent).unwrap(),
    }
    .to_bytes();
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(move |_frame, msg| {
            if matches!(msg, Message::Prov { .. }) {
                ProxyAction::Replace(Message::Denial {
                    proof: replay.clone(),
                })
            } else {
                ProxyAction::Forward
            }
        }),
    )
    .unwrap();
    let reg = Registry::new();
    let mut client = Client::new(proxy.addr(), ClientConfig::new(ALG));
    client.attach_obs(&reg);
    match client.fetch_verified(w.doc, &w.keys) {
        Err(NetError::TamperDetected { issues, .. }) => {
            assert_eq!(
                issues,
                vec![TamperEvidence::ForgedDenial { oid: w.doc }],
                "{ctx}"
            );
            assert_evidence_counters(&reg, &issues, ctx);
        }
        other => panic!("{ctx}: expected TamperDetected, got {other:?}"),
    }
    proxy.shutdown();

    // Omission attack: mutate an honest denial in flight — caught as a
    // forgery against the requested ID, whichever byte was damaged.
    let ctx = "mutated denial (wire)";
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(|_frame, msg| {
            let Message::Denial { proof } = msg else {
                return ProxyAction::Forward;
            };
            let mut proof = proof.clone();
            let last = proof.len() - 1;
            proof[last] ^= 0x01;
            ProxyAction::Replace(Message::Denial { proof })
        }),
    )
    .unwrap();
    let reg = Registry::new();
    let mut client = Client::new(proxy.addr(), ClientConfig::new(ALG));
    client.attach_obs(&reg);
    match client.fetch_verified(absent, &w.keys) {
        Err(NetError::TamperDetected { issues, .. }) => {
            assert_eq!(
                issues,
                vec![TamperEvidence::ForgedDenial { oid: absent }],
                "{ctx}"
            );
            assert_evidence_counters(&reg, &issues, ctx);
        }
        other => panic!("{ctx}: expected TamperDetected, got {other:?}"),
    }
    proxy.shutdown();

    // Control: the honest range lists every member, completeness-proven.
    let reg = Registry::new();
    let mut client = Client::new(srv.addr(), ClientConfig::new(ALG));
    client.attach_obs(&reg);
    let report = client.range(lo, hi, &w.keys).unwrap();
    assert_eq!(report.members, w.members());
    assert_eq!(report.log_records, log_records);
    assert_evidence_counters(&reg, &[], "honest wire range");

    // Omission attack: withhold a range match in flight.
    let ctx = "withhold range member (wire)";
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(|_frame, msg| {
            let Message::RangeResp { oids, proof } = msg else {
                return ProxyAction::Forward;
            };
            let mut oids = oids.clone();
            oids.pop();
            ProxyAction::Replace(Message::RangeResp {
                oids,
                proof: proof.clone(),
            })
        }),
    )
    .unwrap();
    let reg = Registry::new();
    let mut client = Client::new(proxy.addr(), ClientConfig::new(ALG));
    client.attach_obs(&reg);
    match client.range(lo, hi, &w.keys) {
        Err(NetError::TamperDetected { issues, .. }) => {
            assert_eq!(
                issues,
                vec![TamperEvidence::IncompleteResponse { lo, hi }],
                "{ctx}"
            );
            assert_evidence_counters(&reg, &issues, ctx);
        }
        other => panic!("{ctx}: expected TamperDetected, got {other:?}"),
    }
    proxy.shutdown();

    // Its dual: pad the answer with an unproven member.
    let ctx = "pad range answer (wire)";
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(move |_frame, msg| {
            let Message::RangeResp { oids, proof } = msg else {
                return ProxyAction::Forward;
            };
            let mut oids = oids.clone();
            oids.push(absent);
            ProxyAction::Replace(Message::RangeResp {
                oids,
                proof: proof.clone(),
            })
        }),
    )
    .unwrap();
    let reg = Registry::new();
    let mut client = Client::new(proxy.addr(), ClientConfig::new(ALG));
    client.attach_obs(&reg);
    match client.range(lo, hi, &w.keys) {
        Err(NetError::TamperDetected { issues, .. }) => {
            assert_eq!(
                issues,
                vec![TamperEvidence::ForgedDenial { oid: absent }],
                "{ctx}"
            );
            assert_evidence_counters(&reg, &issues, ctx);
        }
        other => panic!("{ctx}: expected TamperDetected, got {other:?}"),
    }
    proxy.shutdown();

    // The server's own ledger of what it proved: two signed denials (the
    // honest control and the one mutated in flight — the replayed-denial
    // case streamed `doc` normally) and three proven range answers.
    assert_eq!(server_reg.counter_value(names::NET_DENIALS), 2);
    assert_eq!(server_reg.counter_value(names::NET_RANGE_REQUESTS), 3);
    srv.shutdown();
}

/// Binds a server on an exact (recently freed) address, retrying while
/// the OS releases the old listener.
fn serve_at(catalog: Arc<Catalog>, addr: SocketAddr) -> ServerHandle {
    for _ in 0..50 {
        match serve(Arc::clone(&catalog), addr, ServerConfig::default()) {
            Ok(h) => return h,
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    panic!("could not rebind {addr}");
}

/// Omission across replication: a replica pins the primary's signed root
/// high-water; a primary later serving a pre-compaction rollback — fewer
/// cumulative log records under a validly signed root — is terminal
/// `CheckpointMismatch` evidence, and the pin never regresses.
#[test]
fn omission_replica_surface_detects_stale_root() {
    let a = omission_history(5, 1000);
    let rolled = omission_history(3, 3);
    assert_eq!(
        shard_tree_of(ALG, &rolled.db).leaf_count(),
        shard_tree_of(ALG, &a.db).leaf_count(),
        "the rollback must look like the same shard, just older"
    );

    let srv = serve(
        a.catalog(),
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = srv.addr();

    let vfs = FaultVfs::new(FaultConfig::default());
    let db =
        Arc::new(ProvenanceDb::durable_with(vfs.clone(), Path::new("/om-replica.teplog")).unwrap());
    let reg = Registry::new();
    let mut repl = Replica::new(
        addr,
        ReplicaConfig::new(ALG),
        db,
        vfs.clone(),
        PathBuf::from("/om-ckpt"),
    );
    repl.attach_obs(&reg);

    // Control: honest sync pins the attested high-water, evidence-free.
    repl.catch_up(&a.keys).unwrap();
    let ae = repl.anti_entropy(&a.keys).unwrap();
    assert_eq!(ae.status, AeStatus::Converged);
    assert_eq!(repl.pinned_log_records(), a.db.len() as u64);
    assert_evidence_counters(&reg, &[], "honest replica sync");
    srv.shutdown();

    // The primary "restores from backup": same signer, same objects, two
    // fewer records — rebound on the same address, so to the replica it
    // IS its primary, with excised history resurrected.
    let srv = serve_at(rolled.catalog(), addr);
    let err = repl.anti_entropy(&a.keys).unwrap_err();
    match &err {
        NetError::TamperDetected { issues, .. } => {
            assert_eq!(
                *issues,
                vec![TamperEvidence::CheckpointMismatch {
                    oid: ObjectId(0),
                    seq: rolled.db.len() as u64,
                }],
                "replica stale root"
            );
            assert_evidence_counters(&reg, issues, "replica stale root");
        }
        other => panic!("replica stale root: expected TamperDetected, got {other}"),
    }
    assert_eq!(
        repl.pinned_log_records(),
        a.db.len() as u64,
        "a rejected stale root must not move the pin"
    );
    srv.shutdown();
}

// ---------------------------------------------------------------------------
// Surface 6: cross-tenant replay — tenant A's genuine artifacts presented
// inside tenant B's scope
// ---------------------------------------------------------------------------

/// Two tenants with PKI-minted signers and independent shards, each
/// holding a 5-record chain built by the *same* deterministic recipe — so
/// the two chains carry identical object ids and seq numbers, and a
/// replayed record from A aligns perfectly with its slot in B. The
/// perfectly aligned replay is the strongest form of the attack: nothing
/// structural gives it away, only the signature scope can. Tenant A also
/// holds a second chain (`extra_a`) at an id unused in B's scope — the
/// storage-replay vector, since the store's duplicate-slot collapse keeps
/// the first record per `(oid, seq)` and would silently shadow a
/// colliding replay.
struct TenantReplayWorld {
    dir: tepdb::core::tenant::TenantDirectory,
    shards: tepdb::storage::TenantShards,
    forest_a: Forest,
    forest_b: Forest,
    chain_a: ObjectId,
    chain_b: ObjectId,
    extra_a: ObjectId,
}

const TEN_A: tepdb::model::TenantId = tepdb::model::TenantId(1);
const TEN_B: tepdb::model::TenantId = tepdb::model::TenantId(2);

fn tenant_replay_world() -> TenantReplayWorld {
    use tepdb::core::tenant::TenantDirectory;
    use tepdb::storage::TenantShards;

    let mut rng = StdRng::seed_from_u64(0x7E42_C04F);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let mut dir = TenantDirectory::new(&ca);
    dir.mint(&ca, TEN_A, 512, &mut rng);
    dir.mint(&ca, TEN_B, 512, &mut rng);
    let shards = TenantShards::open_with(
        "/replay-matrix",
        vec![
            (TEN_A, FaultVfs::new(FaultConfig::default()) as Arc<dyn Vfs>),
            (TEN_B, FaultVfs::new(FaultConfig::default()) as Arc<dyn Vfs>),
        ],
    );
    let populate = |tenant, extra: bool| {
        let signer = dir.signer(tenant).unwrap();
        let db = shards.shard(tenant).unwrap();
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                ..Default::default()
            },
            Arc::clone(&db),
        );
        let (chain, _) = tracker.insert(&signer, Value::Int(0), None).unwrap();
        for i in 1..5 {
            tracker.update(&signer, chain, Value::Int(i)).unwrap();
        }
        let extra_chain = extra.then(|| {
            let (e, _) = tracker.insert(&signer, Value::Int(100), None).unwrap();
            tracker.update(&signer, e, Value::Int(101)).unwrap();
            e
        });
        db.sync().unwrap();
        (tracker.forest().clone(), chain, extra_chain)
    };
    let (forest_a, chain_a, extra_a) = populate(TEN_A, true);
    let (forest_b, chain_b, _) = populate(TEN_B, false);
    // Identical recipes ⇒ identical ids: the replay aligns slot-for-slot.
    assert_eq!(chain_a.raw(), chain_b.raw());
    TenantReplayWorld {
        dir,
        shards,
        forest_a,
        forest_b,
        chain_a,
        chain_b,
        extra_a: extra_a.unwrap(),
    }
}

/// The tenant-labeled mirror of [`assert_evidence_counters`]: `tenant`'s
/// per-kind ledger must equal exactly the issues attributed to it.
fn assert_tenant_evidence_counters(
    reg: &Registry,
    tenant: tepdb::model::TenantId,
    issues: &[TamperEvidence],
    ctx: &str,
) {
    let mut want: HashMap<EvidenceKind, u64> = HashMap::new();
    for issue in issues {
        *want.entry(issue.kind()).or_insert(0) += 1;
    }
    for kind in EvidenceKind::ALL {
        assert_eq!(
            reg.counter_value(&names::with_tenant(&kind.counter_name(), tenant.raw())),
            want.get(&kind).copied().unwrap_or(0),
            "{ctx}: tenant {} `{kind}` counter does not match reported evidence",
            tenant.label(),
        );
    }
}

/// Storage form: A's rows for a chain B has never seen, appended
/// byte-for-byte into B's shard (colliding slots would be shadowed by the
/// store's first-wins collapse and never reach a verifier). The federated
/// verify must attribute every replayed record in B's scope (A's signer
/// has no certificate there), leave A's own report clean, and keep the
/// per-tenant evidence ledgers exact.
#[test]
fn cross_tenant_replay_storage_surface_attributes_never_accepts() {
    use tepdb::core::tenant::federated_verify;

    let w = tenant_replay_world();
    let a = w.shards.shard(TEN_A).unwrap();
    let b = w.shards.shard(TEN_B).unwrap();
    for rec in a.records_for(w.extra_a) {
        b.append(rec.clone()).unwrap();
    }

    let ctx = "cross-tenant replay (storage)";
    let reg = Registry::new();
    let report = federated_verify(&w.dir, &w.shards, |_, _| None, Some(&reg));
    let ta = report.tenant(TEN_A).unwrap();
    let tb = report.tenant(TEN_B).unwrap();
    assert!(
        ta.verified(),
        "{ctx}: A's own scope must stay clean: {:?}",
        ta.issues
    );
    assert!(
        !tb.verified(),
        "{ctx}: replay must not be accepted in B's scope"
    );
    assert!(
        tb.issues
            .iter()
            .any(|i| i.kind() == EvidenceKind::UnknownParticipant),
        "{ctx}: replayed records must be unattributable in B's scope: {:?}",
        tb.issues,
    );
    assert_tenant_evidence_counters(&reg, TEN_B, &tb.issues, ctx);
    assert_tenant_evidence_counters(&reg, TEN_A, &[], ctx);
}

/// Wire form: both tenants served from their shards; a path attacker
/// splices tenant A's genuine signed records into tenant B's stream,
/// slot-for-slot. B's client verifies under B's key directory and must
/// attribute every record — the strongest replay (structurally perfect,
/// cryptographically genuine, only mis-scoped) is still caught.
#[test]
fn cross_tenant_replay_wire_surface_attributes_never_accepts() {
    use tepdb::net::{serve_tenants, TenantSpec};

    let w = tenant_replay_world();
    let replayed = collect(&w.shards.shard(TEN_A).unwrap(), w.chain_a).unwrap();
    let srv = serve_tenants(
        vec![
            TenantSpec::new(
                TEN_A,
                Arc::new(Catalog::new(
                    w.forest_a.clone(),
                    w.shards.shard(TEN_A).unwrap(),
                    ALG,
                    vec![w.chain_a],
                )),
            ),
            TenantSpec::new(
                TEN_B,
                Arc::new(Catalog::new(
                    w.forest_b.clone(),
                    w.shards.shard(TEN_B).unwrap(),
                    ALG,
                    vec![w.chain_b],
                )),
            ),
        ],
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default(),
        Registry::new(),
    )
    .unwrap();

    let ctx = "cross-tenant replay (wire)";
    let proxy = TamperProxy::spawn(srv.addr(), replay_mutator(replayed)).unwrap();
    let reg = Registry::new();
    let mut client = Client::new(proxy.addr(), ClientConfig::for_tenant(ALG, TEN_B));
    client.attach_obs(&reg);
    match client.fetch_verified(w.chain_b, w.dir.keys(TEN_B).unwrap()) {
        Err(NetError::TamperDetected { issues, .. }) => {
            assert!(
                issues
                    .iter()
                    .any(|i| i.kind() == EvidenceKind::UnknownParticipant),
                "{ctx}: expected UnknownParticipant among {issues:?}",
            );
            assert_evidence_counters(&reg, &issues, ctx);
        }
        other => panic!("{ctx}: expected TamperDetected, got {other:?}"),
    }
    proxy.shutdown();

    // Denial replay: tenant A's *genuinely signed* denial spliced into
    // B's stream in place of the records. Valid under A's keys, a forgery
    // under B's — exactly what scoped key directories exist to catch.
    let ctx = "cross-tenant denial replay (wire)";
    let a_db = w.shards.shard(TEN_A).unwrap();
    let tree = shard_tree_of(ALG, &a_db);
    let absent = ObjectId(w.chain_a.raw() + 101);
    let replay = SignedDenial {
        root: SignedRoot::sign(&tree, a_db.len() as u64, &w.dir.signer(TEN_A).unwrap()).unwrap(),
        proof: DenialProof::prove(&tree, absent).unwrap(),
    }
    .to_bytes();
    let proxy = TamperProxy::spawn(
        srv.addr(),
        Box::new(move |_frame, msg| {
            if matches!(msg, Message::Prov { .. }) {
                ProxyAction::Replace(Message::Denial {
                    proof: replay.clone(),
                })
            } else {
                ProxyAction::Forward
            }
        }),
    )
    .unwrap();
    let reg = Registry::new();
    let mut client = Client::new(proxy.addr(), ClientConfig::for_tenant(ALG, TEN_B));
    client.attach_obs(&reg);
    match client.fetch_verified(w.chain_b, w.dir.keys(TEN_B).unwrap()) {
        Err(NetError::TamperDetected { issues, .. }) => {
            assert_eq!(
                issues,
                vec![TamperEvidence::ForgedDenial { oid: w.chain_b }],
                "{ctx}"
            );
            assert_evidence_counters(&reg, &issues, ctx);
        }
        other => panic!("{ctx}: expected TamperDetected, got {other:?}"),
    }
    proxy.shutdown();

    // Control: both tenants' honest fetches verify clean in their own
    // scopes on the same server.
    for (tenant, chain) in [(TEN_A, w.chain_a), (TEN_B, w.chain_b)] {
        let reg = Registry::new();
        let mut client = Client::new(srv.addr(), ClientConfig::for_tenant(ALG, tenant));
        client.attach_obs(&reg);
        let rep = client
            .fetch_verified(chain, w.dir.keys(tenant).unwrap())
            .unwrap_or_else(|e| panic!("honest fetch for {}: {e}", tenant.label()));
        assert!(rep.verification.verified());
        assert_evidence_counters(&reg, &[], "honest tenant-scoped fetch");
    }
    srv.shutdown();
}
