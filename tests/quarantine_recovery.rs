//! End-to-end corruption quarantine: a damaged interior frame in the
//! durable provenance log must NOT fail the open (the pre-quarantine
//! behaviour was a hard `InteriorCorruption` error). Instead the store
//! opens degraded, the damaged range is excised into the `.quarantine`
//! sidecar, the surviving records load, and the Verifier reports the gap
//! as chain-continuity tamper evidence (R2/R3) attributed to quarantined
//! storage.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tepdb::core::{collect, TamperEvidence, Verifier};
use tepdb::prelude::*;
use tepdb::storage::{quarantine_path, AppendLog, ProvenanceDb};

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

fn signer_and_keys() -> (Participant, KeyDirectory) {
    let mut rng = StdRng::seed_from_u64(41);
    let ca = CertificateAuthority::new(512, ALG, &mut rng);
    let p = ca.enroll(ParticipantId(1), 512, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    keys.register(p.certificate().clone()).unwrap();
    (p, keys)
}

struct Cleanup(PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
        let _ = fs::remove_file(quarantine_path(&self.0));
    }
}

/// Byte ranges `(start, end)` of each CRC frame in a log file, walked
/// from the 12-byte header using the length prefixes.
fn frame_ranges(path: &Path) -> Vec<(usize, usize)> {
    let bytes = fs::read(path).unwrap();
    let mut ranges = Vec::new();
    let mut at = 12usize;
    while at + 8 <= bytes.len() {
        let len = u32::from_be_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let end = at + 8 + len;
        assert!(end <= bytes.len(), "walked past EOF: log malformed?");
        ranges.push((at, end));
        at = end;
    }
    ranges
}

fn flip_byte(path: &Path, offset: usize) {
    let mut bytes = fs::read(path).unwrap();
    bytes[offset] ^= 0xFF;
    fs::write(path, &bytes).unwrap();
}

#[test]
fn interior_corruption_quarantines_and_verifier_reports_the_gap() {
    let (signer, keys) = signer_and_keys();
    let path = std::env::temp_dir().join(format!(
        "tepdb-quarantine-{}-{}.teplog",
        std::process::id(),
        line!()
    ));
    let _ = fs::remove_file(&path);
    let _cleanup = Cleanup(path.clone());

    // Session 1: one object, three records (insert + two updates), synced.
    let obj;
    {
        let db = Arc::new(ProvenanceDb::durable(&path).unwrap());
        let mut tracker = ProvenanceTracker::new(
            TrackerConfig {
                alg: ALG,
                ..Default::default()
            },
            Arc::clone(&db),
        );
        let (o, _) = tracker.insert(&signer, Value::Int(1), None).unwrap();
        tracker.update(&signer, o, Value::Int(2)).unwrap();
        tracker.update(&signer, o, Value::Int(3)).unwrap();
        db.sync().unwrap();
        obj = o;
    }

    // The medium damages the MIDDLE record (seq 1) — interior corruption,
    // not a torn tail.
    let ranges = frame_ranges(&path);
    assert_eq!(ranges.len(), 3);
    let (start, end) = ranges[1];
    flip_byte(&path, start + 8 + (end - start - 8) / 2);

    // Session 2: the open SUCCEEDS — degraded, not dead.
    let db = ProvenanceDb::durable(&path).unwrap();
    let report = db.recovery();
    assert!(report.is_degraded(), "report: {report:?}");
    assert_eq!(report.gaps.len(), 1);
    assert_eq!(report.quarantined_bytes, (end - start) as u64);
    assert!(
        quarantine_path(&path).exists(),
        "corrupt bytes must be preserved in the sidecar"
    );

    // Surviving records load: seq 0 and seq 2, byte-identical.
    let seqs: Vec<u64> = db.all_records().iter().map(|r| r.seq_id).collect();
    assert_eq!(seqs, vec![0, 2]);

    // The Verifier turns the gap into chain-continuity tamper evidence.
    let prov = collect(&db, obj).unwrap();
    let hash = prov.latest().unwrap().output_hash.clone();
    let v = Verifier::new(&keys, ALG).verify_recovered(&hash, &prov, &report);
    assert!(!v.verified(), "a damaged history must never verify clean");
    assert!(
        v.issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::BrokenChain { .. })
                || matches!(i, TamperEvidence::MissingRecord { .. })),
        "the missing record must surface as R2/R3 evidence: {:?}",
        v.issues
    );
    assert!(
        v.issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::StorageQuarantine { gaps: 1, .. })),
        "the gap must be attributed to quarantined storage: {:?}",
        v.issues
    );

    // Recovery is terminal: a third open is clean (the damage now lives in
    // the sidecar), and the surviving history still shows the break.
    drop(db);
    let db = ProvenanceDb::durable(&path).unwrap();
    assert!(!db.recovery().is_degraded());
    assert_eq!(db.len(), 2);
}

#[test]
fn append_log_open_no_longer_errors_on_interior_corruption() {
    // Regression guard for the old behaviour: `AppendLog::open` used to
    // fail hard (`InteriorCorruption`) when a valid frame followed a
    // corrupt one. It must now quarantine and succeed.
    let path = std::env::temp_dir().join(format!(
        "tepdb-quarantine-{}-{}.teplog",
        std::process::id(),
        line!()
    ));
    let _ = fs::remove_file(&path);
    let _cleanup = Cleanup(path.clone());

    let mut log = AppendLog::create(&path).unwrap();
    log.append(b"kept-one").unwrap();
    log.append(b"damaged-by-the-medium").unwrap();
    log.append(b"kept-two").unwrap();
    log.sync().unwrap();
    drop(log);

    let ranges = frame_ranges(&path);
    flip_byte(&path, ranges[1].0 + 8);

    let rec = AppendLog::open(&path).expect("interior corruption is quarantined, not an error");
    assert_eq!(
        rec.payloads,
        vec![b"kept-one".to_vec(), b"kept-two".to_vec()]
    );
    assert_eq!(rec.gaps.len(), 1);
    assert!(rec.quarantined_bytes > 0);
}
