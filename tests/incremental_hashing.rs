//! Property tests for the incremental (dirty-log) subtree-hash cache and
//! the parallel crypto pipeline.
//!
//! The economical strategy's entire correctness burden is "a synced cache
//! is indistinguishable from recomputing every hash from scratch" — these
//! tests drive arbitrary operation sequences through a [`Forest`] +
//! [`HashCache`] pair and check that equivalence after every single
//! mutation, plus the batch pipeline's bit-equality with serial signing.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use tepdb::core::{subtree_hash, HashCache, HashingStrategy};
use tepdb::model::ObjectId;
use tepdb::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

/// An abstract mutation for generated forest histories.
#[derive(Clone, Debug)]
enum FOp {
    Insert {
        parent_choice: usize,
        value: i64,
    },
    Update {
        target_choice: usize,
        value: i64,
    },
    Delete {
        target_choice: usize,
    },
    Aggregate {
        a_choice: usize,
        b_choice: usize,
        copy: bool,
    },
}

fn f_op() -> impl Strategy<Value = FOp> {
    prop_oneof![
        3 => (any::<usize>(), any::<i64>()).prop_map(|(p, v)| FOp::Insert {
            parent_choice: p,
            value: v
        }),
        3 => (any::<usize>(), any::<i64>()).prop_map(|(t, v)| FOp::Update {
            target_choice: t,
            value: v
        }),
        2 => any::<usize>().prop_map(|t| FOp::Delete { target_choice: t }),
        1 => (any::<usize>(), any::<usize>(), any::<bool>()).prop_map(|(a, b, copy)| {
            FOp::Aggregate {
                a_choice: a,
                b_choice: b,
                copy,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every mutation, syncing the dirty log and reading any root
    /// from the warm cache gives exactly the hash a from-scratch recompute
    /// gives — for arbitrary interleavings of inserts, updates, deletes and
    /// aggregations (both modes).
    #[test]
    fn cached_hashes_equal_full_recompute(ops in prop::collection::vec(f_op(), 1..32)) {
        let mut f = Forest::new();
        let mut cache = HashCache::new(ALG);
        let seed_root = f.insert(Value::Int(0), None).unwrap();
        let mut live: Vec<ObjectId> = vec![seed_root];

        for op in &ops {
            match op {
                FOp::Insert { parent_choice, value } => {
                    let parent = if parent_choice % 4 == 0 {
                        None
                    } else {
                        Some(live[parent_choice % live.len()])
                    };
                    let id = f.insert(Value::Int(*value), parent).unwrap();
                    live.push(id);
                }
                FOp::Update { target_choice, value } => {
                    let target = live[target_choice % live.len()];
                    f.update(target, Value::Int(*value)).unwrap();
                }
                FOp::Delete { target_choice } => {
                    let target = live[target_choice % live.len()];
                    if target != live[0]
                        && f.node(target).is_some_and(|n| n.is_leaf())
                    {
                        f.delete(target).unwrap();
                        live.retain(|&id| id != target);
                    }
                }
                FOp::Aggregate { a_choice, b_choice, copy } => {
                    let a = live[a_choice % live.len()];
                    let b = live[b_choice % live.len()];
                    if a == b
                        || f.ancestors(a).contains(&b)
                        || f.ancestors(b).contains(&a)
                    {
                        continue;
                    }
                    let mode = if *copy {
                        AggregateMode::CopySubtrees
                    } else {
                        AggregateMode::Atomic
                    };
                    let id = f.aggregate(&[a, b], Value::Int(-1), mode).unwrap();
                    live.push(id);
                }
            }

            // The incremental step: drain dirty marks, then every root's
            // cached hash must equal an independent full recompute.
            cache.sync(&mut f);
            let roots: Vec<ObjectId> = f.roots().collect();
            for r in roots {
                let cached = cache.get_or_compute(&f, r);
                prop_assert_eq!(cached, subtree_hash(ALG, &f, r));
            }
            prop_assert!(f.dirty_marks().is_empty());
        }
    }
}

struct SignerWorld {
    signer: Participant,
}

fn signer_world() -> &'static SignerWorld {
    static WORLD: OnceLock<SignerWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xD1B7);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        SignerWorld {
            signer: ca.enroll(ParticipantId(1), 512, &mut rng),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `record_batch` with any worker count produces a provenance store
    /// byte-identical to the serial `complex` path.
    #[test]
    fn parallel_batch_signing_is_bit_identical(
        vals in prop::collection::vec(any::<i64>(), 1..10),
        threads in 2usize..6,
    ) {
        let w = signer_world();
        let run = |parallel: Option<usize>| {
            let mut t = ProvenanceTracker::new(
                TrackerConfig { alg: ALG, strategy: HashingStrategy::Economical },
                Arc::new(ProvenanceDb::in_memory()),
            );
            let (root, _) = t.insert(&w.signer, Value::text("db"), None).unwrap();
            let cells: Vec<ObjectId> = vals
                .iter()
                .map(|&v| t.insert(&w.signer, Value::Int(v), Some(root)).unwrap().0)
                .collect();
            let ops: Vec<PrimitiveOp> = cells
                .iter()
                .zip(&vals)
                .map(|(&c, &v)| PrimitiveOp::Update { id: c, value: Value::Int(v ^ 1) })
                .collect();
            match parallel {
                Some(n) => t.record_batch(&w.signer, &ops, n).unwrap(),
                None => t.complex(&w.signer, &ops).unwrap(),
            };
            t.db().all_records()
        };
        prop_assert_eq!(run(None), run(Some(threads)));
    }
}
