//! End-to-end verification of the paper's security guarantees **R1–R8**
//! (§2.2), for atomic objects, compound objects, and non-linear
//! (aggregation) provenance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::sync::OnceLock;
use tepdb::core::attack::{apply_tamper, collusion_splice, forge_insertion, Tamper};
use tepdb::core::{collect, hash_atom, AtomicLedger, TamperEvidence, Verifier};
use tepdb::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

struct World {
    ca: CertificateAuthority,
    alice: Participant,
    bob: Participant,
    carol: Participant,
    keys: KeyDirectory,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0x5EC5);
        let ca = CertificateAuthority::new(512, ALG, &mut rng);
        let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
        let bob = ca.enroll(ParticipantId(2), 512, &mut rng);
        let carol = ca.enroll(ParticipantId(3), 512, &mut rng);
        let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
        for p in [&alice, &bob, &carol] {
            keys.register(p.certificate().clone()).unwrap();
        }
        World {
            ca,
            alice,
            bob,
            carol,
            keys,
        }
    })
}

/// Atomic history: alice insert, bob update, alice update, bob update.
fn atomic_history() -> (AtomicLedger, tepdb::model::ObjectId) {
    let w = world();
    let mut ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
    let doc = ledger.insert(&w.alice, Value::Int(0)).unwrap();
    ledger.update(&w.bob, doc, Value::Int(1)).unwrap();
    ledger.update(&w.alice, doc, Value::Int(2)).unwrap();
    ledger.update(&w.bob, doc, Value::Int(3)).unwrap();
    (ledger, doc)
}

/// Compound history on a depth-4 tree with aggregation at the end.
fn compound_history() -> (ProvenanceTracker, tepdb::model::ObjectId) {
    let w = world();
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );
    let (root, _) = tracker.insert(&w.alice, Value::text("db"), None).unwrap();
    let (table, _) = tracker
        .insert(&w.alice, Value::text("t"), Some(root))
        .unwrap();
    let (row1, _) = tracker.insert(&w.bob, Value::Null, Some(table)).unwrap();
    let (row2, _) = tracker.insert(&w.bob, Value::Null, Some(table)).unwrap();
    tracker.insert(&w.bob, Value::Int(10), Some(row1)).unwrap();
    tracker
        .insert(&w.carol, Value::Int(20), Some(row2))
        .unwrap();
    let (cell, _) = tracker
        .insert(&w.carol, Value::Int(30), Some(row2))
        .unwrap();
    tracker.update(&w.alice, cell, Value::Int(31)).unwrap();
    let (agg, _) = tracker
        .aggregate(
            &w.carol,
            &[row1, row2],
            Value::text("report"),
            AggregateMode::CopySubtrees,
        )
        .unwrap();
    (tracker, agg)
}

#[test]
fn r1_record_contents_cannot_be_modified() {
    let w = world();
    let (ledger, doc) = atomic_history();
    let clean = ledger.provenance_of(doc).unwrap();
    let hash = ledger.object_hash(doc).unwrap();
    for seq in 0..=3u64 {
        let mut p = clean.clone();
        assert!(apply_tamper(
            &mut p,
            &Tamper::FlipOutputHash { oid: doc, seq }
        ));
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &p);
        assert!(!v.verified(), "output-hash tamper at seq {seq} undetected");
    }
    for seq in 1..=3u64 {
        let mut p = clean.clone();
        assert!(apply_tamper(
            &mut p,
            &Tamper::FlipInputHash {
                oid: doc,
                seq,
                input: 0
            }
        ));
        assert!(!Verifier::new(&w.keys, ALG).verify(&hash, &p).verified());
    }
}

#[test]
fn r2_records_cannot_be_removed() {
    let w = world();
    let (ledger, doc) = atomic_history();
    let clean = ledger.provenance_of(doc).unwrap();
    let hash = ledger.object_hash(doc).unwrap();
    // Removing ANY record (head, middle, tail) must be detected.
    for seq in 0..=3u64 {
        let mut p = clean.clone();
        assert!(apply_tamper(&mut p, &Tamper::Remove { oid: doc, seq }));
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &p);
        assert!(!v.verified(), "removal of seq {seq} undetected");
    }
}

#[test]
fn r3_records_cannot_be_inserted_except_most_recent() {
    let w = world();
    let (ledger, doc) = atomic_history();
    let clean = ledger.provenance_of(doc).unwrap();
    let hash = ledger.object_hash(doc).unwrap();

    // Insertion at an interior slot → fork detected.
    let mut p = clean.clone();
    forge_insertion(&mut p, ALG, &w.carol, doc, 2, vec![0u8; 32]).unwrap();
    assert!(!Verifier::new(&w.keys, ALG).verify(&hash, &p).verified());

    // Footnote 5: appending a NEW most-recent record is always possible for
    // a participant — but then the data object must match it (R4), so an
    // append that does not track a real operation is caught by the data
    // comparison.
    let mut p = clean.clone();
    forge_insertion(&mut p, ALG, &w.carol, doc, 4, vec![0u8; 32]).unwrap();
    let v = Verifier::new(&w.keys, ALG).verify(&hash, &p);
    assert!(v
        .issues
        .contains(&TamperEvidence::OutputMismatch { oid: doc }));

    // Whereas a *legitimate* append (documenting the actual new state)
    // verifies — that is the allowed operation, not an attack.
    let mut p = clean.clone();
    let new_hash = hash_atom(ALG, doc, &Value::Int(4));
    forge_insertion(&mut p, ALG, &w.carol, doc, 4, new_hash.clone()).unwrap();
    assert!(Verifier::new(&w.keys, ALG).verify(&new_hash, &p).verified());
}

#[test]
fn r4_data_modification_without_provenance_detected() {
    let w = world();
    let (mut tracker, agg) = compound_history();
    let prov = collect(tracker.db(), agg).unwrap();
    let honest_hash = tracker.object_hash(agg).unwrap();
    assert!(Verifier::new(&w.keys, ALG)
        .verify(&honest_hash, &prov)
        .verified());

    // Attacker silently modifies the aggregated data in the back-end.
    let victim_cell = tracker
        .forest()
        .subtree_ids(agg)
        .into_iter()
        .find(|&id| tracker.forest().node(id).unwrap().is_leaf())
        .unwrap();
    // Bypass the tracker: mutate a copy of the forest directly.
    let mut forest = tracker.forest().clone();
    forest.update(victim_cell, Value::Int(666)).unwrap();
    let tampered_hash = tepdb::core::subtree_hash(ALG, &forest, agg);
    let v = Verifier::new(&w.keys, ALG).verify(&tampered_hash, &prov);
    assert!(v
        .issues
        .contains(&TamperEvidence::OutputMismatch { oid: agg }));
}

#[test]
fn r5_provenance_cannot_be_reassigned() {
    let w = world();
    let mut ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
    let a = ledger.insert(&w.alice, Value::Int(7)).unwrap();
    let b = ledger.insert(&w.bob, Value::Int(7)).unwrap(); // same value!
                                                           // Even with identical values, A's provenance cannot vouch for B: the
                                                           // hashes bind the object identity.
    let prov_a = ledger.provenance_of(a).unwrap();
    let hash_b = ledger.object_hash(b).unwrap();
    let v = Verifier::new(&w.keys, ALG).verify(&hash_b, &prov_a);
    assert!(!v.verified());
}

#[test]
fn r6_r7_collusion_detected_with_honest_successor() {
    let w = world();
    let (mut ledger, doc) = atomic_history();
    // carol (honest) appends after bob's seq-3 record.
    ledger.update(&w.carol, doc, Value::Int(4)).unwrap();
    let clean = ledger.provenance_of(doc).unwrap();
    let hash = ledger.object_hash(doc).unwrap();

    // Colluders alice (seq 0? no — splice needs colluder records at both
    // ends): alice@0 … alice@2 sandwich bob@1. Splice bob out.
    let mut p = clean.clone();
    collusion_splice(&mut p, ALG, doc, 0, 2, &w.alice).unwrap();
    let v = Verifier::new(&w.keys, ALG).verify(&hash, &p);
    assert!(
        !v.verified(),
        "collusion splice with honest successor undetected"
    );

    // R6: colluders inserting a record attributed to honest carol between
    // them — carol's key never signed it.
    let mut p = clean.clone();
    forge_insertion(&mut p, ALG, &w.alice, doc, 9, vec![1u8; 32]).unwrap();
    apply_tamper(
        &mut p,
        &Tamper::Reattribute {
            oid: doc,
            seq: 9,
            to: w.carol.id(),
        },
    );
    let v = Verifier::new(&w.keys, ALG).verify(&hash, &p);
    assert!(v
        .issues
        .iter()
        .any(|i| matches!(i, TamperEvidence::BadSignature { seq: 9, .. })));
}

#[test]
fn r8_no_repudiation() {
    let w = world();
    let (ledger, doc) = atomic_history();
    let prov = ledger.provenance_of(doc).unwrap();
    // Bob cannot claim his records were authored by alice: re-attributing
    // them breaks signature verification, so authorship is pinned.
    for seq in [1u64, 3] {
        let mut p = prov.clone();
        assert!(apply_tamper(
            &mut p,
            &Tamper::Reattribute {
                oid: doc,
                seq,
                to: w.alice.id()
            }
        ));
        let hash = ledger.object_hash(doc).unwrap();
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &p);
        assert!(v
            .issues
            .iter()
            .any(|i| matches!(i, TamperEvidence::BadSignature { .. })));
    }
}

#[test]
fn nonlinear_provenance_guarantees_hold_through_aggregation() {
    let w = world();
    let mut ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
    let a = ledger.insert(&w.alice, Value::Int(1)).unwrap();
    let b = ledger.insert(&w.bob, Value::Int(2)).unwrap();
    ledger.update(&w.bob, b, Value::Int(3)).unwrap();
    let c = ledger.aggregate(&w.carol, &[a, b], Value::Int(4)).unwrap();
    ledger.update(&w.alice, c, Value::Int(5)).unwrap();

    let clean = ledger.provenance_of(c).unwrap();
    let hash = ledger.object_hash(c).unwrap();
    assert!(Verifier::new(&w.keys, ALG).verify(&hash, &clean).verified());

    // Tampering with an INPUT's history (deep in the DAG) is detected when
    // verifying the aggregate's provenance.
    let mut p = clean.clone();
    assert!(apply_tamper(
        &mut p,
        &Tamper::FlipOutputHash { oid: b, seq: 0 }
    ));
    assert!(!Verifier::new(&w.keys, ALG).verify(&hash, &p).verified());

    // Removing an input's record breaks the DAG.
    let mut p = clean.clone();
    assert!(apply_tamper(&mut p, &Tamper::Remove { oid: a, seq: 0 }));
    assert!(!Verifier::new(&w.keys, ALG).verify(&hash, &p).verified());
}

#[test]
fn compound_inherited_chains_detect_deep_tampering() {
    let w = world();
    let (mut tracker, agg) = compound_history();
    let prov = collect(tracker.db(), agg).unwrap();
    let hash = tracker.object_hash(agg).unwrap();
    assert!(Verifier::new(&w.keys, ALG).verify(&hash, &prov).verified());

    // Tamper with any record in the aggregate's input chains.
    for r in prov.records.clone() {
        let mut p = prov.clone();
        assert!(apply_tamper(
            &mut p,
            &Tamper::FlipChecksum {
                oid: r.output_oid,
                seq: r.seq_id
            }
        ));
        let v = Verifier::new(&w.keys, ALG).verify(&hash, &p);
        assert!(
            !v.verified(),
            "checksum flip on ({}, {}) undetected",
            r.output_oid,
            r.seq_id
        );
    }
}

#[test]
fn unknown_certificate_authority_rejected() {
    let w = world();
    let mut rng = StdRng::seed_from_u64(404);
    let rogue_ca = CertificateAuthority::new(512, ALG, &mut rng);
    let eve = rogue_ca.enroll(ParticipantId(66), 512, &mut rng);

    // Eve's certificate cannot enter the FDA's directory…
    let mut keys = KeyDirectory::new(w.ca.public_key().clone(), ALG);
    assert!(keys.register(eve.certificate().clone()).is_err());

    // …so records signed by Eve are flagged as unknown-participant.
    let mut ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
    let doc = ledger.insert(&eve, Value::Int(1)).unwrap();
    let prov = ledger.provenance_of(doc).unwrap();
    let hash = ledger.object_hash(doc).unwrap();
    let v = Verifier::new(&w.keys, ALG).verify(&hash, &prov);
    assert!(v.issues.contains(&TamperEvidence::UnknownParticipant {
        participant: ParticipantId(66)
    }));
}
