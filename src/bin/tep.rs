//! `tep` — command-line tool for inspecting, verifying, and maintaining
//! tamper-evident provenance logs.
//!
//! ```text
//! tep demo <dir>                      generate a demo log + keyring
//! tep stats <log> [--metrics]         store statistics (+ metric registry)
//! tep history <log> <oid>             one object's record chain
//! tep blame <log> <oid>               most recent modifier
//! tep participants <log> <oid>        everyone who touched the object
//! tep dot <log> <oid>                 provenance DAG in Graphviz DOT
//! tep export <log> <oid>              provenance DAG as OPM-style JSON
//! tep verify <log> <oid> --keys <kr>  verify provenance integrity
//!            [--hash <hex>]           …against a delivered object hash
//! tep query <log> <op> <target>       provenance query with slice proof
//!           [--participant N] [--depth N] [--seq-range A..B] [--keys <kr>]
//!                                     op: ancestors | descendants |
//!                                     lineage | audit | polynomial
//! tep compact <log> <out> --live a,b  GC: keep only records reachable
//!                                     from the listed live objects
//! tep prove <snapshot> <root> <target> --out <file>
//!                                     Merkle inclusion proof for one node
//! tep check-proof <file> --root-hash <hex> [--int N | --text S]
//!                                     verify a proof (optionally a value)
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use tepdb::core::{collect, gc, ProvenanceQuery, Verifier};
use tepdb::crypto::hex;
use tepdb::crypto::Keyring;
use tepdb::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tep: {e}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  tep demo <dir>");
            eprintln!("  tep stats <log> [--metrics]");
            eprintln!("  tep history <log> <oid>");
            eprintln!("  tep blame <log> <oid>");
            eprintln!("  tep participants <log> <oid>");
            eprintln!("  tep dot <log> <oid>");
            eprintln!("  tep export <log> <oid>");
            eprintln!("  tep verify <log> <oid> --keys <keyring> [--hash <hex>]");
            eprintln!(
                "  tep query <log> <op> <target> [--participant N] [--depth N] [--seq-range A..B] [--keys <keyring>]"
            );
            eprintln!("  tep compact <log> <out> --live <oid,oid,...>");
            eprintln!("  tep prove <snapshot> <root> <target> --out <file>");
            eprintln!("  tep check-proof <file> --root-hash <hex> [--int N | --text S]");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "demo" => demo(args.get(1).ok_or("demo needs a directory")?),
        "stats" => stats(args),
        "history" => history(open_db(args.get(1))?, parse_oid(args.get(2))?),
        "blame" => blame(open_db(args.get(1))?, parse_oid(args.get(2))?),
        "participants" => participants(open_db(args.get(1))?, parse_oid(args.get(2))?),
        "dot" => dot(open_db(args.get(1))?, parse_oid(args.get(2))?),
        "export" => export(open_db(args.get(1))?, parse_oid(args.get(2))?),
        "verify" => verify(args),
        "query" => query_cmd(args),
        "compact" => compact(args),
        "prove" => prove_cmd(args),
        "check-proof" => check_proof(args),
        other => Err(format!("unknown subcommand: {other}")),
    }
}

fn open_db(path: Option<&String>) -> Result<ProvenanceDb, String> {
    let path = path.ok_or("missing <log> path")?;
    ProvenanceDb::durable(path).map_err(|e| format!("cannot open {path}: {e}"))
}

fn parse_oid(arg: Option<&String>) -> Result<ObjectId, String> {
    let raw = arg.ok_or("missing <oid>")?;
    let raw = raw.strip_prefix('#').unwrap_or(raw);
    raw.parse::<u64>()
        .map(ObjectId)
        .map_err(|_| format!("invalid object id: {raw}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

fn stats(args: &[String]) -> Result<(), String> {
    let with_metrics = args.iter().any(|a| a == "--metrics");
    let path = args
        .get(1)
        .filter(|a| a.as_str() != "--metrics")
        .ok_or("missing <log> path")?;

    // With --metrics the log is opened through an ObservedVfs so the open
    // itself populates the tep_storage_* I/O and recovery counters.
    let registry = tepdb::obs::Registry::new();
    let db = if with_metrics {
        let vfs = tepdb::storage::ObservedVfs::wrap(tepdb::storage::vfs::real_vfs(), &registry);
        let db = ProvenanceDb::durable_with(vfs, std::path::Path::new(path))
            .map_err(|e| format!("cannot open {path}: {e}"))?;
        tepdb::storage::record_recovery(&registry, &db.recovery());
        db
    } else {
        open_db(Some(path))?
    };

    let q = ProvenanceQuery::new(&db);
    let stats = q.stats().map_err(|e| e.to_string())?;
    println!("records:      {}", stats.records);
    println!("objects:      {}", stats.objects);
    println!("inserts:      {}", stats.inserts);
    println!("updates:      {}", stats.updates);
    println!("aggregates:   {}", stats.aggregates);
    println!("participants: {}", stats.participants);
    println!("row bytes:    {}", stats.row_bytes);
    println!("\nactivity:");
    for (p, n) in q.activity() {
        println!("  {p}: {n} record(s)");
    }
    if with_metrics {
        println!("\nmetrics:");
        print!("{}", registry.render_text());
    }
    Ok(())
}

fn history(db: ProvenanceDb, oid: ObjectId) -> Result<(), String> {
    let q = ProvenanceQuery::new(&db);
    let records = q.history_of(oid).map_err(|e| e.to_string())?;
    if records.is_empty() {
        return Err(format!("no records for {oid}"));
    }
    println!("history of {oid} ({} records):", records.len());
    for r in records {
        let inputs: Vec<String> = r
            .inputs
            .iter()
            .map(|i| match i.prev_seq {
                Some(s) => format!("{}@{}", i.oid, s),
                None => format!("{}@-", i.oid),
            })
            .collect();
        let note = r
            .annotation_text()
            .map(|t| format!("  \"{t}\""))
            .unwrap_or_default();
        println!(
            "  seq {:>4}  {:<9}  by {:<6}  inputs [{}]  checksum {}…{}",
            r.seq_id,
            r.kind.name(),
            r.participant.to_string(),
            inputs.join(", "),
            hex::to_hex(&r.checksum[..8.min(r.checksum.len())]),
            note,
        );
    }
    Ok(())
}

fn blame(db: ProvenanceDb, oid: ObjectId) -> Result<(), String> {
    let q = ProvenanceQuery::new(&db);
    match q.blame(oid) {
        Some((p, seq)) => {
            println!("{oid} last modified by {p} (record seq {seq})");
            Ok(())
        }
        None => Err(format!("no records for {oid}")),
    }
}

fn participants(db: ProvenanceDb, oid: ObjectId) -> Result<(), String> {
    let q = ProvenanceQuery::new(&db);
    let ps = q.participants_of(oid).map_err(|e| e.to_string())?;
    if ps.is_empty() {
        return Err(format!("no records for {oid}"));
    }
    for p in ps {
        println!("{p}");
    }
    Ok(())
}

fn dot(db: ProvenanceDb, oid: ObjectId) -> Result<(), String> {
    let prov = collect(&db, oid).map_err(|e| e.to_string())?;
    print!("{}", prov.to_dot());
    Ok(())
}

fn export(db: ProvenanceDb, oid: ObjectId) -> Result<(), String> {
    let prov = collect(&db, oid).map_err(|e| e.to_string())?;
    print!("{}", tepdb::core::to_opm_json(&prov));
    Ok(())
}

fn verify(args: &[String]) -> Result<(), String> {
    let db = open_db(args.get(1))?;
    let oid = parse_oid(args.get(2))?;
    let keyring_path = flag_value(args, "--keys").ok_or("verify needs --keys <keyring>")?;
    let keyring_bytes =
        std::fs::read(keyring_path).map_err(|e| format!("cannot read {keyring_path}: {e}"))?;
    let keyring = Keyring::from_bytes(&keyring_bytes).ok_or("malformed keyring file")?;
    let alg = keyring.algorithm();
    let keys = keyring
        .into_directory()
        .map_err(|e| format!("keyring validation failed: {e}"))?;

    let recovery = db.recovery();
    if recovery.is_degraded() {
        eprintln!(
            "warning: log opened in degraded mode ({} corrupt range(s), {} byte(s) quarantined)",
            recovery.gaps.len(),
            recovery.quarantined_bytes
        );
    }
    let prov = collect(&db, oid).map_err(|e| e.to_string())?;
    // With --hash we check the delivered object against the provenance;
    // without it we check internal integrity only (the latest record's
    // claimed output is taken as the object state).
    let expected = match flag_value(args, "--hash") {
        Some(h) => hex::from_hex(h).ok_or("invalid --hash hex")?,
        None => {
            let latest = prov.latest().ok_or("object has no records")?;
            eprintln!("note: no --hash given; checking internal integrity only");
            latest.output_hash.clone()
        }
    };

    let v = Verifier::new(&keys, alg).verify_recovered(&expected, &prov, &recovery);
    println!(
        "{} records checked, {} participants",
        v.records_checked,
        v.participants.len()
    );
    if v.verified() {
        println!("VERIFIED: provenance of {oid} is intact");
        Ok(())
    } else {
        for issue in &v.issues {
            println!("TAMPER EVIDENCE: {issue}");
        }
        Err(format!("{} integrity violation(s) found", v.issues.len()))
    }
}

fn query_cmd(args: &[String]) -> Result<(), String> {
    use tepdb::query::{QueryAnswer, QueryBounds, QueryEngine, QueryOp, QuerySpec};

    let path = args.get(1).ok_or("missing <log> path")?;
    let op_raw = args
        .get(2)
        .ok_or("query needs an operator: ancestors | descendants | lineage | audit | polynomial")?;
    let op = QueryOp::parse(op_raw).ok_or_else(|| format!("unknown operator: {op_raw}"))?;

    let mut bounds = QueryBounds::default();
    if let Some(d) = flag_value(args, "--depth") {
        bounds.max_depth = Some(d.parse().map_err(|_| "invalid --depth")?);
    }
    if let Some(r) = flag_value(args, "--seq-range") {
        let (lo, hi) = r.split_once("..").ok_or("--seq-range wants A..B")?;
        bounds.seq_range = Some((
            lo.parse().map_err(|_| "invalid --seq-range start")?,
            hi.parse().map_err(|_| "invalid --seq-range end")?,
        ));
    }
    let participant = flag_value(args, "--participant")
        .map(|p| p.parse::<u64>().map(ParticipantId))
        .transpose()
        .map_err(|_| "invalid --participant")?;
    let spec = if op == QueryOp::AuditSlice {
        // The audit target is a participant; accept it positionally too.
        let p = participant
            .or_else(|| {
                args.get(3)
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(ParticipantId)
            })
            .ok_or("audit needs --participant <id> (or a positional participant id)")?;
        QuerySpec {
            bounds,
            ..QuerySpec::audit(p)
        }
    } else {
        QuerySpec {
            op,
            target: parse_oid(args.get(3))?,
            participant,
            bounds,
        }
    };

    // The keyring (when given) pins the hash algorithm and enables the
    // recipient-side proof check; without it the slice is computed but
    // explicitly reported as unverified.
    let keys = match flag_value(args, "--keys") {
        Some(kr_path) => {
            let bytes =
                std::fs::read(kr_path).map_err(|e| format!("cannot read {kr_path}: {e}"))?;
            let keyring = Keyring::from_bytes(&bytes).ok_or("malformed keyring file")?;
            let alg = keyring.algorithm();
            let keys = keyring
                .into_directory()
                .map_err(|e| format!("keyring validation failed: {e}"))?;
            Some((keys, alg))
        }
        None => None,
    };
    let alg = keys.as_ref().map_or(HashAlgorithm::Sha256, |(_, alg)| *alg);

    let db = Arc::new(open_db(Some(path))?);
    // The secondary indexes persist in a sidecar next to the log; a stale
    // or corrupt sidecar is silently rebuilt from the log. The path is
    // derived from the log's full name (append semantics) so co-located
    // logs — tenant shards in one root — never share a sidecar.
    let sidecar = tepdb::query::sidecar_path(std::path::Path::new(path));
    let engine = QueryEngine::with_sidecar(Arc::clone(&db), alg, &sidecar);
    let proof = engine.execute(&spec).map_err(|e| e.to_string())?;
    if let Err(e) = engine.save_index() {
        eprintln!(
            "warning: could not save index sidecar {}: {e}",
            sidecar.display()
        );
    }

    println!(
        "{} of {} — {} record(s) in slice, {} boundary link(s), proof {} bytes",
        spec.op,
        if op == QueryOp::AuditSlice {
            format!("participant {}", spec.participant.expect("audit has one").0)
        } else {
            spec.target.to_string()
        },
        proof.records.len(),
        proof.boundary.len(),
        proof.to_bytes().len(),
    );
    match &proof.answer {
        QueryAnswer::Objects(oids) => {
            for oid in oids {
                println!("  {oid}");
            }
            if oids.is_empty() {
                println!("  (none)");
            }
        }
        QueryAnswer::Polynomial(p) => println!("  {p}"),
    }

    match keys {
        Some((keys, alg)) => {
            let v = Verifier::new(&keys, alg).verify_slice(&proof);
            if v.verified() {
                println!(
                    "VERIFIED: slice proof checks out ({} records)",
                    v.records_checked
                );
                Ok(())
            } else {
                for issue in &v.issues {
                    println!("TAMPER EVIDENCE: {issue}");
                }
                Err(format!("{} integrity violation(s) found", v.issues.len()))
            }
        }
        None => {
            eprintln!("note: no --keys given; slice proof NOT verified");
            Ok(())
        }
    }
}

fn compact(args: &[String]) -> Result<(), String> {
    let db = open_db(args.get(1))?;
    let out = args.get(2).ok_or("compact needs an output path")?;
    let live_raw = flag_value(args, "--live").ok_or("compact needs --live <oid,oid,...>")?;
    let live: Result<Vec<ObjectId>, String> = live_raw
        .split(',')
        .map(|s| parse_oid(Some(&s.trim().to_string())))
        .collect();
    let (_, report) = gc::prune_into(&db, out, &live?).map_err(|e| e.to_string())?;
    println!(
        "compacted into {out}: kept {} record(s), dropped {}",
        report.kept, report.dropped
    );
    Ok(())
}

fn prove_cmd(args: &[String]) -> Result<(), String> {
    let snap = args.get(1).ok_or("prove needs a <snapshot> path")?;
    let root = parse_oid(args.get(2))?;
    let target = parse_oid(args.get(3))?;
    let out = flag_value(args, "--out").ok_or("prove needs --out <file>")?;
    let forest = tepdb::storage::load_forest(snap).map_err(|e| e.to_string())?;
    let mut cache = tepdb::core::HashCache::new(HashAlgorithm::Sha256);
    let root_hash = cache.get_or_compute(&forest, root);
    let proof = tepdb::core::prove(&forest, &mut cache, root, target).map_err(|e| e.to_string())?;
    std::fs::write(out, proof.to_bytes()).map_err(|e| e.to_string())?;
    println!(
        "proof written to {out} ({} steps, {} sibling hashes)",
        proof.steps.len(),
        proof.sibling_count()
    );
    println!("root hash: {}", hex::to_hex(&root_hash));
    Ok(())
}

fn check_proof(args: &[String]) -> Result<(), String> {
    let path = args.get(1).ok_or("check-proof needs a proof file")?;
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    let proof =
        tepdb::core::SubtreeProof::from_bytes(&bytes).map_err(|e| format!("bad proof: {e}"))?;
    let root_hex = flag_value(args, "--root-hash").ok_or("check-proof needs --root-hash <hex>")?;
    let root_hash = hex::from_hex(root_hex).ok_or("invalid --root-hash hex")?;
    let value = if let Some(n) = flag_value(args, "--int") {
        Some(Value::Int(n.parse().map_err(|_| "invalid --int")?))
    } else {
        flag_value(args, "--text").map(Value::text)
    };
    match value {
        Some(v) => {
            proof
                .verify_leaf_value(&v, &root_hash)
                .map_err(|e| e.to_string())?;
            println!(
                "PROVEN: object {} holds {v} under root {} (hash {})",
                proof.target,
                proof.root,
                &root_hex[..16.min(root_hex.len())]
            );
        }
        None => {
            return Err("check-proof needs --int <N> or --text <S> for the claimed value".into());
        }
    }
    Ok(())
}

/// Generates a demo log + keyring so the other subcommands have something
/// to chew on.
fn demo(dir: &String) -> Result<(), String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let log_path = format!("{dir}/provenance.teplog");
    let keyring_path = format!("{dir}/keyring.tepkeys");
    if std::path::Path::new(&log_path).exists() {
        return Err(format!("{log_path} already exists"));
    }

    let alg = HashAlgorithm::Sha256;
    let mut rng = StdRng::seed_from_u64(2009);
    let ca = CertificateAuthority::new(1024, alg, &mut rng);
    let alice = ca.enroll(ParticipantId(1), 1024, &mut rng);
    let bob = ca.enroll(ParticipantId(2), 1024, &mut rng);

    let mut keyring = Keyring::new(ca.public_key().clone(), alg);
    keyring.add(alice.certificate().clone());
    keyring.add(bob.certificate().clone());
    std::fs::write(&keyring_path, keyring.to_bytes()).map_err(|e| e.to_string())?;

    let db = Arc::new(ProvenanceDb::durable(&log_path).map_err(|e| e.to_string())?);
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg,
            ..Default::default()
        },
        Arc::clone(&db),
    );
    let (a, _) = tracker
        .insert(&alice, Value::Int(10), None)
        .map_err(|e| e.to_string())?;
    let (b, _) = tracker
        .insert(&bob, Value::Int(20), None)
        .map_err(|e| e.to_string())?;
    tracker
        .update(&bob, a, Value::Int(11))
        .map_err(|e| e.to_string())?;
    tracker
        .update(&alice, b, Value::Int(21))
        .map_err(|e| e.to_string())?;
    let (c, _) = tracker
        .aggregate(&alice, &[a, b], Value::Int(32), AggregateMode::Atomic)
        .map_err(|e| e.to_string())?;
    tracker
        .update(&bob, c, Value::Int(33))
        .map_err(|e| e.to_string())?;
    db.sync().map_err(|e| e.to_string())?;

    // A small compound table so `tep prove` has a real tree to walk.
    let (table, _) = tracker
        .insert(&alice, Value::text("measurements"), None)
        .map_err(|e| e.to_string())?;
    let mut first_cell = None;
    for r in 0..3i64 {
        let (row, _) = tracker
            .insert(&alice, Value::Null, Some(table))
            .map_err(|e| e.to_string())?;
        for a in 0..2i64 {
            let (cell, _) = tracker
                .insert(&bob, Value::Int(r * 10 + a), Some(row))
                .map_err(|e| e.to_string())?;
            first_cell.get_or_insert(cell);
        }
    }

    let snap_path = format!("{dir}/backend.tepsnap");
    tepdb::storage::save_forest(tracker.forest(), &snap_path).map_err(|e| e.to_string())?;

    let hash = tracker.object_hash(c).map_err(|e| e.to_string())?;
    println!("demo written:");
    println!("  log:     {log_path}");
    println!("  keyring: {keyring_path}");
    println!("  snapshot: {snap_path}");
    println!("  objects: {a} {b} → aggregate {c}");
    println!();
    println!("try:");
    println!("  tep stats {log_path}");
    println!("  tep history {log_path} {}", c.raw());
    println!("  tep dot {log_path} {}", c.raw());
    println!(
        "  tep verify {log_path} {} --keys {keyring_path} --hash {}",
        c.raw(),
        hex::to_hex(&hash)
    );
    if let Some(cell) = first_cell {
        println!(
            "  tep prove {snap_path} {} {} --out {dir}/proof.bin",
            table.raw(),
            cell.raw()
        );
    }
    Ok(())
}
