//! # tepdb — Tamper-Evident Database Provenance
//!
//! A complete implementation of *"Do You Know Where Your Data's Been? —
//! Tamper-Evident Database Provenance"* (Zhang, Chapman & LeFevre, 2009):
//! checksum-chained provenance for database objects, covering non-linear
//! (DAG) provenance from aggregation and fine-grained provenance for
//! compound objects (database → table → row → cell), with recipient-side
//! cryptographic verification of guarantees R1–R8.
//!
//! This crate is a facade over the workspace:
//!
//! * [`obs`] — zero-dependency observability spine: sharded counters,
//!   histograms, spans, and a text-exposition registry every layer records
//!   into.
//! * [`crypto`] — big integers, SHA-1/SHA-256, RSA-PKCS#1 v1.5, simulated
//!   PKI (all implemented from scratch).
//! * [`model`] — the forest-of-trees data model and primitive operations.
//! * [`storage`] — CRC-framed append-only log and the provenance record
//!   store (durable or in-memory).
//! * [`core`] — provenance records & checksums, Basic/Economical compound
//!   hashing, inheritance, complex operations, DAG assembly, verification,
//!   and an attack toolkit.
//! * [`query`] — verifiable provenance queries over the record log:
//!   secondary indexes, ancestors/descendants/lineage/audit/polynomial
//!   operators, every answer shipped as a re-verifiable slice proof.
//! * [`net`] — provenance exchange over TCP: deterministic wire format,
//!   multithreaded server, and a retrying client with streaming
//!   verify-on-receive.
//! * [`workloads`] — the paper's synthetic tables and operation mixes.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use rand::{rngs::StdRng, SeedableRng};
//! use tepdb::prelude::*;
//!
//! // 1. PKI setup: a CA enrolls participants.
//! let mut rng = StdRng::seed_from_u64(42);
//! let ca = CertificateAuthority::new(512, HashAlgorithm::Sha256, &mut rng);
//! let alice = ca.enroll(ParticipantId(1), 512, &mut rng);
//! let mut keys = KeyDirectory::new(ca.public_key().clone(), HashAlgorithm::Sha256);
//! keys.register(alice.certificate().clone()).unwrap();
//!
//! // 2. Track operations.
//! let mut tracker = ProvenanceTracker::new(
//!     TrackerConfig::default(),
//!     Arc::new(ProvenanceDb::in_memory()),
//! );
//! let (obj, _) = tracker.insert(&alice, Value::Int(1), None).unwrap();
//! tracker.update(&alice, obj, Value::Int(2)).unwrap();
//!
//! // 3. Ship the object + provenance; the recipient verifies.
//! let prov = tepdb::core::provenance::collect(tracker.db(), obj).unwrap();
//! let hash = tracker.object_hash(obj).unwrap();
//! assert!(Verifier::new(&keys, HashAlgorithm::Sha256).verify(&hash, &prov).verified());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tep_core as core;
pub use tep_crypto as crypto;
pub use tep_model as model;
pub use tep_net as net;
pub use tep_obs as obs;
pub use tep_query as query;
pub use tep_storage as storage;
pub use tep_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use tep_core::prelude::*;
    pub use tep_model::{AggregateMode, Forest, ObjectId, PrimitiveOp, Value};
    pub use tep_storage::StoredRecord;
}
