//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::RngCore;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one uniformly random value.
    fn arbitrary(rng: &mut dyn RngCore) -> Self;
}

/// The canonical strategy for `T` (uniform over the full domain; upstream
/// proptest biases toward edge values, which this subset does not).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner.rng())
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut dyn RngCore) -> Self {
                let mut bytes = [0u8; core::mem::size_of::<$t>()];
                rng.fill_bytes(&mut bytes);
                <$t>::from_le_bytes(bytes)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
