//! Test-case generation state: configuration, RNG, and case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset of upstream `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded (failed `prop_assume!` / filter).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded-case marker.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Drives case generation for one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    rng: StdRng,
}

impl TestRunner {
    /// Runner with a fixed default seed (for ad-hoc use).
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(0x7e57_0000),
            seed: 0x7e57_0000,
            config,
        }
    }

    /// Runner whose seed derives from the test name, so distinct tests
    /// explore distinct sequences but every run is reproducible.
    pub fn new_for_test(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
            seed,
            config: ProptestConfig { cases },
        }
    }

    /// Number of cases this runner will generate.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Re-derives the RNG for case `case` (attempt `rejects`), making each
    /// case independent of how many values earlier cases consumed.
    pub fn begin_case(&mut self, case: u32, rejects: u32) {
        self.rng =
            StdRng::seed_from_u64(self.seed ^ ((case as u64) << 32) ^ ((rejects as u64) << 1) ^ 1);
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut impl RngCore {
        &mut self.rng
    }
}
