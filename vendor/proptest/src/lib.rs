//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its tests use: the [`proptest!`] macro, `any::<T>()`,
//! `prop::collection::vec`, `prop_map`/`prop_filter`, weighted [`prop_oneof!`],
//! ranges-as-strategies, tuple strategies, and the `prop_assert*` family.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (override count with `PROPTEST_CASES`), and failing cases
//! are **not shrunk** — the panic reports the case number so the run can be
//! reproduced deterministically.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access to strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(256))]
///     #[test]
///     fn my_prop(a in strategy_expr, b in strategy_expr) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new_for_test(config, stringify!($name));
                let cases = runner.cases();
                let mut case = 0u32;
                let mut rejects = 0u32;
                while case < cases {
                    runner.begin_case(case, rejects);
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut runner);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body }; ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => { case += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejects += 1;
                            assert!(
                                rejects < 65536,
                                "proptest '{}': too many rejected cases ({})",
                                stringify!($name),
                                rejects
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}/{} (deterministic; rerun reproduces): {}",
                                stringify!($name), case, cases, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` at {}:{}",
                l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: `{:?}` == `{:?}` at {}:{}",
                format!($($fmt)+), l, r, file!(), line!()
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks one of several strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, ::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>)),+
        ])
    };
}
