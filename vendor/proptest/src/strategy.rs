//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRunner;
use rand::{Rng, RngCore};

/// A recipe for generating values of type `Value`.
///
/// Object-safe core (`new_value`); combinators are provided methods.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `pred` (retries internally; panics if
    /// the filter rejects 10 000 candidates in a row).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.new_value(runner))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..10_000 {
            let v = self.source.new_value(runner);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 candidates", self.whence);
    }
}

/// Weighted choice between type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof!: all weights are zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        let mut pick = runner.rng().next_u64() % self.total;
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.new_value(runner);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                runner.rng().gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if hi < <$t>::MAX {
                    runner.rng().gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    // avoid overflow: sample [lo-1, hi) then shift
                    runner.rng().gen_range(lo - 1..hi) + 1
                } else {
                    // full domain
                    let mut bytes = [0u8; core::mem::size_of::<$t>()];
                    runner.rng().fill_bytes(&mut bytes);
                    <$t>::from_le_bytes(bytes)
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.new_value(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}
