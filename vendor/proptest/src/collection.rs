//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use rand::Rng;

/// Inclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            runner.rng().gen_range(self.size.lo..self.size.hi + 1)
        };
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}
