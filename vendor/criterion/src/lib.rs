//! Offline drop-in subset of the `criterion` benchmark API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the criterion surface its benches use: benchmark groups, `BenchmarkId`,
//! `Throughput`, `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is honest wall-clock sampling: a warmup phase sizes
//! the per-sample iteration count, then `sample_size` samples are timed and
//! the min/median/max per-iteration times are reported in criterion's text
//! format (so existing log-parsing keeps working).
//!
//! Environment knobs: `CRITERION_SAMPLE_MS` (target ms per sample, default
//! 40), `CRITERION_WARMUP_MS` (default 300).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (criterion default: 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Enables derived throughput reporting for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the stub ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub ignores it.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, &mut |b| f(b));
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run_one(&id, &mut |b| f(b, input));
        self
    }

    fn run_one(&mut self, id: &BenchmarkId, run: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.id);
        let warmup_ms: u64 = env_u64("CRITERION_WARMUP_MS", 300);
        let sample_ms: u64 = env_u64("CRITERION_SAMPLE_MS", 40);

        // Warmup: discover per-iteration cost.
        let mut bencher = Bencher {
            mode: Mode::TimedTotal {
                iters: 1,
                elapsed: Duration::ZERO,
            },
        };
        let warmup_deadline = Instant::now() + Duration::from_millis(warmup_ms);
        let mut per_iter = Duration::from_secs(1);
        let mut iters: u64 = 1;
        loop {
            bencher.mode = Mode::TimedTotal {
                iters,
                elapsed: Duration::ZERO,
            };
            run(&mut bencher);
            let elapsed = bencher.elapsed();
            if elapsed > Duration::ZERO {
                per_iter = elapsed / iters as u32;
            }
            if Instant::now() >= warmup_deadline {
                break;
            }
            if elapsed < Duration::from_millis(warmup_ms / 4) {
                iters = iters.saturating_mul(2);
            }
        }

        // Size samples to ~sample_ms each.
        let per_iter_ns = per_iter.as_nanos().max(1);
        let sample_iters =
            ((sample_ms as u128 * 1_000_000) / per_iter_ns).clamp(1, u64::MAX as u128) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.mode = Mode::TimedTotal {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            run(&mut bencher);
            samples_ns.push(bencher.elapsed().as_nanos() as f64 / sample_iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples_ns[0];
        let max = *samples_ns.last().unwrap();
        let median = samples_ns[samples_ns.len() / 2];

        println!(
            "{:<40} time:   [{} {} {}]",
            full,
            fmt_time(min),
            fmt_time(median),
            fmt_time(max)
        );
        if let Some(tp) = self.throughput {
            let (rate_hi, rate_mid, rate_lo) = match tp {
                Throughput::Bytes(bytes) => (
                    fmt_bytes_rate(bytes as f64 / (min / 1e9)),
                    fmt_bytes_rate(bytes as f64 / (median / 1e9)),
                    fmt_bytes_rate(bytes as f64 / (max / 1e9)),
                ),
                Throughput::Elements(n) => (
                    fmt_elem_rate(n as f64 / (min / 1e9)),
                    fmt_elem_rate(n as f64 / (median / 1e9)),
                    fmt_elem_rate(n as f64 / (max / 1e9)),
                ),
            };
            println!("{:<40} thrpt:  [{} {} {}]", "", rate_lo, rate_mid, rate_hi);
        }
    }

    /// Ends the group (report lines are already printed).
    pub fn finish(self) {}
}

enum Mode {
    TimedTotal { iters: u64, elapsed: Duration },
}

/// Times closures for one benchmark.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let Mode::TimedTotal { iters, elapsed } = &mut self.mode;
        let n = *iters;
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        *elapsed = start.elapsed();
    }

    fn elapsed(&self) -> Duration {
        let Mode::TimedTotal { elapsed, .. } = &self.mode;
        *elapsed
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{:.3} ns", ns)
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_bytes_rate(bytes_per_s: f64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    const GIB: f64 = 1024.0 * MIB;
    if bytes_per_s >= GIB {
        format!("{:.3} GiB/s", bytes_per_s / GIB)
    } else if bytes_per_s >= MIB {
        format!("{:.3} MiB/s", bytes_per_s / MIB)
    } else {
        format!("{:.3} KiB/s", bytes_per_s / 1024.0)
    }
}

fn fmt_elem_rate(elems_per_s: f64) -> String {
    if elems_per_s >= 1e6 {
        format!("{:.4} Melem/s", elems_per_s / 1e6)
    } else if elems_per_s >= 1e3 {
        format!("{:.4} Kelem/s", elems_per_s / 1e3)
    } else {
        format!("{:.4}  elem/s", elems_per_s)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_and_runs() {
        std::env::set_var("CRITERION_WARMUP_MS", "5");
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(count > 0);
    }
}
