//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the tiny slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`],
//! [`Rng::gen_range`], [`rngs::StdRng`], and [`seq::SliceRandom`]. The
//! generator is ChaCha12, bit-compatible with `rand` 0.8's `StdRng`, so
//! seeded histories (and the golden digest pinned in
//! `tests/format_stability.rs`) reproduce exactly.

/// The core trait every generator implements (object-safe).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream — bit-identical
    /// to `rand_core` 0.6's default implementation, so seeded histories
    /// reproduce those generated with the upstream crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                // Widening-multiply rejection-free mapping (Lemire); the
                // slight bias for astronomically large spans is irrelevant
                // for workload generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = high.wrapping_sub(low) as $u as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// ChaCha12 generator, bit-compatible with `rand` 0.8's `StdRng`
    /// (djb ChaCha variant: 64-bit block counter in words 12–13, 64-bit
    /// stream id in words 14–15, 16-word output blocks consumed in order).
    ///
    /// Bit-compatibility matters: `tests/format_stability.rs` pins a golden
    /// digest over a seeded history whose RSA keys derive from this stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; 16],
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut state = [0u32; 16];
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            // state[14..16]: stream id, fixed at 0.
            let mut w = state;
            #[inline(always)]
            fn qr(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
                w[a] = w[a].wrapping_add(w[b]);
                w[d] = (w[d] ^ w[a]).rotate_left(16);
                w[c] = w[c].wrapping_add(w[d]);
                w[b] = (w[b] ^ w[c]).rotate_left(12);
                w[a] = w[a].wrapping_add(w[b]);
                w[d] = (w[d] ^ w[a]).rotate_left(8);
                w[c] = w[c].wrapping_add(w[d]);
                w[b] = (w[b] ^ w[c]).rotate_left(7);
            }
            for _ in 0..6 {
                // 12 rounds = 6 double rounds
                qr(&mut w, 0, 4, 8, 12);
                qr(&mut w, 1, 5, 9, 13);
                qr(&mut w, 2, 6, 10, 14);
                qr(&mut w, 3, 7, 11, 15);
                qr(&mut w, 0, 5, 10, 15);
                qr(&mut w, 1, 6, 11, 12);
                qr(&mut w, 2, 7, 8, 13);
                qr(&mut w, 3, 4, 9, 14);
            }
            for i in 0..16 {
                self.buf[i] = w[i].wrapping_add(state[i]);
            }
            self.counter = self.counter.wrapping_add(1);
            self.index = 0;
        }

        #[inline]
        fn next_word(&mut self) -> u32 {
            if self.index >= 16 {
                self.refill();
            }
            let w = self.buf[self.index];
            self.index += 1;
            w
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.next_word()
        }
        fn next_u64(&mut self) -> u64 {
            let lo = self.next_word() as u64;
            let hi = self.next_word() as u64;
            (hi << 32) | lo
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(4);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_word().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_word().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 16],
                index: 16,
            }
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
