//! Fine-grained provenance on **tree-structured documents** (the paper's
//! §4.1 notes the forest abstraction covers "relational and tree-structured
//! XML" alike).
//!
//! Builds a deep document (journal → article → section → paragraph →
//! sentence), tracks edits at the deepest granularity, and shows:
//!
//! * inherited records fan out along the whole ancestor path (5 levels),
//! * the document's provenance chain verifies end to end,
//! * a Merkle inclusion proof pins a single sentence to the signed
//!   document state without shipping the document.
//!
//! Run with: `cargo run --example document_tree`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tepdb::core::{collect, prove, HashCache, SubtreeProof};
use tepdb::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

fn main() {
    let mut rng = StdRng::seed_from_u64(1662);
    let ca = CertificateAuthority::new(1024, ALG, &mut rng);
    let author = ca.enroll(ParticipantId(1), 1024, &mut rng);
    let editor = ca.enroll(ParticipantId(2), 1024, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    keys.register(author.certificate().clone()).unwrap();
    keys.register(editor.certificate().clone()).unwrap();

    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );

    // --- A five-level document ----------------------------------------------
    let (journal, _) = tracker
        .insert(&author, Value::text("journal:JDB"), None)
        .unwrap();
    let (article, _) = tracker
        .insert(
            &author,
            Value::text("article:tamper-evidence"),
            Some(journal),
        )
        .unwrap();
    let (section, _) = tracker
        .insert(&author, Value::text("section:evaluation"), Some(article))
        .unwrap();
    let (para, _) = tracker
        .insert(&author, Value::text("paragraph:1"), Some(section))
        .unwrap();
    let (sentence, m) = tracker
        .insert(
            &author,
            Value::text("The overhead is manageable."),
            Some(para),
        )
        .unwrap();
    // Inserting at depth 4 emits 5 records: the sentence + 4 ancestors.
    println!(
        "inserting the sentence emitted {} records (1 actual + {} inherited)",
        m.records,
        m.records - 1
    );
    assert_eq!(m.records, 5);

    // --- An edit at the deepest level, annotated ----------------------------
    tracker
        .complex_annotated(
            &editor,
            &[PrimitiveOp::Update {
                id: sentence,
                value: Value::text("The overhead is small enough to be feasible in practice."),
            }],
            b"copy-edit pass 2",
        )
        .unwrap();

    // --- The journal's chain documents everything ---------------------------
    let prov = collect(tracker.db(), journal).unwrap();
    let hash = tracker.object_hash(journal).unwrap();
    let v = Verifier::new(&keys, ALG).verify(&hash, &prov);
    println!(
        "journal chain: {} records, verified = {}",
        prov.len(),
        v.verified()
    );
    assert!(v.verified());

    // The edit is attributable and its annotation is signed.
    let edited = prov
        .records
        .iter()
        .find(|r| r.participant == editor.id() && r.output_oid == journal)
        .expect("inherited editor record");
    println!(
        "editor's inherited record on the journal: seq {} note {:?}",
        edited.seq_id,
        edited.annotation_text().unwrap_or("-")
    );

    // --- Prove one sentence against the signed state -------------------------
    let mut cache = HashCache::new(ALG);
    let root_hash = cache.get_or_compute(tracker.forest(), journal);
    let proof = prove(tracker.forest(), &mut cache, journal, sentence).unwrap();
    println!(
        "inclusion proof for the sentence: {} steps, {} sibling hashes, {} bytes",
        proof.steps.len(),
        proof.sibling_count(),
        proof.to_bytes().len()
    );
    proof
        .verify_leaf_value(
            &Value::text("The overhead is small enough to be feasible in practice."),
            &root_hash,
        )
        .unwrap();
    println!("sentence proven against the document root hash");

    // A recipient who got the proof over the wire checks the same thing.
    let shipped = SubtreeProof::from_bytes(&proof.to_bytes()).unwrap();
    assert!(shipped
        .verify_leaf_value(&Value::text("A forged sentence."), &root_hash)
        .is_err());
    println!("forged sentence rejected");
}
