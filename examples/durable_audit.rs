//! Durable provenance: records survive process restarts through the
//! CRC-framed append-only log, and the recovered store still verifies.
//!
//! Simulates a curated-database workflow: a session of tracked edits, a
//! "crash" (process state dropped), recovery from the log, more edits, and
//! a final end-to-end verification — plus what happens when the log file
//! itself is corrupted on disk.
//!
//! Run with: `cargo run --example durable_audit`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tepdb::prelude::*;
use tepdb::storage::ProvenanceDb;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

fn main() {
    let dir = std::env::temp_dir().join(format!("tepdb-audit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("provenance.teplog");

    let mut rng = StdRng::seed_from_u64(99);
    let ca = CertificateAuthority::new(1024, ALG, &mut rng);
    let curator = ca.enroll(ParticipantId(1), 1024, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    keys.register(curator.certificate().clone()).unwrap();

    // --- Session 1: create and edit, durably -------------------------------
    let object;
    {
        let db = Arc::new(ProvenanceDb::durable(&log_path).unwrap());
        let mut ledger = AtomicLedger::new(ALG, Arc::clone(&db));
        object = ledger.insert(&curator, Value::text("draft")).unwrap();
        ledger
            .update(&curator, object, Value::text("revised"))
            .unwrap();
        db.sync().unwrap();
        println!(
            "session 1: {} records persisted to {}",
            db.len(),
            log_path.display()
        );
    } // process "crashes" here — all in-memory state is gone

    // --- Session 2: recover and continue ------------------------------------
    {
        let db = Arc::new(ProvenanceDb::durable(&log_path).unwrap());
        println!("session 2: recovered {} records from the log", db.len());
        assert_eq!(db.len(), 2);

        // The recovered provenance still verifies against the object state
        // recorded in the latest record.
        let prov = tepdb::core::collect(&db, object).unwrap();
        let expected_hash = prov.latest().unwrap().output_hash.clone();
        let v = Verifier::new(&keys, ALG).verify(&expected_hash, &prov);
        println!("  recovered history verified: {}", v.verified());
        assert!(v.verified());
    }

    // --- Torn-write recovery -------------------------------------------------
    // Chop bytes off the log tail (as a crash mid-append would) and reopen.
    let len = std::fs::metadata(&log_path).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&log_path)
        .unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);
    let db = ProvenanceDb::durable(&log_path).unwrap();
    println!(
        "after a torn write: {} record(s) recovered (the torn frame was dropped)",
        db.len()
    );
    assert_eq!(db.len(), 1);

    // The surviving prefix is still internally consistent and verifiable.
    let prov = tepdb::core::collect(&db, object).unwrap();
    let expected_hash = prov.latest().unwrap().output_hash.clone();
    let v = Verifier::new(&keys, ALG).verify(&expected_hash, &prov);
    println!("  surviving prefix verified: {}", v.verified());
    assert!(v.verified());

    std::fs::remove_dir_all(&dir).ok();
    println!("done.");
}
