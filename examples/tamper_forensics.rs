//! Tamper forensics: runs every attack from the paper's threat model
//! (§2.2, R1–R8) against a recorded history and shows exactly which
//! evidence the verifier produces for each.
//!
//! Run with: `cargo run --example tamper_forensics`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tepdb::core::attack::{
    all_single_record_tampers, apply_tamper, collusion_splice, forge_insertion,
};
use tepdb::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

fn main() {
    // --- A multi-participant history ---------------------------------------
    let mut rng = StdRng::seed_from_u64(8);
    let ca = CertificateAuthority::new(1024, ALG, &mut rng);
    let alice = ca.enroll(ParticipantId(1), 1024, &mut rng);
    let bob = ca.enroll(ParticipantId(2), 1024, &mut rng);
    let mallory = ca.enroll(ParticipantId(3), 1024, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    for p in [&alice, &bob, &mallory] {
        keys.register(p.certificate().clone()).unwrap();
    }

    let mut ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
    let doc = ledger.insert(&alice, Value::text("v0")).unwrap();
    ledger.update(&bob, doc, Value::text("v1")).unwrap();
    ledger.update(&alice, doc, Value::text("v2")).unwrap();
    ledger.update(&bob, doc, Value::text("v3")).unwrap();
    ledger.update(&alice, doc, Value::text("v4")).unwrap();

    let clean = ledger.provenance_of(doc).unwrap();
    let hash = ledger.object_hash(doc).unwrap();
    let verifier = Verifier::new(&keys, ALG);
    assert!(verifier.verify(&hash, &clean).verified());
    println!(
        "clean history: {} records across {} participants — verified\n",
        clean.len(),
        3
    );

    // --- Exhaustive single-record tampering ---------------------------------
    println!("== every single-record tamper, and what catches it ==");
    let mut detected = 0;
    let tampers = all_single_record_tampers(&clean, mallory.id());
    for tamper in &tampers {
        let mut copy = clean.clone();
        apply_tamper(&mut copy, tamper);
        let v = verifier.verify(&hash, &copy);
        assert!(!v.verified(), "{tamper:?} must be detected");
        detected += 1;
        println!(
            "  {:<55} -> {}",
            format!("{tamper:?}"),
            v.issues.first().expect("at least one issue")
        );
    }
    println!("  {detected}/{} tampers detected\n", tampers.len());

    // --- Collusion splice (R7) ----------------------------------------------
    println!("== collusion splice (R7) ==");
    let mut spliced = clean.clone();
    // Alice's records bracket Bob's seq-1 record; Alice splices it out and
    // re-signs her own seq-2 record.
    collusion_splice(&mut spliced, ALG, doc, 0, 2, &alice).unwrap();
    let v = verifier.verify(&hash, &spliced);
    println!(
        "  colluders removed Bob's record between theirs: verified={}",
        v.verified()
    );
    for issue in v.issues.iter().take(2) {
        println!("    evidence: {issue}");
    }
    assert!(!v.verified());

    // --- Forged insertion (R3/R6) -------------------------------------------
    println!("\n== forged insertion (R3/R6) ==");
    let mut forked = clean.clone();
    forge_insertion(&mut forked, ALG, &mallory, doc, 2, vec![0xAB; 32]).unwrap();
    let v = verifier.verify(&hash, &forked);
    println!(
        "  Mallory forged a record at an occupied slot: verified={}",
        v.verified()
    );
    for issue in v.issues.iter().take(2) {
        println!("    evidence: {issue}");
    }
    assert!(!v.verified());

    // --- Unrecorded data modification (R4) ----------------------------------
    println!("\n== unrecorded data change (R4) ==");
    let fake_hash = tepdb::core::hash_atom(ALG, doc, &Value::text("evil-v5"));
    let v = verifier.verify(&fake_hash, &clean);
    println!(
        "  data changed without a provenance record: verified={}",
        v.verified()
    );
    for issue in v.issues.iter().take(1) {
        println!("    evidence: {issue}");
    }
    assert!(!v.verified());

    println!("\nall attacks detected.");
}
