//! The paper's motivating scenario (Example 1, Figure 1): pharmaceutical
//! company **TrustUsRx** submits clinical-trial data to the FDA with
//! provenance, and the FDA verifies that the history was not forged.
//!
//! Participants:
//! * **PCP Paul** collects patients' ages and weights,
//! * the **Perfect Saints Clinic** produces endocrine measurements,
//! * **PCP Pamela** amends the endocrine value for patient #4555,
//! * **GoodStewards Labs** determines white blood cell counts,
//! * **TrustUsRx** aggregates all patient data for submission.
//!
//! Run with: `cargo run --example clinical_trial`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tepdb::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

fn main() {
    // --- Enrollment --------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(4555);
    let ca = CertificateAuthority::new(1024, ALG, &mut rng);
    let paul = ca.enroll(ParticipantId(1), 1024, &mut rng);
    let clinic = ca.enroll(ParticipantId(2), 1024, &mut rng);
    let pamela = ca.enroll(ParticipantId(3), 1024, &mut rng);
    let labs = ca.enroll(ParticipantId(4), 1024, &mut rng);
    let trustusrx = ca.enroll(ParticipantId(5), 1024, &mut rng);

    // The FDA's key directory.
    let mut fda_keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    for p in [&paul, &clinic, &pamela, &labs, &trustusrx] {
        fda_keys.register(p.certificate().clone()).unwrap();
    }

    // --- Building the trial data, with provenance --------------------------
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg: ALG,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );

    // Patient records table: each row = (Age, Weight, Endocrine, White_Count).
    let (table, _) = tracker
        .insert(&trustusrx, Value::text("patients"), None)
        .unwrap();
    let patient_ids = [4555i64, 4556, 4557];
    let mut endocrine_cells = Vec::new();
    let mut patient_rows = Vec::new();
    for (i, pid) in patient_ids.iter().enumerate() {
        let (row, _) = tracker
            .insert(&trustusrx, Value::Int(*pid), Some(table))
            .unwrap();
        patient_rows.push(row);
        // Paul collects age and weight.
        tracker
            .insert(&paul, Value::Int(35 + i as i64), Some(row))
            .unwrap();
        tracker
            .insert(&paul, Value::Int(70 + 2 * i as i64), Some(row))
            .unwrap();
        // The clinic measures endocrine activity.
        let (endo, _) = tracker
            .insert(&clinic, Value::real(1.1 + i as f64 * 0.2), Some(row))
            .unwrap();
        endocrine_cells.push(endo);
        // GoodStewards Labs determines white blood cell counts.
        tracker
            .insert(&labs, Value::Int(6800 + 100 * i as i64), Some(row))
            .unwrap();
    }

    // Pamela amends the endocrine value for patient #4555.
    tracker
        .update(&pamela, endocrine_cells[0], Value::real(1.45))
        .unwrap();

    // TrustUsRx aggregates all patient data into the submission object.
    let (submission, _) = tracker
        .aggregate(
            &trustusrx,
            &patient_rows,
            Value::text("trial-XR7-submission"),
            AggregateMode::CopySubtrees,
        )
        .unwrap();

    println!(
        "trial database: {} objects, {} provenance records",
        tracker.forest().len(),
        tracker.db().len()
    );

    // --- Submission: data + provenance go to the FDA -----------------------
    let provenance = tepdb::core::provenance::collect(tracker.db(), submission).unwrap();
    let submission_hash = tracker.object_hash(submission).unwrap();
    println!(
        "submission {} carries a provenance DAG of {} records",
        submission,
        provenance.len()
    );

    // The FDA verifies: every record checksum, the chain structure, and
    // that the delivered data matches the latest record.
    let verdict = Verifier::new(&fda_keys, ALG).verify(&submission_hash, &provenance);
    println!(
        "FDA verification: verified={} ({} records checked, {} participants)",
        verdict.verified(),
        verdict.records_checked,
        verdict.participants.len()
    );
    assert!(verdict.verified());

    // Pamela's amendment is visible — and non-repudiable (R8).
    let pamela_records: Vec<_> = provenance
        .records
        .iter()
        .filter(|r| r.participant == pamela.id())
        .collect();
    println!(
        "Pamela's amendment appears in {} record(s) of the DAG — she cannot repudiate it",
        pamela_records.len()
    );
    assert!(!pamela_records.is_empty());

    // --- The company cannot silently rewrite history -----------------------
    // Suppose TrustUsRx tries to erase Pamela's amendment from the submitted
    // provenance (to make the endocrine data look unamended).
    let mut scrubbed = provenance.clone();
    scrubbed.records.retain(|r| r.participant != pamela.id());
    let verdict = Verifier::new(&fda_keys, ALG).verify(&submission_hash, &scrubbed);
    println!(
        "after scrubbing Pamela's records: verified={}",
        verdict.verified()
    );
    for issue in verdict.issues.iter().take(3) {
        println!("  evidence: {issue}");
    }
    assert!(!verdict.verified());

    // Graphviz rendering of the full DAG, for the curious:
    //     cargo run --example clinical_trial > /tmp/prov.dot && dot -Tpng ...
    eprintln!(
        "\n(provenance DAG in DOT format on stdout suppressed; {} edges)",
        provenance.edges().len()
    );
}
