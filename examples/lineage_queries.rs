//! Lineage and audit queries over tamper-evident provenance, plus
//! maintenance: trust anchors for repeat recipients and GC of retired
//! history.
//!
//! Models a small data-curation pipeline: raw measurements are ingested,
//! cleaned, and aggregated into a published dataset; the curator then asks
//! "where did this number come from?" questions, captures a trust anchor,
//! and prunes provenance for objects that no longer matter.
//!
//! Run with: `cargo run --example lineage_queries`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tepdb::core::checkpoint::TrustAnchor;
use tepdb::core::{gc, ProvenanceQuery};
use tepdb::prelude::*;

const ALG: HashAlgorithm = HashAlgorithm::Sha256;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let ca = CertificateAuthority::new(1024, ALG, &mut rng);
    let ingest = ca.enroll(ParticipantId(1), 1024, &mut rng);
    let cleaner = ca.enroll(ParticipantId(2), 1024, &mut rng);
    let curator = ca.enroll(ParticipantId(3), 1024, &mut rng);
    let mut keys = KeyDirectory::new(ca.public_key().clone(), ALG);
    for p in [&ingest, &cleaner, &curator] {
        keys.register(p.certificate().clone()).unwrap();
    }

    // --- The pipeline -------------------------------------------------------
    let mut ledger = AtomicLedger::new(ALG, Arc::new(ProvenanceDb::in_memory()));
    // Three raw sensor readings.
    let raw: Vec<_> = (0..3)
        .map(|i| {
            ledger
                .insert(&ingest, Value::real(20.0 + i as f64))
                .unwrap()
        })
        .collect();
    // The cleaner fixes an outlier in reading 1.
    ledger.update(&cleaner, raw[1], Value::real(21.2)).unwrap();
    // The curator aggregates the cleaned readings into a published mean.
    let published = ledger
        .aggregate(&curator, &raw, Value::real(21.07))
        .unwrap();
    // A scratch object that later gets retired.
    let scratch = ledger.insert(&cleaner, Value::text("notes")).unwrap();

    // --- Audit queries -------------------------------------------------------
    let q = ProvenanceQuery::new(ledger.db());
    println!("== audit queries ==");
    println!(
        "published value {published} last touched by {:?}",
        q.blame(published).unwrap()
    );
    println!(
        "derives from: {:?}",
        q.derivation_sources(published).unwrap()
    );
    assert!(q.derives_from(published, raw[1]).unwrap());
    println!(
        "participants in its lineage chain for raw[1]: {:?}",
        q.participants_of(raw[1]).unwrap()
    );
    println!("consumers of raw[0]: {:?}", q.consumers_of(raw[0]));
    let stats = q.stats().unwrap();
    println!(
        "store: {} records / {} objects / {} participants / {} row bytes",
        stats.records, stats.objects, stats.participants, stats.row_bytes
    );

    // --- Repeat-recipient anchoring ------------------------------------------
    println!("\n== trust anchor ==");
    let prov = ledger.provenance_of(published).unwrap();
    let hash = ledger.object_hash(published).unwrap();
    let verifier = Verifier::new(&keys, ALG);
    assert!(verifier.verify(&hash, &prov).verified());
    let anchor = TrustAnchor::capture(&prov).unwrap();
    println!(
        "anchored ({}, seq {}) — future deliveries must still contain this record",
        anchor.oid, anchor.seq
    );

    // History continues; later verification checks the anchor too.
    ledger
        .update(&curator, published, Value::real(21.08))
        .unwrap();
    let prov2 = ledger.provenance_of(published).unwrap();
    let hash2 = ledger.object_hash(published).unwrap();
    let v = verifier.verify_with_anchors(&hash2, &prov2, std::slice::from_ref(&anchor));
    println!("verified with anchor after more history: {}", v.verified());
    assert!(v.verified());

    // The recipient re-anchors at the newest record they have verified;
    // a later rollback attack (truncate past that anchor + revert the
    // data) is then caught.
    let fresh_anchor = TrustAnchor::capture(&prov2).unwrap();
    let mut rolled = prov2.clone();
    rolled
        .records
        .retain(|r| r.output_oid != published || r.seq_id < fresh_anchor.seq);
    let old_hash = rolled
        .records
        .iter()
        .filter(|r| r.output_oid == published)
        .max_by_key(|r| r.seq_id)
        .map(|r| r.output_hash.clone())
        .expect("aggregate record remains");
    // Without the anchor the rolled-back history looks fine…
    assert!(verifier.verify(&old_hash, &rolled).verified());
    // …with it, the truncation is evident.
    let v = verifier.verify_with_anchors(&old_hash, &rolled, &[fresh_anchor]);
    println!("rollback attempt detected: {}", !v.verified());
    assert!(!v.verified());

    // --- Retiring history -----------------------------------------------------
    println!("\n== provenance GC ==");
    ledger.delete(scratch).unwrap();
    let before = ledger.db().len();
    let report = gc::prune(ledger.db(), &[published]).unwrap();
    println!(
        "pruned to published object's lineage: {} → {} records ({} dropped)",
        before, report.kept, report.dropped
    );
    // Everything the published object needs is still verifiable.
    let prov3 = ledger.provenance_of(published).unwrap();
    let v = verifier.verify(&ledger.object_hash(published).unwrap(), &prov3);
    assert!(v.verified());
    println!("post-GC verification: {}", v.verified());
}
