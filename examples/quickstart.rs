//! Quickstart: track a small history with provenance checksums, verify it,
//! then watch a tampered copy fail verification.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tepdb::prelude::*;

fn main() {
    // --- PKI setup -------------------------------------------------------
    // A certificate authority enrolls two participants. (512-bit keys keep
    // the example snappy; use 2048 in anything real.)
    let mut rng = StdRng::seed_from_u64(42);
    let alg = HashAlgorithm::Sha256;
    let ca = CertificateAuthority::new(1024, alg, &mut rng);
    let alice = ca.enroll(ParticipantId(1), 1024, &mut rng);
    let bob = ca.enroll(ParticipantId(2), 1024, &mut rng);

    // The data recipient trusts the CA and registers both certificates.
    let mut keys = KeyDirectory::new(ca.public_key().clone(), alg);
    keys.register(alice.certificate().clone()).unwrap();
    keys.register(bob.certificate().clone()).unwrap();

    // --- Tracked operations ----------------------------------------------
    let mut tracker = ProvenanceTracker::new(
        TrackerConfig {
            alg,
            ..Default::default()
        },
        Arc::new(ProvenanceDb::in_memory()),
    );

    let (sample, _) = tracker.insert(&alice, Value::Int(98), None).unwrap();
    tracker.update(&bob, sample, Value::Int(99)).unwrap();
    tracker.update(&alice, sample, Value::Int(103)).unwrap();
    println!(
        "tracked 3 operations; {} checksummed records stored",
        tracker.db().len()
    );

    // --- Recipient-side verification --------------------------------------
    let provenance = tepdb::core::provenance::collect(tracker.db(), sample).unwrap();
    let object_hash = tracker.object_hash(sample).unwrap();
    let verifier = Verifier::new(&keys, alg);

    let honest = verifier.verify(&object_hash, &provenance);
    println!(
        "honest history: verified={} ({} records, participants: {:?})",
        honest.verified(),
        honest.records_checked,
        honest.participants
    );
    assert!(honest.verified());

    // --- Tampering is detected --------------------------------------------
    // An attacker rewrites Bob's record to claim a different value.
    let mut forged = provenance.clone();
    let victim = forged
        .records
        .iter_mut()
        .find(|r| r.participant == bob.id())
        .expect("bob has a record");
    victim.output_hash[0] ^= 0xFF;

    let result = verifier.verify(&object_hash, &forged);
    println!("tampered history: verified={}", result.verified());
    for issue in &result.issues {
        println!("  evidence: {issue}");
    }
    assert!(!result.verified());
}
